//! Theorem 2: the vector-clock algorithm implements WCP exactly.
//!
//! For every pair of events `a <tr b` of a trace, `C_a ⊑ C_b ⟺ a ≤WCP b`.
//! The left side is computed by the linear-time detector (`rapid-wcp`), the
//! right side by the independent closure engine (`rapid-cp`).  The property
//! is checked on the paper's figures, on the lower-bound family, and on
//! proptest-generated random workloads.

use proptest::prelude::*;
use rapid::cp::closure::{ClosureEngine, OrderKind};
use rapid::gen::figures;
use rapid::gen::lower_bound::{bits_of, lower_bound_trace};
use rapid::gen::random::RandomTraceConfig;
use rapid::prelude::*;

fn assert_theorem2(trace: &Trace, context: &str) {
    let outcome = WcpDetector::new().analyze_with_timestamps(trace);
    let timestamps = outcome.timestamps.expect("timestamps requested");
    let engine = ClosureEngine::new(trace);
    for (i, a) in trace.events().iter().enumerate() {
        for b in trace.events().iter().skip(i + 1) {
            let closure = engine.ordered(OrderKind::Wcp, a.id(), b.id());
            let clocks = timestamps.ordered(a.id(), b.id());
            assert_eq!(
                clocks,
                closure,
                "{context}: Theorem 2 violated for {} and {} (clock says {clocks}, closure says {closure})",
                a.id(),
                b.id()
            );
        }
    }
}

#[test]
fn theorem2_holds_on_all_figures() {
    for figure in figures::paper_figures() {
        assert_theorem2(&figure.trace, figure.name);
    }
}

#[test]
fn theorem2_holds_on_the_lower_bound_family() {
    for (u, v) in [(0b10u64, 0b10u64), (0b10, 0b01), (0b111, 0b110)] {
        let bits = 3;
        let instance = lower_bound_trace(&bits_of(u, bits), &bits_of(v, bits));
        assert_theorem2(&instance.trace, &format!("figure-8 u={u:b} v={v:b}"));
    }
}

#[test]
fn theorem2_holds_on_fixed_random_workloads() {
    for seed in 0..8 {
        let config = RandomTraceConfig {
            seed,
            events: 120,
            threads: 3,
            locks: 2,
            variables: 4,
            disciplined_probability: 0.6,
            ..RandomTraceConfig::default()
        };
        let trace = config.generate();
        assert_theorem2(&trace, &format!("seed {seed}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Property-based Theorem 2: arbitrary well-formed workloads, arbitrary
    /// sizes within a budget that keeps the cubic closure affordable.
    #[test]
    fn theorem2_holds_on_random_workloads(
        seed in 0u64..10_000,
        threads in 2usize..5,
        locks in 0usize..4,
        variables in 1usize..6,
        events in 20usize..150,
        disciplined in 0.0f64..1.0,
        write_probability in 0.1f64..0.9,
    ) {
        let config = RandomTraceConfig {
            seed,
            threads,
            locks,
            variables,
            events,
            disciplined_probability: disciplined,
            write_probability,
            ..RandomTraceConfig::default()
        };
        let trace = config.generate();
        prop_assert!(trace.validate().is_ok());
        assert_theorem2(&trace, &format!("proptest seed {seed}"));
    }

    /// The race *reports* agree as well: the set of racy variables found by
    /// the streaming detector equals the set found by the closure engine.
    #[test]
    fn race_reports_agree_with_closure(
        seed in 0u64..10_000,
        events in 20usize..150,
        locks in 0usize..3,
    ) {
        let config = RandomTraceConfig {
            seed,
            events,
            locks,
            threads: 3,
            variables: 4,
            disciplined_probability: 0.5,
            ..RandomTraceConfig::default()
        };
        let trace = config.generate();
        let detector: std::collections::BTreeSet<VarId> = WcpDetector::new()
            .detect(&trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        let closure: std::collections::BTreeSet<VarId> = ClosureEngine::new(&trace)
            .races(rapid::cp::closure::OrderKind::Wcp)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        prop_assert_eq!(detector, closure);
    }
}
