//! End-to-end integration tests across crates: benchmark models, trace
//! formats, windowing effects and detector agreement at workload scale.

use rapid::gen::benchmarks;
use rapid::mcm::{McmConfig, McmDetector};
use rapid::prelude::*;
use rapid::trace::format;

/// The benchmark models reproduce their Table 1 race counts exactly for WCP
/// and HB (columns 6 and 7), on a representative subset covering small,
/// lock-free, and WCP>HB (boldfaced) rows.
#[test]
fn benchmark_models_reproduce_table1_race_columns() {
    for name in ["account", "airline", "array", "critical", "mergesort", "raytracer"] {
        let model = benchmarks::benchmark(name).expect("benchmark exists");
        let wcp = WcpDetector::new().detect(&model.trace);
        let hb = HbDetector::new().detect(&model.trace);
        assert_eq!(wcp.distinct_pairs(), model.spec.wcp_races, "{name}: WCP race pairs (column 6)");
        assert_eq!(hb.distinct_pairs(), model.spec.hb_races, "{name}: HB race pairs (column 7)");
    }
}

/// The boldfaced Table 1 rows (eclipse, jigsaw, xalan) are exactly the ones
/// where WCP finds more races than HB.
#[test]
fn boldfaced_rows_have_wcp_exceeding_hb() {
    for name in ["eclipse", "jigsaw", "xalan"] {
        let model = benchmarks::benchmark_scaled(name, 8_000).expect("benchmark exists");
        let wcp = WcpDetector::new().detect(&model.trace).distinct_pairs();
        let hb = HbDetector::new().detect(&model.trace).distinct_pairs();
        assert!(wcp > hb, "{name}: expected WCP ({wcp}) > HB ({hb})");
        assert_eq!(wcp, model.spec.wcp_races, "{name}");
        assert_eq!(hb, model.spec.hb_races, "{name}");
    }
}

/// Unwindowed WCP finds the far-apart races that the windowed MCM baseline
/// misses (§4.3), and the windowed baseline never reports more than WCP.
#[test]
fn windowed_analysis_misses_far_races_on_large_models() {
    for name in ["moldyn", "derby"] {
        let model = benchmarks::benchmark_scaled(name, 10_000).expect("benchmark exists");
        let wcp = WcpDetector::new().detect(&model.trace).distinct_pairs();
        let windowed =
            McmDetector::new(McmConfig::new(1_000, 60)).detect(&model.trace).distinct_pairs();
        assert!(windowed < wcp, "{name}: windowed {windowed} should miss races vs WCP {wcp}");
    }
}

/// The far races embedded in the large models have distances that span most
/// of the trace, reproducing the "races millions of events apart" finding.
#[test]
fn far_races_have_large_distances() {
    let model = benchmarks::benchmark_scaled("eclipse", 10_000).expect("eclipse exists");
    let wcp = WcpDetector::new().detect(&model.trace);
    let trace_len = model.trace.len();
    assert!(
        wcp.max_distance() > trace_len / 2,
        "expected a race spanning more than half the trace, got {} of {}",
        wcp.max_distance(),
        trace_len
    );
}

/// Traces survive a round trip through the std text format with identical
/// analysis results.
#[test]
fn format_roundtrip_preserves_detector_output() {
    let model = benchmarks::benchmark_scaled("ftpserver", 3_000).expect("ftpserver exists");
    let text = format::write_std(&model.trace);
    let reparsed = format::parse_std(&text).expect("roundtrip parses");
    assert_eq!(reparsed.len(), model.trace.len());

    let original_wcp = WcpDetector::new().detect(&model.trace);
    let reparsed_wcp = WcpDetector::new().detect(&reparsed);
    assert_eq!(original_wcp.distinct_pairs(), reparsed_wcp.distinct_pairs());

    let original_hb = HbDetector::new().detect(&model.trace);
    let reparsed_hb = HbDetector::new().detect(&reparsed);
    assert_eq!(original_hb.distinct_pairs(), reparsed_hb.distinct_pairs());
}

/// The CSV flavour round-trips as well.
#[test]
fn csv_roundtrip_preserves_structure() {
    let model = benchmarks::benchmark_scaled("account", 200).expect("account exists");
    let csv = format::write_csv(&model.trace);
    let reparsed = format::parse_csv(&csv).expect("csv parses");
    assert_eq!(reparsed.len(), model.trace.len());
    assert_eq!(reparsed.stats(), model.trace.stats());
}

/// Queue occupancy stays far below the worst case on every benchmark model
/// that is long enough for the percentage to be meaningful (Table 1 column 11
/// stays under 10% on the paper's traces; the tiny IBM Contest programs have
/// so few events that a handful of queue entries already dominates the
/// denominator, so they are only required to stay under one entry per event).
#[test]
fn queue_occupancy_stays_small_on_benchmark_models() {
    for name in benchmarks::benchmark_names() {
        let model = benchmarks::benchmark_scaled(name, 5_000).expect("benchmark exists");
        let outcome = WcpDetector::new().analyze(&model.trace);
        let occupancy = outcome.stats.max_queue_percentage();
        if model.trace.len() >= 2_000 {
            assert!(
                occupancy <= 25.0,
                "{name}: queue occupancy {occupancy:.2}% is unexpectedly large"
            );
        } else {
            assert!(
                occupancy <= 100.0,
                "{name}: queue occupancy {occupancy:.2}% exceeds one entry per event"
            );
        }
    }
}

/// The FastTrack-style epoch detector and the plain vector-clock detector
/// agree on which variables are racy for every benchmark model.
#[test]
fn fasttrack_matches_djit_on_benchmark_models() {
    for name in ["account", "pingpong", "bubblesort", "ftpserver"] {
        let model = benchmarks::benchmark_scaled(name, 5_000).expect("benchmark exists");
        let vc: std::collections::BTreeSet<VarId> = HbDetector::new()
            .detect(&model.trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        let ft: std::collections::BTreeSet<VarId> = FastTrackDetector::new()
            .detect(&model.trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        assert_eq!(vc, ft, "{name}");
    }
}

/// Larger windows find at least as many races as smaller ones on workloads
/// whose races are clustered, and both bracket the WCP count from below.
#[test]
fn window_size_sweep_is_bounded_by_wcp() {
    let model = benchmarks::benchmark_scaled("ftpserver", 6_000).expect("ftpserver exists");
    let wcp = WcpDetector::new().detect(&model.trace).distinct_pairs();
    for window in [500usize, 1_000, 2_000, 10_000] {
        let races =
            McmDetector::new(McmConfig::new(window, 240)).detect(&model.trace).distinct_pairs();
        assert!(races <= wcp, "window {window}: {races} > WCP {wcp}");
    }
}
