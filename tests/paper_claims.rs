//! Cross-crate integration tests: every claim the paper makes about its
//! example traces (Figures 1–6) holds end to end through the public facade.

use rapid::cp::closure::{ClosureEngine, OrderKind};
use rapid::gen::figures;
use rapid::mcm::{McmConfig, McmDetector};
use rapid::prelude::*;
use rapid::trace::analysis::TraceIndex;
use rapid::trace::reorder::{check_race_witness, find_deadlock_witness, find_race_witness};

/// Figure-by-figure: the HB/CP/WCP verdicts on the focal conflicting pair
/// match the paper, for both the closure reference and the linear-time
/// detectors.
#[test]
fn figure_verdicts_match_the_paper() {
    for figure in figures::paper_figures() {
        let engine = ClosureEngine::new(&figure.trace);
        assert_eq!(
            engine.unordered(OrderKind::Hb, figure.first, figure.second),
            figure.hb_race,
            "{}: HB closure",
            figure.name
        );
        assert_eq!(
            engine.unordered(OrderKind::Cp, figure.first, figure.second),
            figure.cp_race,
            "{}: CP closure",
            figure.name
        );
        assert_eq!(
            engine.unordered(OrderKind::Wcp, figure.first, figure.second),
            figure.wcp_race,
            "{}: WCP closure",
            figure.name
        );

        let outcome = WcpDetector::new().analyze_with_timestamps(&figure.trace);
        let timestamps = outcome.timestamps.expect("timestamps requested");
        assert_eq!(
            timestamps.unordered(figure.first, figure.second),
            figure.wcp_race,
            "{}: linear-time WCP detector",
            figure.name
        );
    }
}

/// WCP detects strictly more figure races than CP, and CP more than HB
/// (Figure 1b separates CP from HB; Figures 2b, 3, 4 separate WCP from CP).
#[test]
fn wcp_separates_from_cp_and_cp_from_hb() {
    let separating_cp_from_hb = figures::figure_1b();
    let engine = ClosureEngine::new(&separating_cp_from_hb.trace);
    assert!(!engine.unordered(
        OrderKind::Hb,
        separating_cp_from_hb.first,
        separating_cp_from_hb.second
    ));
    assert!(engine.unordered(
        OrderKind::Cp,
        separating_cp_from_hb.first,
        separating_cp_from_hb.second
    ));

    for figure in [figures::figure_2b(), figures::figure_3(), figures::figure_4()] {
        let engine = ClosureEngine::new(&figure.trace);
        assert!(
            !engine.unordered(OrderKind::Cp, figure.first, figure.second),
            "{}: CP should order the pair",
            figure.name
        );
        assert!(
            engine.unordered(OrderKind::Wcp, figure.first, figure.second),
            "{}: WCP should leave the pair unordered",
            figure.name
        );
    }
}

/// Weak soundness (Theorem 1) on the figures: every WCP-race corresponds to a
/// predictable race or a predictable deadlock, certified by explicit
/// reordering witnesses.
#[test]
fn wcp_races_on_figures_are_predictable_races_or_deadlocks() {
    for figure in figures::paper_figures() {
        if !figure.wcp_race {
            continue;
        }
        let index = TraceIndex::build(&figure.trace);
        let race_witness =
            find_race_witness(&figure.trace, &index, figure.first, figure.second, 2_000_000);
        if let Some(schedule) = &race_witness {
            assert!(
                check_race_witness(&figure.trace, &index, schedule, figure.first, figure.second),
                "{}: returned witness does not check out",
                figure.name
            );
        }
        let deadlock_witness = find_deadlock_witness(&figure.trace, &index, 2_000_000);
        assert!(
            race_witness.is_some() || deadlock_witness.is_some(),
            "{}: a WCP race must be backed by a predictable race or deadlock",
            figure.name
        );
        assert_eq!(race_witness.is_some(), figure.predictable_race, "{}", figure.name);
        assert_eq!(deadlock_witness.is_some(), figure.predictable_deadlock, "{}", figure.name);
    }
}

/// Figure 5 specifically: WCP flags the pair although no predictable race
/// exists — the corresponding anomaly is a three-thread deadlock, which CP's
/// soundness argument cannot produce (§2.3).
#[test]
fn figure_5_is_a_deadlock_not_a_race() {
    let figure = figures::figure_5();
    assert!(figure.wcp_race && !figure.predictable_race && figure.predictable_deadlock);
    let index = TraceIndex::build(&figure.trace);
    let (schedule, threads) =
        find_deadlock_witness(&figure.trace, &index, 5_000_000).expect("deadlock witness");
    assert!(threads.len() >= 3, "the figure 5 deadlock involves three threads");
    assert!(
        rapid::trace::reorder::check_correct_reordering(&figure.trace, &index, &schedule).is_ok()
    );
}

/// The MCM (RVPredict-style) baseline is precise: it reports exactly the
/// focal pairs that are genuine predictable races.
#[test]
fn mcm_reports_only_predictable_races_on_figures() {
    for figure in figures::paper_figures() {
        let report = McmDetector::new(McmConfig::default()).detect(&figure.trace);
        let found = report.races().iter().any(|race| {
            (race.first == figure.first && race.second == figure.second)
                || (race.first == figure.second && race.second == figure.first)
        });
        assert_eq!(found, figure.predictable_race, "{}", figure.name);
    }
}

/// The detectors agree on the classification of every conflicting pair of
/// the figures, not only the focal ones: WCP-ordered ⟹ CP-ordered ⟹
/// HB-ordered.
#[test]
fn order_inclusions_hold_on_every_conflicting_pair() {
    for figure in figures::paper_figures() {
        let engine = ClosureEngine::new(&figure.trace);
        for (first, second) in figure.trace.conflicting_pairs() {
            if engine.ordered(OrderKind::Wcp, first, second) {
                assert!(engine.ordered(OrderKind::Cp, first, second), "{}", figure.name);
            }
            if engine.ordered(OrderKind::Cp, first, second) {
                assert!(engine.ordered(OrderKind::Hb, first, second), "{}", figure.name);
            }
        }
    }
}
