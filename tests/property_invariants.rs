//! Property-based invariants over arbitrary generated workloads.
//!
//! These complement the per-crate unit tests with cross-crate invariants
//! checked on proptest-driven random traces:
//!
//! * generated traces are always well formed;
//! * `subtrace` always yields well-formed traces with consistent mappings;
//! * the partial-order hierarchy WCP ⊆ HB holds for the streaming detectors;
//! * race reports are internally consistent (distances, location pairs);
//! * the std/CSV formats round-trip.

use proptest::prelude::*;
use rapid::gen::random::RandomTraceConfig;
use rapid::prelude::*;
use rapid::trace::format;

fn workload() -> impl Strategy<Value = Trace> {
    (0u64..100_000, 2usize..6, 0usize..5, 1usize..8, 30usize..300, 0.0f64..1.0, 0.05f64..0.95)
        .prop_map(|(seed, threads, locks, variables, events, disciplined, write_probability)| {
            RandomTraceConfig {
                seed,
                threads,
                locks,
                variables,
                events,
                disciplined_probability: disciplined,
                write_probability,
                ..RandomTraceConfig::default()
            }
            .generate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn generated_workloads_are_well_formed(trace in workload()) {
        prop_assert!(trace.validate().is_ok());
        let stats = trace.stats();
        prop_assert_eq!(stats.events, trace.len());
        prop_assert_eq!(stats.accesses() + stats.sync_events(), trace.len());
    }

    #[test]
    fn subtraces_are_well_formed(trace in workload(), start in 0usize..200, len in 1usize..200) {
        let end = (start + len).min(trace.len());
        let start = start.min(end);
        let (sub, mapping) = trace.subtrace(start, end);
        prop_assert!(sub.validate().is_ok());
        prop_assert_eq!(sub.len(), mapping.len());
        for (new_index, original) in mapping.iter().enumerate() {
            prop_assert_eq!(trace[*original].kind(), sub[new_index].kind());
            prop_assert_eq!(trace[*original].thread(), sub[new_index].thread());
        }
    }

    #[test]
    fn wcp_races_include_all_hb_races(trace in workload()) {
        let hb: std::collections::BTreeSet<VarId> = HbDetector::new()
            .detect(&trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        let wcp: std::collections::BTreeSet<VarId> = WcpDetector::new()
            .detect(&trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        prop_assert!(hb.is_subset(&wcp), "HB races {:?} not included in WCP races {:?}", hb, wcp);
    }

    #[test]
    fn race_reports_are_internally_consistent(trace in workload()) {
        let report = WcpDetector::new().detect(&trace);
        prop_assert!(report.distinct_pairs() <= report.len());
        for race in report.races() {
            prop_assert!(race.first < race.second, "races are reported at the later event");
            prop_assert!(race.second.index() < trace.len());
            let first = trace[race.first];
            let second = trace[race.second];
            prop_assert!(first.conflicts_with(&second));
            prop_assert_eq!(race.distance(), race.second.index() - race.first.index());
        }
        prop_assert!(report.max_distance() < trace.len().max(1));
    }

    #[test]
    fn fasttrack_agrees_with_vector_clocks(trace in workload()) {
        let vc: std::collections::BTreeSet<VarId> = HbDetector::new()
            .detect(&trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        let ft: std::collections::BTreeSet<VarId> = FastTrackDetector::new()
            .detect(&trace)
            .races()
            .iter()
            .map(|race| race.variable)
            .collect();
        prop_assert_eq!(vc, ft);
    }

    #[test]
    fn std_format_roundtrips(trace in workload()) {
        let text = format::write_std(&trace);
        let reparsed = format::parse_std(&text).expect("roundtrip parses");
        prop_assert_eq!(reparsed.len(), trace.len());
        // Ids are re-interned in order of first appearance, so compare the
        // interned *names* and operation mnemonics event by event.
        for (original, parsed) in trace.events().iter().zip(reparsed.events()) {
            prop_assert_eq!(
                trace.thread_name(original.thread()),
                reparsed.thread_name(parsed.thread())
            );
            prop_assert_eq!(original.kind().mnemonic(), parsed.kind().mnemonic());
            prop_assert_eq!(
                original.kind().variable().map(|var| trace.variable_name(var)),
                parsed.kind().variable().map(|var| reparsed.variable_name(var))
            );
            prop_assert_eq!(
                original.kind().lock().map(|lock| trace.lock_name(lock)),
                parsed.kind().lock().map(|lock| reparsed.lock_name(lock))
            );
        }
        // Detection results survive the round trip.
        prop_assert_eq!(
            HbDetector::new().detect(&trace).distinct_pairs(),
            HbDetector::new().detect(&reparsed).distinct_pairs()
        );
        prop_assert_eq!(
            WcpDetector::new().detect(&trace).distinct_pairs(),
            WcpDetector::new().detect(&reparsed).distinct_pairs()
        );
    }

    #[test]
    fn wcp_queue_telemetry_is_bounded_by_enqueues(trace in workload()) {
        let outcome = WcpDetector::new().analyze(&trace);
        prop_assert!(outcome.stats.max_queue_entries as u64 <= outcome.stats.queue_enqueues);
        prop_assert_eq!(outcome.stats.events, trace.len());
        prop_assert!(outcome.stats.max_queue_fraction() >= 0.0);
    }
}
