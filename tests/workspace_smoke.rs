//! Workspace smoke test guarding the facade API.
//!
//! Builds the Figure 2b trace of the paper through `rapid::prelude::*` alone
//! and checks the headline claim (WCP finds the predictable race on `y` that
//! HB misses).  If a future manifest or re-export change breaks the facade —
//! a missing crate wiring, an ambiguous `pub use`, a renamed type — this test
//! fails to *compile*, which is the point.

use rapid::prelude::*;

/// Builds Figure 2b of the paper: t1 writes `y` before its critical section
/// on `l`; t2 reads `y` after its own critical section on `l`; the two
/// critical sections share no conflicting accesses relevant to HB ordering
/// the `y` accesses, so the race on `y` is predictable.
fn figure_2b_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let (t1, t2) = (b.thread("t1"), b.thread("t2"));
    let l = b.lock("l");
    let (x, y) = (b.variable("x"), b.variable("y"));
    b.write(t1, y);
    b.acquire(t1, l);
    b.write(t1, x);
    b.release(t1, l);
    b.acquire(t2, l);
    b.read(t2, y);
    b.read(t2, x);
    b.release(t2, l);
    b.finish()
}

#[test]
fn facade_builds_figure_2b_and_detectors_disagree_as_the_paper_claims() {
    let trace = figure_2b_trace();
    assert!(trace.validate().is_ok(), "Figure 2b must be a well-formed trace");

    let wcp = WcpDetector::new().detect(&trace);
    let hb = HbDetector::new().detect(&trace);
    assert_eq!(wcp.distinct_pairs(), 1, "WCP finds the predictable race on y");
    assert_eq!(hb.distinct_pairs(), 0, "HB misses the race Figure 2b demonstrates");
}

#[test]
fn facade_exposes_one_canonical_thread_id_type() {
    // `rapid::prelude::ThreadId` (via rapid-trace) and `rapid::vc::ThreadId`
    // must be the *same* item, not two colliding types: passing one where the
    // other is expected has to compile.
    let id: ThreadId = rapid::vc::ThreadId::new(3);
    fn takes_vc_thread_id(t: rapid_vc::ThreadId) -> u32 {
        t.index() as u32
    }
    assert_eq!(takes_vc_thread_id(id), 3);
}

#[test]
fn facade_reaches_every_subsystem() {
    // One cheap call into each re-exported crate, so a dropped manifest
    // dependency or module re-export is caught here rather than downstream.
    let trace = figure_2b_trace();
    assert_eq!(trace.stats().events, trace.len());
    assert!(VectorClock::bottom().is_bottom());
    assert_eq!(FastTrackDetector::new().detect(&trace).distinct_pairs(), 0);
    assert_eq!(CpDetector::new().detect(&trace).distinct_pairs(), 0);
    assert_eq!(McmDetector::new(McmConfig::default()).detect(&trace).distinct_pairs(), 1);
    let generated = RandomTraceConfig::sized(2, 1, 4, 50, 1).generate();
    assert!(generated.validate().is_ok());
    assert!(rapid::gen::figures::figure_2b().predictable_race);
}

#[test]
fn facade_streams_figure_2b_through_the_engine() {
    // The streaming subsystem is reachable through the prelude alone, and a
    // serialized trace driven through StreamReader -> Engine reproduces the
    // batch verdicts (WCP 1 / HB 0 on Figure 2b).
    let trace = figure_2b_trace();
    let text = rapid::trace::format::write_std(&trace);

    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::new()));
    engine.register(Box::new(HbStream::new()));
    let mut reader = rapid::trace::format::StreamReader::std(text.as_bytes());
    engine.run(&mut reader).expect("serialized figure reparses");
    let runs = engine.finish(reader.names());
    assert_eq!(runs[0].outcome.distinct_pairs(), 1, "streamed WCP");
    assert_eq!(runs[1].outcome.distinct_pairs(), 0, "streamed HB");
}
