//! Replays every example trace from the paper (Figures 1–6) through HB, CP
//! and WCP, and checks the verdicts against the paper's claims.
//!
//! ```text
//! cargo run --example paper_figures
//! ```

use rapid::cp::closure::{ClosureEngine, OrderKind};
use rapid::gen::figures;
use rapid::prelude::*;
use rapid::trace::analysis::TraceIndex;
use rapid::trace::reorder::{find_deadlock_witness, find_race_witness};

fn yes_no(value: bool) -> &'static str {
    if value {
        "race"
    } else {
        "-"
    }
}

fn main() {
    println!(
        "{:<11} {:>6} | {:>6} {:>6} {:>6} | {:>12} {:>10} | paper agrees?",
        "figure", "events", "HB", "CP", "WCP", "predictable?", "deadlock?"
    );
    println!("{}", "-".repeat(92));

    let mut all_match = true;
    for figure in figures::paper_figures() {
        let engine = ClosureEngine::new(&figure.trace);
        let hb = engine.unordered(OrderKind::Hb, figure.first, figure.second);
        let cp = engine.unordered(OrderKind::Cp, figure.first, figure.second);
        let wcp_closure = engine.unordered(OrderKind::Wcp, figure.first, figure.second);

        // The linear-time detector agrees with the closure (Theorem 2).
        let outcome = WcpDetector::new().analyze_with_timestamps(&figure.trace);
        let wcp_linear = outcome
            .timestamps
            .expect("timestamps requested")
            .unordered(figure.first, figure.second);
        assert_eq!(wcp_closure, wcp_linear, "closure and vector-clock WCP disagree");

        // Certify predictability with the bounded reordering search.
        let index = TraceIndex::build(&figure.trace);
        let predictable =
            find_race_witness(&figure.trace, &index, figure.first, figure.second, 2_000_000)
                .is_some();
        let deadlock = find_deadlock_witness(&figure.trace, &index, 2_000_000).is_some();

        let matches = hb == figure.hb_race
            && cp == figure.cp_race
            && wcp_closure == figure.wcp_race
            && predictable == figure.predictable_race
            && deadlock == figure.predictable_deadlock;
        all_match &= matches;

        println!(
            "{:<11} {:>6} | {:>6} {:>6} {:>6} | {:>12} {:>10} | {}",
            figure.name,
            figure.trace.len(),
            yes_no(hb),
            yes_no(cp),
            yes_no(wcp_closure),
            if predictable { "yes" } else { "no" },
            if deadlock { "yes" } else { "no" },
            if matches { "yes" } else { "NO" },
        );
    }

    println!();
    if all_match {
        println!("All figures reproduce the paper's claims.");
    } else {
        println!("Some figure disagrees with the paper — see the table above.");
        std::process::exit(1);
    }
}
