//! Run the detectors on one of the modelled Table 1 benchmarks and compare
//! whole-trace analyses against the windowed baseline.
//!
//! ```text
//! cargo run --release --example benchmark_race -- [benchmark] [max_events]
//! ```
//!
//! Defaults to `ftpserver` scaled to 20 000 events.  Use
//! `cargo run --example benchmark_race -- list` to see the benchmark names.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use rapid::gen::benchmarks;
use rapid::mcm::{McmConfig, McmDetector};
use rapid::prelude::*;

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "ftpserver".to_owned());
    if name == "list" {
        for benchmark in benchmarks::benchmark_names() {
            println!("{benchmark}");
        }
        return ExitCode::SUCCESS;
    }
    let max_events: usize = args.next().and_then(|value| value.parse().ok()).unwrap_or(20_000);

    let Some(model) = benchmarks::benchmark_scaled(&name, max_events) else {
        eprintln!("unknown benchmark `{name}` (try `-- list`)");
        return ExitCode::FAILURE;
    };
    let spec = model.spec;
    let trace = &model.trace;
    println!(
        "benchmark {name}: {} (paper trace: {} events, {} threads, {} locks)",
        trace.stats(),
        spec.paper_events,
        spec.threads,
        spec.locks
    );
    println!();

    let started = Instant::now();
    let wcp = WcpDetector::new().analyze(trace);
    let wcp_time = started.elapsed();

    let started = Instant::now();
    let hb = HbDetector::new().detect(trace);
    let hb_time = started.elapsed();

    let started = Instant::now();
    let mcm = McmDetector::new(McmConfig::new(1_000, 60)).detect(trace);
    let mcm_time = started.elapsed();

    println!("                     races   time        paper races");
    println!(
        "WCP (whole trace)  : {:>5}   {:>9.2?}   {}",
        wcp.report.distinct_pairs(),
        wcp_time,
        spec.wcp_races
    );
    println!(
        "HB  (whole trace)  : {:>5}   {:>9.2?}   {}",
        hb.distinct_pairs(),
        hb_time,
        spec.hb_races
    );
    println!(
        "MCM (w=1K, 60s)    : {:>5}   {:>9.2?}   {} (best RVPredict config)",
        mcm.distinct_pairs(),
        mcm_time,
        spec.rv_max_races
    );
    println!();
    println!(
        "WCP queue occupancy peaked at {:.2}% of events (paper reports <= 10% on all rows)",
        wcp.stats.max_queue_percentage()
    );
    println!(
        "largest race distance found: {} events ({}% of the trace)",
        wcp.report.max_distance(),
        100 * wcp.report.max_distance() / trace.len().max(1)
    );
    ExitCode::SUCCESS
}
