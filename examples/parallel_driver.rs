//! Drive the parallel multi-trace driver end to end through the library
//! API: build a shard list → worker-pool driver → merged outcome.
//!
//! Four shard files are generated from two Table 1 benchmark models in a
//! mix of encodings (std text and binary `.rwf` — the driver auto-detects
//! per shard), analyzed with WCP + HB at `--jobs` workers, and the merged,
//! name-keyed outcome is printed.  Because outcomes merge by location and
//! variable *names*, the report is identical for every job count.
//!
//! ```text
//! cargo run --release --example parallel_driver [-- jobs]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use rapid::engine::driver::{self, DriverConfig};
use rapid::engine::Detector;
use rapid::prelude::*;
use rapid::trace::format;

fn main() -> ExitCode {
    let jobs: usize = match std::env::args().nth(1).map(|arg| arg.parse()) {
        None => driver::available_jobs(),
        Some(Ok(jobs)) if jobs >= 1 => jobs,
        Some(_) => {
            eprintln!("usage: parallel_driver [jobs >= 1]");
            return ExitCode::FAILURE;
        }
    };

    // 1. Build the shard list: two scales each of two benchmark models,
    //    even shards as std text, odd shards as binary .rwf.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut paths: Vec<PathBuf> = Vec::new();
    for (index, (name, events)) in
        [("account", 2_000), ("account", 1_000), ("moldyn", 10_000), ("moldyn", 5_000)]
            .into_iter()
            .enumerate()
    {
        let Some(model) = benchmarks::benchmark_scaled(name, events) else {
            eprintln!("unknown benchmark {name}");
            return ExitCode::FAILURE;
        };
        let extension = if index % 2 == 0 { "std" } else { "rwf" };
        let path = dir.join(format!("rapid-parallel-example-{name}-{index}-{pid}.{extension}"));
        if let Err(error) = format::write_trace_file(&model.trace, &path) {
            eprintln!("cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        paths.push(path);
    }

    // 2. Run the driver: one fresh engine (WCP + HB) per shard, shards
    //    claimed off a shared queue by `jobs` workers.
    let factory = || -> Vec<Box<dyn Detector>> {
        vec![Box::new(WcpStream::new()), Box::new(HbStream::new())]
    };
    let result =
        driver::run_shards(&paths, factory, &DriverConfig { jobs, ..DriverConfig::default() });
    for path in &paths {
        std::fs::remove_file(path).ok();
    }
    let report = match result {
        Ok(report) => report,
        Err(error) => {
            eprintln!("cannot analyze {error}");
            return ExitCode::FAILURE;
        }
    };

    // 3. Inspect the merged outcome.
    for shard in &report.shards {
        println!(
            "shard {} ({} events via {}) in {:.2?}",
            shard.path.display(),
            shard.events,
            shard.source,
            shard.wall
        );
    }
    println!();
    println!(
        "merged {} shard(s), {} events, jobs={} in {:.2?}",
        report.shards.len(),
        report.total_events(),
        report.jobs,
        report.wall
    );
    println!();
    print!("{}", Engine::render(&report.merged));
    println!();
    for run in &report.merged {
        for (pair, stats) in &run.outcome.races {
            println!("[{}] {pair} ({} race event(s))", run.outcome.detector, stats.race_events);
        }
    }
    ExitCode::SUCCESS
}
