//! Quickstart: build a tiny trace, run the WCP detector, print the races.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rapid::prelude::*;

fn main() {
    // The trace of Figure 2b of the paper: thread t1 writes y outside its
    // critical section, thread t2 reads y inside one — a predictable race
    // that neither happens-before nor causally-precedes can see.
    let mut builder = TraceBuilder::new();
    let t1 = builder.thread("t1");
    let t2 = builder.thread("t2");
    let lock = builder.lock("l");
    let x = builder.variable("x");
    let y = builder.variable("y");

    builder.at("Worker.java:10");
    builder.write(t1, y);
    builder.acquire(t1, lock);
    builder.write(t1, x);
    builder.release(t1, lock);
    builder.acquire(t2, lock);
    builder.at("Reader.java:44");
    builder.read(t2, y);
    builder.read(t2, x);
    builder.release(t2, lock);
    let trace = builder.finish();

    println!("trace ({} events):", trace.len());
    println!("{}", trace.to_table());

    // Run the three partial-order detectors.
    let wcp = WcpDetector::new().analyze(&trace);
    let hb = HbDetector::new().detect(&trace);

    println!("happens-before races : {}", hb.distinct_pairs());
    println!("WCP races            : {}", wcp.report.distinct_pairs());
    println!();
    print!("{}", wcp.report.summary(&trace));
    println!();
    println!("WCP detector telemetry: {}", wcp.stats);
}
