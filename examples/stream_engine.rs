//! Stream a trace file through the detection engine without materializing it.
//!
//! Demonstrates the bounded-memory ingestion path: a trace file (here a
//! generated Table 1 benchmark written to a temp file, or any file you pass)
//! is read line by line through `StreamReader` and fanned out to WCP and
//! FastTrack in a single pass — no `Trace` is ever built.
//!
//! ```text
//! cargo run --example stream_engine [-- path/to/trace.log]
//! ```

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use rapid::prelude::*;
use rapid::trace::format::{self, StreamReader};

fn main() -> ExitCode {
    // Use the given file, or generate a benchmark model and serialize it.
    let (path, cleanup) = match std::env::args().nth(1) {
        Some(path) => (std::path::PathBuf::from(path), false),
        None => {
            let model = benchmarks::benchmark_scaled("moldyn", 20_000).expect("moldyn exists");
            let path = std::env::temp_dir()
                .join(format!("rapid-stream-example-{}.std", std::process::id()));
            if let Err(error) = std::fs::write(&path, format::write_std(&model.trace)) {
                eprintln!("cannot write {}: {error}", path.display());
                return ExitCode::FAILURE;
            }
            println!("no file given; streaming a generated moldyn model from {}", path.display());
            (path, true)
        }
    };

    let file = match File::open(&path) {
        Ok(file) => file,
        Err(error) => {
            eprintln!("cannot open {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
    };

    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::new()));
    engine.register(Box::new(FastTrackStream::new()));

    let mut reader = StreamReader::std(BufReader::new(file));
    let result = engine.run(&mut reader);
    if cleanup {
        std::fs::remove_file(&path).ok();
    }
    if let Err(error) = result {
        eprintln!("cannot parse {}: {error}", path.display());
        return ExitCode::FAILURE;
    }

    println!(
        "streamed {} events from {} threads / {} variables",
        engine.events_seen(),
        reader.names().num_threads(),
        reader.names().num_variables()
    );
    println!();
    print!("{}", Engine::render(&engine.finish(reader.names())));
    ExitCode::SUCCESS
}
