//! Analyze a logged trace file with every detector in the workspace.
//!
//! The input format is the pipe-separated "std" format (one event per line,
//! `thread|op(target)|location`); see `rapid::trace::format`.  Without an
//! argument the example writes a small sample trace to a temporary file and
//! analyzes that, so it always runs out of the box:
//!
//! ```text
//! cargo run --example analyze_trace [-- path/to/trace.log]
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use rapid::mcm::{McmConfig, McmDetector};
use rapid::prelude::*;
use rapid::trace::format;

const SAMPLE: &str = "\
# sample trace: a lock-protected counter plus one unprotected flag
main|fork(worker)|Main.java:10
main|acq(lock)|Counter.java:5
main|r(counter)|Counter.java:6
main|w(counter)|Counter.java:7
main|rel(lock)|Counter.java:8
main|w(flag)|Main.java:20
worker|acq(lock)|Counter.java:5
worker|r(counter)|Counter.java:6
worker|w(counter)|Counter.java:7
worker|rel(lock)|Counter.java:8
worker|r(flag)|Worker.java:33
main|join(worker)|Main.java:30
";

fn main() -> ExitCode {
    let path = env::args().nth(1);
    let (source, contents) = match path {
        Some(path) => match fs::read_to_string(&path) {
            Ok(contents) => (path, contents),
            Err(error) => {
                eprintln!("cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => ("<built-in sample>".to_owned(), SAMPLE.to_owned()),
    };

    let trace = match format::parse_std(&contents) {
        Ok(trace) => trace,
        Err(error) => {
            eprintln!("cannot parse {source}: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(error) = trace.validate() {
        eprintln!("{source} is not a well-formed trace: {error}");
        return ExitCode::FAILURE;
    }

    println!("analyzing {source}: {}", trace.stats());
    println!();

    let hb = HbDetector::new().detect(&trace);
    let fasttrack = FastTrackDetector::new().detect(&trace);
    let wcp = WcpDetector::new().analyze(&trace);
    let mcm = McmDetector::new(McmConfig::default()).detect(&trace);

    println!("HB (vector clock) : {} distinct race pair(s)", hb.distinct_pairs());
    println!("HB (FastTrack)    : {} distinct race pair(s)", fasttrack.distinct_pairs());
    println!("WCP               : {} distinct race pair(s)", wcp.report.distinct_pairs());
    println!("windowed MCM      : {} distinct race pair(s)", mcm.distinct_pairs());
    println!();
    print!("{}", wcp.report.summary(&trace));
    println!();
    println!("WCP telemetry: {}", wcp.stats);
    ExitCode::SUCCESS
}
