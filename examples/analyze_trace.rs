//! Analyze a logged trace file with every detector in the workspace.
//!
//! The input format is the pipe-separated "std" format (one event per line,
//! `thread|op(target)|location`); see `rapid::trace::format`.  Without an
//! argument the example writes a small sample trace to a temporary file and
//! analyzes that, so it always runs out of the box:
//!
//! ```text
//! cargo run --example analyze_trace [-- path/to/trace.log]
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use rapid::prelude::*;
use rapid::trace::format;

const SAMPLE: &str = "\
# sample trace: a lock-protected counter plus one unprotected flag
main|fork(worker)|Main.java:10
main|acq(lock)|Counter.java:5
main|r(counter)|Counter.java:6
main|w(counter)|Counter.java:7
main|rel(lock)|Counter.java:8
main|w(flag)|Main.java:20
worker|acq(lock)|Counter.java:5
worker|r(counter)|Counter.java:6
worker|w(counter)|Counter.java:7
worker|rel(lock)|Counter.java:8
worker|r(flag)|Worker.java:33
main|join(worker)|Main.java:30
";

fn main() -> ExitCode {
    let path = env::args().nth(1);
    let (source, contents) = match path {
        Some(path) => match fs::read_to_string(&path) {
            Ok(contents) => (path, contents),
            Err(error) => {
                eprintln!("cannot read {path}: {error}");
                return ExitCode::FAILURE;
            }
        },
        None => ("<built-in sample>".to_owned(), SAMPLE.to_owned()),
    };

    let trace = match format::parse_std(&contents) {
        Ok(trace) => trace,
        Err(error) => {
            eprintln!("cannot parse {source}: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(error) = trace.validate() {
        eprintln!("{source} is not a well-formed trace: {error}");
        return ExitCode::FAILURE;
    }

    println!("analyzing {source}: {}", trace.stats());
    println!();

    // One pass of the streaming engine drives all four detectors; each is
    // pre-sized with the trace's thread count like the batch wrappers.
    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::with_threads(trace.num_threads())));
    engine.register(Box::new(HbStream::with_threads(trace.num_threads())));
    engine.register(Box::new(FastTrackStream::with_threads(trace.num_threads())));
    engine.register(Box::new(McmStream::new(McmConfig::default())));
    engine.run_trace(&trace);
    let runs = engine.finish(&trace);

    print!("{}", Engine::render(&runs));
    println!();
    let wcp = &runs[0].outcome;
    println!("{} race pair(s), {} race event(s) [wcp]:", wcp.distinct_pairs(), wcp.race_events());
    for (pair, stats) in &wcp.races {
        println!("  {pair} ({} event(s), min distance {})", stats.race_events, stats.min_distance);
    }
    println!();
    println!(
        "(for multi-GB logs, `cargo run -p rapid-engine --bin engine -- stream {source}` \
analyzes the file without materializing it)"
    );
    ExitCode::SUCCESS
}
