//! Drive the distributed shard driver end to end through the library API:
//! coordinator + worker fleet + submit, all in one process over localhost
//! TCP — the smallest complete model of an `engine serve`/`work`/`submit`
//! deployment.
//!
//! Four shard files are generated from two Table 1 benchmark models in a
//! mix of encodings, served by a [`Coordinator`] bound to an ephemeral
//! port, analyzed by N worker loops (each its own TCP connection, leasing
//! shards and returning `Outcome`s over the wire), and the merged report is
//! fetched with a submit client.  The punchline is printed last: the
//! distributed merge equals a local `run_shards` over the same shards —
//! `PartialEq` on whole outcomes, metrics included.
//!
//! ```text
//! cargo run --release --example distributed_driver [-- workers]
//! ```
//!
//! [`Coordinator`]: rapid::engine::dist::Coordinator

use std::path::PathBuf;
use std::process::ExitCode;

use rapid::engine::dist::{self, Coordinator, ServeConfig};
use rapid::engine::driver::{run_shards, DriverConfig};
use rapid::engine::{DetectorSpec, Engine};
use rapid::prelude::*;
use rapid::trace::format;

fn main() -> ExitCode {
    let workers: usize = match std::env::args().nth(1).map(|arg| arg.parse()) {
        None => 2,
        Some(Ok(workers)) if workers >= 1 => workers,
        Some(_) => {
            eprintln!("usage: distributed_driver [workers >= 1]");
            return ExitCode::FAILURE;
        }
    };

    // 1. Shard list: two scales each of two benchmark models, mixing
    //    encodings (the coordinator ships raw bytes; workers sniff them).
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut paths: Vec<PathBuf> = Vec::new();
    for (index, (name, events)) in
        [("account", 2_000), ("account", 1_000), ("moldyn", 10_000), ("moldyn", 5_000)]
            .into_iter()
            .enumerate()
    {
        let Some(model) = benchmarks::benchmark_scaled(name, events) else {
            eprintln!("unknown benchmark {name}");
            return ExitCode::FAILURE;
        };
        let extension = if index % 2 == 0 { "std" } else { "rwf" };
        let path = dir.join(format!("rapid-dist-example-{name}-{index}-{pid}.{extension}"));
        if let Err(error) = format::write_trace_file(&model.trace, &path) {
            eprintln!("cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        paths.push(path);
    }

    // 2. Coordinator on an ephemeral localhost port; WCP + HB prescribed
    //    to every worker through the WELCOME handshake.
    let config = ServeConfig { spec: DetectorSpec::default(), ..ServeConfig::default() };
    let coordinator = match Coordinator::bind(&paths, &config) {
        Ok(coordinator) => coordinator,
        Err(error) => {
            eprintln!("{error}");
            return ExitCode::FAILURE;
        }
    };
    let addr = coordinator.local_addr().to_string();
    println!("coordinator listening on {addr}, serving {} shard(s)", paths.len());
    let serving = std::thread::spawn(move || coordinator.run());

    // 3. The worker fleet: each `dist::work` call is what `engine work`
    //    runs — here as threads, in production as processes on other hosts.
    let fleet: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || dist::work(&addr, Some(1)))
        })
        .collect();

    // 4. Fetch the merged report (this also shuts the coordinator down).
    let report = match dist::submit(&addr) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("submit failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    for worker in fleet {
        match worker.join().expect("worker thread") {
            Ok(summary) => println!(
                "worker finished: {} shard(s), {} events",
                summary.stats.shards, summary.stats.events
            ),
            Err(error) => eprintln!("worker failed: {error}"),
        }
    }
    let served = serving.join().expect("serve thread").expect("serve completes");

    println!(
        "\nmerged {} shard(s), {} events from {} worker(s) in {:.2?}\n",
        report.shards, report.events, report.workers, report.wall
    );
    print!("{}", Engine::render(&report.merged));
    print!("{}", Engine::render_race_pairs(&report.merged));

    // 5. The guarantee this example exists to demonstrate: distributed
    //    equals local, as whole outcome values.
    let local = run_shards(
        &paths,
        || DetectorSpec::default().build().expect("default spec builds"),
        &DriverConfig { jobs: 1, ..DriverConfig::default() },
    )
    .expect("local run completes");
    let equal = local
        .merged
        .iter()
        .zip(&report.merged)
        .all(|(local_run, remote_run)| local_run.outcome == remote_run.outcome)
        && served
            .report
            .merged
            .iter()
            .zip(&local.merged)
            .all(|(served_run, local_run)| served_run.outcome == local_run.outcome);
    println!(
        "\ndistributed ≡ local (PartialEq, metrics included): {}",
        if equal { "yes" } else { "NO — bug!" }
    );

    for path in &paths {
        std::fs::remove_file(path).ok();
    }
    if equal {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
