//! Drive the resident detection service end to end through the library
//! API: coordinator + worker fleet + two named jobs, all in one process
//! over localhost TCP — the smallest complete model of an `engine
//! serve`/`work`/`submit` deployment.
//!
//! A [`Coordinator`] with no pre-registered shards is bound to an
//! ephemeral port and N worker loops attach to it (each its own TCP
//! connection, leasing shards and returning `Outcome`s over the wire).
//! Two named jobs are then submitted to the *same* resident fleet without
//! restarting anything: `full` runs WCP + HB over four shard files, and
//! `hb-only` runs just HB over two of them, streamed in 4 KiB chunks to
//! exercise multi-chunk transfer.  The punchline is printed last: each
//! job's distributed merge equals a local `run_shards` over that job's
//! shards with that job's detectors — `PartialEq` on whole outcomes,
//! metrics included.
//!
//! ```text
//! cargo run --release --example distributed_driver [-- workers]
//! ```
//!
//! [`Coordinator`]: rapid::engine::dist::Coordinator

use std::path::PathBuf;
use std::process::ExitCode;

use rapid::engine::dist::{self, Coordinator, ServeConfig, SubmitConfig};
use rapid::engine::driver::{run_shards, DriverConfig, MultiReport};
use rapid::engine::{DetectorSpec, Engine};
use rapid::prelude::*;
use rapid::trace::format;

/// Runs the job's shards locally with the job's own detector spec — the
/// ground truth each distributed merge is compared against.
fn local_truth(paths: &[PathBuf], spec: &DetectorSpec) -> MultiReport {
    let spec = spec.clone();
    run_shards(
        paths,
        move || spec.build().expect("spec builds"),
        &DriverConfig { jobs: 1, ..DriverConfig::default() },
    )
    .expect("local run completes")
}

fn main() -> ExitCode {
    let workers: usize = match std::env::args().nth(1).map(|arg| arg.parse()) {
        None => 2,
        Some(Ok(workers)) if workers >= 1 => workers,
        Some(_) => {
            eprintln!("usage: distributed_driver [workers >= 1]");
            return ExitCode::FAILURE;
        }
    };

    // 1. Shard list: two scales each of two benchmark models, mixing
    //    encodings (submit ships raw bytes; workers sniff them).
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut paths: Vec<PathBuf> = Vec::new();
    for (index, (name, events)) in
        [("account", 2_000), ("account", 1_000), ("moldyn", 10_000), ("moldyn", 5_000)]
            .into_iter()
            .enumerate()
    {
        let Some(model) = benchmarks::benchmark_scaled(name, events) else {
            eprintln!("unknown benchmark {name}");
            return ExitCode::FAILURE;
        };
        let extension = if index % 2 == 0 { "std" } else { "rwf" };
        let path = dir.join(format!("rapid-dist-example-{name}-{index}-{pid}.{extension}"));
        if let Err(error) = format::write_trace_file(&model.trace, &path) {
            eprintln!("cannot write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        paths.push(path);
    }

    // 2. A resident coordinator on an ephemeral localhost port.  No shards
    //    are pre-registered: every job below arrives over the wire.
    let config = ServeConfig::default();
    let coordinator = match Coordinator::bind(&[], &config) {
        Ok(coordinator) => coordinator,
        Err(error) => {
            eprintln!("{error}");
            return ExitCode::FAILURE;
        }
    };
    let addr = coordinator.local_addr().to_string();
    println!("resident coordinator listening on {addr}");
    let serving = std::thread::spawn(move || coordinator.run());

    // 3. The worker fleet: each `dist::work` call is what `engine work`
    //    runs — here as threads, in production as processes on other
    //    hosts.  Workers are job-agnostic; each GRANT prescribes the
    //    detectors of the job it belongs to.
    let fleet: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || dist::work(&addr, &dist::WorkConfig::default()))
        })
        .collect();

    // 4. Two named jobs over the same fleet: all four shards under the
    //    default WCP + HB spec, then an HB-only pass over the two account
    //    shards streamed in 4 KiB chunks.
    let hb_spec = DetectorSpec { detectors: vec!["hb".to_owned()], ..DetectorSpec::default() };
    let jobs = [
        ("full", paths.clone(), DetectorSpec::default(), SubmitConfig::default().chunk_len),
        ("hb-only", paths[..2].to_vec(), hb_spec, 4 << 10),
    ];
    let mut equal = true;
    for (name, job_paths, spec, chunk_len) in jobs {
        let submit = SubmitConfig {
            job: Some(name.to_owned()),
            paths: job_paths.clone(),
            spec: spec.clone(),
            chunk_len,
            ..SubmitConfig::default()
        };
        let report = match dist::submit(&addr, &submit) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("submit of job {name} failed: {error}");
                dist::shutdown(&addr).ok();
                return ExitCode::FAILURE;
            }
        };
        println!(
            "\njob `{name}`: merged {} shard(s), {} events from {} worker(s) in {:.2?}",
            report.shards, report.events, report.workers, report.wall
        );
        print!("{}", Engine::render(&report.merged));

        // The guarantee this example exists to demonstrate: distributed
        // equals local, per job, as whole outcome values.
        let local = local_truth(&job_paths, &spec);
        equal &= local
            .merged
            .iter()
            .zip(&report.merged)
            .all(|(local_run, remote_run)| local_run.outcome == remote_run.outcome);
    }

    // 5. Drain: workers see DONE and exit cleanly; the serve summary lists
    //    both answered jobs in open order.
    if let Err(error) = dist::shutdown(&addr) {
        eprintln!("shutdown failed: {error}");
        return ExitCode::FAILURE;
    }
    for worker in fleet {
        match worker.join().expect("worker thread") {
            Ok(summary) => println!(
                "worker finished: {} shard(s), {} events",
                summary.stats.shards, summary.stats.events
            ),
            Err(error) => eprintln!("worker failed: {error}"),
        }
    }
    let summary = serving.join().expect("serve thread").expect("serve completes");
    println!(
        "served {} job(s): {}",
        summary.jobs.len(),
        summary.jobs.iter().map(|job| job.name.as_str()).collect::<Vec<_>>().join(", ")
    );

    println!(
        "\ndistributed ≡ local per job (PartialEq, metrics included): {}",
        if equal { "yes" } else { "NO — bug!" }
    );

    for path in &paths {
        std::fs::remove_file(path).ok();
    }
    if equal {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
