//! `rapid` — a Rust reproduction of *Dynamic Race Prediction in Linear Time*
//! (Kini, Mathur, Viswanathan; PLDI 2017).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — the execution-trace model (events, traces, validation,
//!   formats, correct reorderings).
//! * [`vc`] — vector clocks and epochs.
//! * [`hb`] — the happens-before baseline detector (Djit⁺-style, plus a
//!   FastTrack-style epoch-optimized variant).
//! * [`wcp`] — the paper's contribution: the linear-time weak-causally-
//!   precedes detector (Algorithm 1).
//! * [`cp`] — the causally-precedes baseline (closure-based, windowed or
//!   whole-trace) and a reference closure engine for HB/CP/WCP.
//! * [`mcm`] — a windowed maximal-causal-model predictive search, our
//!   RVPredict-style comparator.
//! * [`gen`] — synthetic workload generators: the paper's figure traces,
//!   benchmark-shaped workloads for Table 1 / Figure 7, random traces and the
//!   lower-bound family of Figure 8.
//! * [`engine`] — the push-based streaming engine: a unified
//!   [`Detector`](rapid_engine::Detector) trait over the detectors'
//!   streaming cores and an [`Engine`](rapid_engine::Engine) driver that
//!   fans one event stream into N detectors in a single pass, so trace
//!   files are analyzed without ever being materialized.
//!
//! # Quick start
//!
//! ```
//! use rapid::prelude::*;
//!
//! // Build the trace of Figure 2b of the paper.
//! let mut b = TraceBuilder::new();
//! let (t1, t2) = (b.thread("t1"), b.thread("t2"));
//! let l = b.lock("l");
//! let (x, y) = (b.variable("x"), b.variable("y"));
//! b.write(t1, y);
//! b.acquire(t1, l);
//! b.write(t1, x);
//! b.release(t1, l);
//! b.acquire(t2, l);
//! b.read(t2, y);
//! b.read(t2, x);
//! b.release(t2, l);
//! let trace = b.finish();
//!
//! // WCP finds the predictable race on y that both HB and CP miss.
//! let wcp_races = WcpDetector::new().detect(&trace);
//! let hb_races = HbDetector::new().detect(&trace);
//! assert_eq!(wcp_races.distinct_pairs(), 1);
//! assert_eq!(hb_races.distinct_pairs(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rapid_cp as cp;
pub use rapid_engine as engine;
pub use rapid_gen as gen;
pub use rapid_hb as hb;
pub use rapid_mcm as mcm;
pub use rapid_trace as trace;
pub use rapid_vc as vc;
pub use rapid_wcp as wcp;

/// Commonly used items, re-exported for `use rapid::prelude::*`.
pub mod prelude {
    pub use rapid_cp::CpDetector;
    pub use rapid_engine::{Detector, Engine};
    pub use rapid_gen::{benchmarks, figures, random::RandomTraceConfig};
    pub use rapid_hb::{FastTrackDetector, FastTrackStream, HbDetector, HbStream};
    pub use rapid_mcm::{McmConfig, McmDetector, McmStream};
    pub use rapid_trace::{
        Event, EventId, EventKind, Location, LockId, Race, RaceKind, RaceReport, ThreadId, Trace,
        TraceBuilder, TraceStats, VarId,
    };
    pub use rapid_vc::{Epoch, VectorClock};
    pub use rapid_wcp::{WcpDetector, WcpStats, WcpStream};
}
