//! Tuning knobs of the windowed MCM search.

/// Configuration of the RVPredict-style windowed analysis.
///
/// The two primary knobs mirror RVPredict's command line: the window size
/// (events per window) and the per-window solver timeout in seconds.  The
/// timeout is mapped to a deterministic search-node quota via
/// [`McmConfig::nodes_per_second`] so that results are reproducible across
/// machines (the mapping is recorded in `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmConfig {
    /// Number of events per analysis window (RVPredict sweeps 1K–10K).
    pub window_size: usize,
    /// Per-window solver budget in "seconds" (RVPredict sweeps 60–240 s).
    pub solver_timeout_secs: u64,
    /// How many search-node expansions one "second" of solver budget buys.
    pub nodes_per_second: u64,
}

impl Default for McmConfig {
    fn default() -> Self {
        McmConfig { window_size: 1_000, solver_timeout_secs: 60, nodes_per_second: 5_000 }
    }
}

impl McmConfig {
    /// Creates a config with the given window size and solver timeout,
    /// keeping the default node/second mapping.
    pub fn new(window_size: usize, solver_timeout_secs: u64) -> Self {
        McmConfig { window_size, solver_timeout_secs, ..McmConfig::default() }
    }

    /// The per-window node budget implied by the timeout.
    pub fn window_budget(&self) -> usize {
        (self.solver_timeout_secs.saturating_mul(self.nodes_per_second)) as usize
    }

    /// The parameter grid of the paper's Figure 7 (window sizes 1K, 2K, 5K,
    /// 10K crossed with timeouts 60 s, 120 s, 240 s).
    pub fn figure7_grid() -> Vec<McmConfig> {
        let mut grid = Vec::new();
        for &window_size in &[1_000usize, 2_000, 5_000, 10_000] {
            for &timeout in &[60u64, 120, 240] {
                grid.push(McmConfig::new(window_size, timeout));
            }
        }
        grid
    }

    /// The two configurations reported in Table 1 columns 8–9:
    /// `(w = 1K, 60 s)` and `(w = 10K, 240 s)`.
    pub fn table1_pair() -> (McmConfig, McmConfig) {
        (McmConfig::new(1_000, 60), McmConfig::new(10_000, 240))
    }

    /// A short human-readable label such as `"w=1K,t=60s"`.
    pub fn label(&self) -> String {
        let window = if self.window_size.is_multiple_of(1_000) {
            format!("{}K", self.window_size / 1_000)
        } else {
            self.window_size.to_string()
        };
        format!("w={window},t={}s", self.solver_timeout_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_rvpredict_smallest_setting() {
        let config = McmConfig::default();
        assert_eq!(config.window_size, 1_000);
        assert_eq!(config.solver_timeout_secs, 60);
        assert!(config.window_budget() > 0);
    }

    #[test]
    fn budget_scales_with_timeout() {
        let short = McmConfig::new(1_000, 60);
        let long = McmConfig::new(1_000, 240);
        assert_eq!(long.window_budget(), 4 * short.window_budget());
    }

    #[test]
    fn figure7_grid_has_twelve_points() {
        let grid = McmConfig::figure7_grid();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0].label(), "w=1K,t=60s");
        assert_eq!(grid[11].label(), "w=10K,t=240s");
    }

    #[test]
    fn table1_pair_matches_columns_8_and_9() {
        let (small, large) = McmConfig::table1_pair();
        assert_eq!((small.window_size, small.solver_timeout_secs), (1_000, 60));
        assert_eq!((large.window_size, large.solver_timeout_secs), (10_000, 240));
    }

    #[test]
    fn label_formats_non_round_windows() {
        assert_eq!(McmConfig::new(1_500, 10).label(), "w=1500,t=10s");
    }
}
