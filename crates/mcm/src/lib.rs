//! Windowed maximal-causal-model (MCM) predictive race search.
//!
//! This crate is the reproduction's stand-in for **RVPredict**, the
//! SMT-based predictive race detector the paper compares against (§4).
//! RVPredict encodes each bounded *window* of the trace as a constraint
//! system over candidate reorderings (program order, lock mutual exclusion,
//! read-from consistency) and asks an SMT solver — under a per-window
//! timeout — whether two conflicting accesses can be scheduled next to each
//! other.  The closed-source SMT pipeline is replaced here by an explicit,
//! budget-bounded reordering search over exactly the same constraint system
//! (the search lives in [`rapid_trace::reorder`]); the interface keeps
//! RVPredict's two tuning knobs:
//!
//! * **window size** — the trace is cut into fixed-size windows and each
//!   window is analyzed in isolation, so races whose accesses fall into
//!   different windows are invisible (§4.3's main observation);
//! * **solver budget** — each window gets a bounded number of search-node
//!   expansions, standing in for the SMT timeout; when a window has many
//!   candidate pairs, each pair gets a thinner slice and may go unresolved,
//!   which reproduces the "large windows overwhelm the solver" effect of
//!   Figure 7.
//!
//! Candidate pairs are seeded from an in-window WCP pass and then *verified*
//! by the reordering search, so — like RVPredict — every reported race comes
//! with an actual witness.
//!
//! # Examples
//!
//! ```
//! use rapid_gen::figures;
//! use rapid_mcm::{McmConfig, McmDetector};
//!
//! let figure = figures::figure_2b();
//! let detector = McmDetector::new(McmConfig::default());
//! let report = detector.detect(&figure.trace);
//! assert_eq!(report.distinct_pairs(), 1); // the predictable race on y
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;

pub use config::McmConfig;
pub use detector::{McmDetector, McmStats, McmStream};
