//! The windowed MCM race detector.

use std::collections::BTreeSet;
use std::fmt;

use rapid_trace::analysis::TraceIndex;
use rapid_trace::reorder::find_race_witness;
use rapid_trace::{EventId, Race, RaceKind, RaceReport, Trace};
use rapid_wcp::WcpDetector;

use crate::config::McmConfig;

/// Telemetry about one windowed MCM run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McmStats {
    /// Number of windows analyzed.
    pub windows: usize,
    /// Candidate conflicting pairs considered across all windows.
    pub candidate_pairs: usize,
    /// Candidate pairs for which a reordering witness was found.
    pub witnessed_pairs: usize,
    /// Candidate pairs abandoned because the window's budget ran out.
    pub budget_exhausted_pairs: usize,
}

impl fmt::Display for McmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows, {} candidates, {} witnessed, {} hit the budget",
            self.windows, self.candidate_pairs, self.witnessed_pairs, self.budget_exhausted_pairs
        )
    }
}

/// RVPredict-style windowed predictive race detection.
///
/// See the crate documentation for how this substitutes for the SMT-based
/// original.  The detector is *precise*: every reported race is backed by an
/// explicit correct reordering of its window that schedules the two accesses
/// next to each other.
#[derive(Debug, Clone, Default)]
pub struct McmDetector {
    config: McmConfig,
}

impl McmDetector {
    /// Creates a detector with the given window/budget configuration.
    pub fn new(config: McmConfig) -> Self {
        McmDetector { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &McmConfig {
        &self.config
    }

    /// Runs the windowed analysis and reports witnessed races.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        self.detect_with_stats(trace).0
    }

    /// Runs the windowed analysis, also returning telemetry.
    pub fn detect_with_stats(&self, trace: &Trace) -> (RaceReport, McmStats) {
        let mut report = RaceReport::new();
        let mut stats = McmStats::default();
        let mut seen_location_pairs = BTreeSet::new();

        // Lock context carried across window boundaries: each window is
        // analyzed with the locks its threads already hold re-established via
        // synthetic acquires, so mid-critical-section cuts do not make
        // protected accesses look unprotected.
        let mut lockctx = rapid_trace::lockctx::LockContext::new(trace.num_threads());

        let window = self.config.window_size.max(1);
        let mut start = 0;
        while start < trace.len() {
            let end = (start + window).min(trace.len());
            stats.windows += 1;
            let held_at_start: Vec<(rapid_vc::ThreadId, Vec<rapid_trace::LockId>)> = trace
                .active_threads()
                .into_iter()
                .map(|thread| (thread, lockctx.held(thread)))
                .filter(|(_, held)| !held.is_empty())
                .collect();
            self.analyze_window(
                trace,
                start,
                end,
                &held_at_start,
                &mut report,
                &mut stats,
                &mut seen_location_pairs,
            );
            for event in &trace.events()[start..end] {
                lockctx.on_event(event);
            }
            start = end;
        }
        (report, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn analyze_window(
        &self,
        trace: &Trace,
        start: usize,
        end: usize,
        held_at_start: &[(rapid_vc::ThreadId, Vec<rapid_trace::LockId>)],
        report: &mut RaceReport,
        stats: &mut McmStats,
        seen_location_pairs: &mut BTreeSet<(rapid_trace::Location, rapid_trace::Location)>,
    ) {
        let (sub, mapping) = trace.windowed_subtrace(start, end, held_at_start);
        if sub.is_empty() {
            return;
        }
        let index = TraceIndex::build(&sub);

        // Candidate generation: conflicting pairs that an in-window WCP pass
        // leaves unordered.  (RVPredict's candidate set is likewise every
        // potential race of the window; seeding from WCP keeps the candidate
        // list small while covering everything the evaluation's workloads
        // contain.)
        let wcp_races = WcpDetector::new().detect(&sub);
        let mut candidates: Vec<(EventId, EventId)> = Vec::new();
        let mut candidate_locations = BTreeSet::new();
        for race in wcp_races.races() {
            let location_pair = race.location_pair();
            if seen_location_pairs.contains(&location_pair)
                || candidate_locations.contains(&location_pair)
            {
                continue;
            }
            candidate_locations.insert(location_pair);
            candidates.push((race.first, race.second));
        }

        if candidates.is_empty() {
            return;
        }
        stats.candidate_pairs += candidates.len();

        // The window's solver budget is split across its candidate pairs,
        // mirroring how a fixed SMT timeout is shared by a window's queries.
        let per_pair_budget = (self.config.window_budget() / candidates.len()).max(1);

        for (first, second) in candidates {
            let witness = find_race_witness(&sub, &index, first, second, per_pair_budget);
            match witness {
                Some(_) => {
                    stats.witnessed_pairs += 1;
                    let (Some(original_first), Some(original_second)) =
                        (mapping[first.index()], mapping[second.index()])
                    else {
                        // Synthetic boundary acquires never conflict, so a
                        // witnessed pair always maps back to real events.
                        continue;
                    };
                    let race = Race {
                        first: original_first,
                        second: original_second,
                        variable: sub[first].kind().variable().expect("access event"),
                        first_location: sub[first].location(),
                        second_location: sub[second].location(),
                        kind: RaceKind::Mcm,
                    };
                    seen_location_pairs.insert(race.location_pair());
                    report.push(race);
                }
                None => {
                    stats.budget_exhausted_pairs += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::benchmarks;
    use rapid_gen::figures;
    use rapid_trace::TraceBuilder;

    #[test]
    fn finds_near_races_inside_a_window() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let report = McmDetector::new(McmConfig::default()).detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert_eq!(report.races()[0].kind, RaceKind::Mcm);
    }

    #[test]
    fn verifies_predictable_races_on_the_figures() {
        // The MCM search reports exactly the figures whose focal pair is a
        // *predictable race* (it never reports the Figure 5 deadlock-only
        // pair, unlike plain WCP).
        for figure in figures::paper_figures() {
            let report = McmDetector::new(McmConfig::default()).detect(&figure.trace);
            let focal_found = report.races().iter().any(|race| {
                (race.first == figure.first && race.second == figure.second)
                    || (race.first == figure.second && race.second == figure.first)
            });
            assert_eq!(
                focal_found, figure.predictable_race,
                "{}: MCM verdict should match predictability of the focal pair",
                figure.name
            );
        }
    }

    #[test]
    fn misses_races_that_cross_window_boundaries() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let x = b.variable("x");
        let filler = b.variable("filler");
        b.write(t1, x);
        for _ in 0..200 {
            b.read(t3, filler);
        }
        b.write(t2, x);
        let trace = b.finish();

        let small_window = McmDetector::new(McmConfig::new(50, 60));
        assert_eq!(small_window.detect(&trace).distinct_pairs(), 0);

        let big_window = McmDetector::new(McmConfig::new(10_000, 60));
        assert_eq!(big_window.detect(&trace).distinct_pairs(), 1);
    }

    #[test]
    fn tight_budgets_lose_races() {
        // With a ludicrously small budget the witness search cannot finish.
        let figure = figures::figure_4();
        let mut config = McmConfig::new(1_000, 1);
        config.nodes_per_second = 1;
        let report = McmDetector::new(config).detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 0);
        // A realistic budget finds the race.
        let report = McmDetector::new(McmConfig::default()).detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 1);
    }

    #[test]
    fn stats_count_windows_and_candidates() {
        let figure = figures::figure_2b();
        let (report, stats) =
            McmDetector::new(McmConfig::new(4, 60)).detect_with_stats(&figure.trace);
        assert_eq!(stats.windows, 2);
        assert!(stats.candidate_pairs <= 2);
        assert_eq!(stats.witnessed_pairs, report.len());
        assert!(stats.to_string().contains("windows"));
    }

    #[test]
    fn duplicate_location_pairs_are_reported_once() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        for _ in 0..3 {
            b.at("A.java:1");
            b.write(t1, x);
            b.at("B.java:2");
            b.write(t2, x);
        }
        let report = McmDetector::new(McmConfig::default()).detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert_eq!(report.len(), 1, "the same location pair is only witnessed once");
    }

    #[test]
    fn windowed_run_on_a_benchmark_model_misses_far_races() {
        let model = benchmarks::benchmark_scaled("moldyn", 6_000).expect("moldyn exists");
        let wcp_races = rapid_wcp::WcpDetector::new().detect(&model.trace).distinct_pairs();
        let mcm_races =
            McmDetector::new(McmConfig::new(1_000, 60)).detect(&model.trace).distinct_pairs();
        assert!(
            mcm_races < wcp_races,
            "windowing must lose the far-apart races ({mcm_races} vs {wcp_races})"
        );
    }
}
