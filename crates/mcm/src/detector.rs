//! The windowed MCM race detector.

use std::collections::BTreeSet;
use std::fmt;

use rapid_trace::analysis::TraceIndex;
use rapid_trace::lockctx::LockContext;
use rapid_trace::reorder::find_race_witness;
use rapid_trace::{Event, EventId, Location, LockId, Race, RaceDrain, RaceKind, RaceReport, Trace};
use rapid_vc::ThreadId;
use rapid_wcp::WcpStream;

use crate::config::McmConfig;

/// Telemetry about one windowed MCM run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McmStats {
    /// Number of windows analyzed.
    pub windows: usize,
    /// Candidate conflicting pairs considered across all windows.
    pub candidate_pairs: usize,
    /// Candidate pairs for which a reordering witness was found.
    pub witnessed_pairs: usize,
    /// Candidate pairs abandoned because the window's budget ran out.
    pub budget_exhausted_pairs: usize,
}

impl McmStats {
    /// Folds another run's counters into this one (every field is a total,
    /// so all four sum).
    pub fn merge(&mut self, other: &McmStats) {
        self.windows += other.windows;
        self.candidate_pairs += other.candidate_pairs;
        self.witnessed_pairs += other.witnessed_pairs;
        self.budget_exhausted_pairs += other.budget_exhausted_pairs;
    }
}

impl fmt::Display for McmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows, {} candidates, {} witnessed, {} hit the budget",
            self.windows, self.candidate_pairs, self.witnessed_pairs, self.budget_exhausted_pairs
        )
    }
}

/// RVPredict-style windowed predictive race detection.
///
/// See the crate documentation for how this substitutes for the SMT-based
/// original.  The detector is *precise*: every reported race is backed by an
/// explicit correct reordering of its window that schedules the two accesses
/// next to each other.  [`McmDetector::detect`] is a thin wrapper that feeds
/// the trace through [`McmStream`], the push-based streaming core (batch =
/// stream + collect).
#[derive(Debug, Clone, Default)]
pub struct McmDetector {
    config: McmConfig,
}

/// The push-based streaming core of the windowed MCM search.
///
/// Events are buffered until a window fills ([`McmConfig::window_size`]
/// events), then the window is analyzed in isolation — exactly like the
/// batch detector cuts a materialized trace — and the buffer is recycled.
/// Live memory is `O(window_size)`, independent of the stream length.  The
/// lock context is carried across window boundaries so that
/// mid-critical-section cuts do not make protected accesses look
/// unprotected.
pub struct McmStream {
    config: McmConfig,
    buffer: Vec<Event>,
    /// Lock context of everything *before* the buffered window.
    lockctx: LockContext,
    /// Threads that performed at least one event before the buffered window.
    threads_seen: BTreeSet<ThreadId>,
    seen_location_pairs: BTreeSet<(Location, Location)>,
    stats: McmStats,
    report: RaceReport,
    drain: RaceDrain,
    events: usize,
}

impl McmStream {
    /// Creates a stream with the given window/budget configuration.
    pub fn new(config: McmConfig) -> Self {
        McmStream {
            config,
            buffer: Vec::new(),
            lockctx: LockContext::new(0),
            threads_seen: BTreeSet::new(),
            seen_location_pairs: BTreeSet::new(),
            stats: McmStats::default(),
            report: RaceReport::new(),
            drain: RaceDrain::new(),
            events: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &McmConfig {
        &self.config
    }

    /// Processes one event.  Races are reported in batches: the returned
    /// vector is non-empty only on the event that completes a window.
    pub fn on_event(&mut self, event: &Event) -> Vec<Race> {
        self.events += 1;
        self.buffer.push(*event);
        if self.buffer.len() >= self.config.window_size.max(1) {
            self.flush_window();
        }
        self.drain.fresh(&self.report)
    }

    /// Races found so far.
    pub fn report(&self) -> &RaceReport {
        &self.report
    }

    /// Number of events currently buffered (at most the window size).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Number of events processed so far.
    pub fn events_seen(&self) -> usize {
        self.events
    }

    /// Ends the stream: analyzes the final partial window and returns the
    /// accumulated report and telemetry.
    pub fn finish(&mut self) -> (RaceReport, McmStats) {
        if !self.buffer.is_empty() {
            self.flush_window();
        }
        (std::mem::take(&mut self.report), std::mem::take(&mut self.stats))
    }

    fn flush_window(&mut self) {
        self.stats.windows += 1;
        let held_at_start: Vec<(ThreadId, Vec<LockId>)> = self
            .threads_seen
            .iter()
            .map(|&thread| (thread, self.lockctx.held(thread)))
            .filter(|(_, held)| !held.is_empty())
            .collect();
        analyze_window(
            &self.config,
            &self.buffer,
            &held_at_start,
            &mut self.report,
            &mut self.stats,
            &mut self.seen_location_pairs,
        );
        for event in &self.buffer {
            self.threads_seen.insert(event.thread());
            self.lockctx.on_event(event);
        }
        self.buffer.clear();
    }
}

/// Analyzes one window of events in isolation: seeds candidate pairs from an
/// in-window WCP pass, verifies each with the bounded reordering search, and
/// maps witnessed pairs back to their original event ids.
fn analyze_window(
    config: &McmConfig,
    window: &[Event],
    held_at_start: &[(ThreadId, Vec<LockId>)],
    report: &mut RaceReport,
    stats: &mut McmStats,
    seen_location_pairs: &mut BTreeSet<(Location, Location)>,
) {
    let (sub, mapping) = Trace::assemble_window(window, held_at_start);
    if sub.is_empty() {
        return;
    }
    let index = TraceIndex::build(&sub);

    // Candidate generation: conflicting pairs that an in-window WCP pass
    // leaves unordered.  (RVPredict's candidate set is likewise every
    // potential race of the window; seeding from WCP keeps the candidate
    // list small while covering everything the evaluation's workloads
    // contain.)  The window trace carries no name tables, so the pass
    // pre-registers every thread id appearing in the window explicitly —
    // running it in discovery mode would weaken Rule (b) for threads whose
    // first window event comes late.
    let window_threads = sub
        .events()
        .iter()
        .map(|event| {
            let mut max = event.thread().index();
            if let Some(target) = event.kind().target_thread() {
                max = max.max(target.index());
            }
            max + 1
        })
        .max()
        .unwrap_or(0);
    let mut wcp_pass = WcpStream::with_threads(window_threads);
    for event in sub.events() {
        wcp_pass.on_event(event);
    }
    let wcp_races = wcp_pass.finish().report;
    let mut candidates: Vec<(EventId, EventId)> = Vec::new();
    let mut candidate_locations = BTreeSet::new();
    for race in wcp_races.races() {
        let location_pair = race.location_pair();
        if seen_location_pairs.contains(&location_pair)
            || candidate_locations.contains(&location_pair)
        {
            continue;
        }
        candidate_locations.insert(location_pair);
        candidates.push((race.first, race.second));
    }

    if candidates.is_empty() {
        return;
    }
    stats.candidate_pairs += candidates.len();

    // The window's solver budget is split across its candidate pairs,
    // mirroring how a fixed SMT timeout is shared by a window's queries.
    let per_pair_budget = (config.window_budget() / candidates.len()).max(1);

    for (first, second) in candidates {
        let witness = find_race_witness(&sub, &index, first, second, per_pair_budget);
        match witness {
            Some(_) => {
                stats.witnessed_pairs += 1;
                let (Some(original_first), Some(original_second)) =
                    (mapping[first.index()], mapping[second.index()])
                else {
                    // Synthetic boundary acquires never conflict, so a
                    // witnessed pair always maps back to real events.
                    continue;
                };
                let race = Race {
                    first: original_first,
                    second: original_second,
                    variable: sub[first].kind().variable().expect("access event"),
                    first_location: sub[first].location(),
                    second_location: sub[second].location(),
                    kind: RaceKind::Mcm,
                };
                seen_location_pairs.insert(race.location_pair());
                report.push(race);
            }
            None => {
                stats.budget_exhausted_pairs += 1;
            }
        }
    }
}

impl McmDetector {
    /// Creates a detector with the given window/budget configuration.
    pub fn new(config: McmConfig) -> Self {
        McmDetector { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &McmConfig {
        &self.config
    }

    /// Runs the windowed analysis and reports witnessed races.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        self.detect_with_stats(trace).0
    }

    /// Runs the windowed analysis, also returning telemetry.
    pub fn detect_with_stats(&self, trace: &Trace) -> (RaceReport, McmStats) {
        let mut stream = McmStream::new(self.config.clone());
        for event in trace.events() {
            stream.on_event(event);
        }
        stream.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::benchmarks;
    use rapid_gen::figures;
    use rapid_trace::TraceBuilder;

    #[test]
    fn stats_merge_sums_every_field() {
        let mut left = McmStats {
            windows: 1,
            candidate_pairs: 4,
            witnessed_pairs: 2,
            budget_exhausted_pairs: 1,
        };
        left.merge(&McmStats {
            windows: 2,
            candidate_pairs: 3,
            witnessed_pairs: 1,
            budget_exhausted_pairs: 0,
        });
        assert_eq!(
            left,
            McmStats {
                windows: 3,
                candidate_pairs: 7,
                witnessed_pairs: 3,
                budget_exhausted_pairs: 1
            }
        );
    }

    #[test]
    fn finds_near_races_inside_a_window() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let report = McmDetector::new(McmConfig::default()).detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert_eq!(report.races()[0].kind, RaceKind::Mcm);
    }

    #[test]
    fn verifies_predictable_races_on_the_figures() {
        // The MCM search reports exactly the figures whose focal pair is a
        // *predictable race* (it never reports the Figure 5 deadlock-only
        // pair, unlike plain WCP).
        for figure in figures::paper_figures() {
            let report = McmDetector::new(McmConfig::default()).detect(&figure.trace);
            let focal_found = report.races().iter().any(|race| {
                (race.first == figure.first && race.second == figure.second)
                    || (race.first == figure.second && race.second == figure.first)
            });
            assert_eq!(
                focal_found, figure.predictable_race,
                "{}: MCM verdict should match predictability of the focal pair",
                figure.name
            );
        }
    }

    #[test]
    fn misses_races_that_cross_window_boundaries() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let x = b.variable("x");
        let filler = b.variable("filler");
        b.write(t1, x);
        for _ in 0..200 {
            b.read(t3, filler);
        }
        b.write(t2, x);
        let trace = b.finish();

        let small_window = McmDetector::new(McmConfig::new(50, 60));
        assert_eq!(small_window.detect(&trace).distinct_pairs(), 0);

        let big_window = McmDetector::new(McmConfig::new(10_000, 60));
        assert_eq!(big_window.detect(&trace).distinct_pairs(), 1);
    }

    #[test]
    fn tight_budgets_lose_races() {
        // With a ludicrously small budget the witness search cannot finish.
        let figure = figures::figure_4();
        let mut config = McmConfig::new(1_000, 1);
        config.nodes_per_second = 1;
        let report = McmDetector::new(config).detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 0);
        // A realistic budget finds the race.
        let report = McmDetector::new(McmConfig::default()).detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 1);
    }

    #[test]
    fn stats_count_windows_and_candidates() {
        let figure = figures::figure_2b();
        let (report, stats) =
            McmDetector::new(McmConfig::new(4, 60)).detect_with_stats(&figure.trace);
        assert_eq!(stats.windows, 2);
        assert!(stats.candidate_pairs <= 2);
        assert_eq!(stats.witnessed_pairs, report.len());
        assert!(stats.to_string().contains("windows"));
    }

    #[test]
    fn duplicate_location_pairs_are_reported_once() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        for _ in 0..3 {
            b.at("A.java:1");
            b.write(t1, x);
            b.at("B.java:2");
            b.write(t2, x);
        }
        let report = McmDetector::new(McmConfig::default()).detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert_eq!(report.len(), 1, "the same location pair is only witnessed once");
    }

    #[test]
    fn windowed_run_on_a_benchmark_model_misses_far_races() {
        let model = benchmarks::benchmark_scaled("moldyn", 6_000).expect("moldyn exists");
        let wcp_races = rapid_wcp::WcpDetector::new().detect(&model.trace).distinct_pairs();
        let mcm_races =
            McmDetector::new(McmConfig::new(1_000, 60)).detect(&model.trace).distinct_pairs();
        assert!(
            mcm_races < wcp_races,
            "windowing must lose the far-apart races ({mcm_races} vs {wcp_races})"
        );
    }

    #[test]
    fn stream_reports_races_at_window_boundaries() {
        // Two adjacent conflicting writes inside the first window: the race
        // surfaces on the event that completes the window, not before.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        let filler = b.variable("filler");
        b.write(t1, x);
        b.write(t2, x);
        for _ in 0..6 {
            b.read(t1, filler);
        }
        let trace = b.finish();

        let mut stream = McmStream::new(McmConfig::new(4, 60));
        let mut per_event: Vec<usize> = Vec::new();
        for event in trace.events() {
            per_event.push(stream.on_event(event).len());
        }
        let (report, stats) = stream.finish();
        assert_eq!(report.distinct_pairs(), 1);
        assert_eq!(stats.windows, 2);
        assert_eq!(per_event[3], 1, "the race surfaces when the first window closes");
        assert_eq!(per_event.iter().sum::<usize>(), 1);
        assert_eq!(stream.buffered(), 0);
    }
}
