//! Round-trip and error-path coverage for the `Outcome` wire codec,
//! mirroring `crates/trace/tests/binary_roundtrip.rs` for the `.rwf` codec.
//!
//! The property that matters for the distributed driver: *whatever* outcome
//! a worker produces — any pair set, any metric mix, any name weirdness —
//! decoding its encoding yields an equal value (`PartialEq`, metrics
//! included), so shipping results over the wire is lossless and the
//! coordinator's fold sees exactly what a local fold would.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rapid_engine::outcome::{wire, Aggregation, Metric, Metrics, Outcome, PairStats, RacePair};
use rapid_engine::Engine;
use rapid_trace::format::wire::Cursor;

/// A name drawn from a small pool plus an adversarial tail: empty-ish,
/// unicode, separator-laden names all must survive the codec.
fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u8..26).prop_map(|n| format!("var{n}")),
        (0u8..10).prop_map(|n| format!("File.java:{n}")),
        Just("x|y,z".to_owned()),
        Just("λ→race".to_owned()),
        Just("#not a comment".to_owned()),
    ]
}

fn pair_stats() -> impl Strategy<Value = PairStats> {
    (1usize..1000, 1usize..100_000)
        .prop_map(|(race_events, min_distance)| PairStats { race_events, min_distance })
}

fn race_map() -> impl Strategy<Value = BTreeMap<RacePair, PairStats>> {
    prop::collection::vec(((name(), name(), name()), pair_stats()), 0..12).prop_map(|pairs| {
        let mut races = BTreeMap::new();
        for ((variable, a, b), stats) in pairs {
            // Colliding keys keep the first stats — any consistent map is a
            // valid outcome.
            races.entry(RacePair::new(variable, a, b)).or_insert(stats);
        }
        races
    })
}

fn metrics() -> impl Strategy<Value = Metrics> {
    prop::collection::vec(((0u8..12), (0u32..1_000_000), (0u8..2)), 0..8).prop_map(|entries| {
        let mut metrics = Metrics::new();
        for (name, value, is_max) in entries {
            // Values built from integers and quarters: exactly
            // representable, so PartialEq round-trips are exact (the
            // codec itself ships raw IEEE-754 bits either way).
            let value = value as f64 / 4.0;
            let aggregation = if is_max == 1 { Aggregation::Max } else { Aggregation::Sum };
            metrics.record(format!("metric_{name}"), Metric { aggregation, value });
        }
        metrics
    })
}

fn outcome() -> impl Strategy<Value = Outcome> {
    ((0u8..4), (0usize..5), (0usize..1_000_000), race_map(), metrics()).prop_map(
        |(detector, shards, events, races, metrics)| Outcome {
            detector: ["wcp", "hb", "hb-fasttrack", "mcm(w=1K,t=60s)"][detector as usize]
                .to_owned(),
            shards,
            events,
            races,
            metrics,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// encode → decode is the identity on whole `Outcome` values —
    /// `PartialEq` over detector, shards, events, every race pair's stats,
    /// and every metric (value *and* aggregation rule).
    #[test]
    fn outcome_round_trips_through_the_wire(outcome in outcome()) {
        let bytes = wire::to_bytes(&outcome);
        prop_assert!(wire::looks_like_outcome(&bytes));
        let decoded = wire::from_bytes(&bytes).expect("well-formed encoding decodes");
        prop_assert_eq!(&decoded, &outcome);
        // And the encoding is a fixpoint: re-encoding the decoded value is
        // byte-identical (deterministic name-table order).
        prop_assert_eq!(wire::to_bytes(&decoded), bytes);
    }

    /// Every strict prefix of a valid encoding fails *typed* — Truncated
    /// (or BadMagic inside the first four bytes), never a panic, never a
    /// bogus success.
    #[test]
    fn truncated_encodings_fail_typed(outcome in outcome()) {
        let bytes = wire::to_bytes(&outcome);
        for len in 0..bytes.len() {
            match wire::from_bytes(&bytes[..len]) {
                Err(wire::WireError::Truncated) | Err(wire::WireError::BadMagic) => {}
                other => prop_assert!(false, "prefix of {} bytes: {:?}", len, other),
            }
        }
    }
}

#[test]
fn real_detector_outcomes_round_trip() {
    // Not just synthetic values: run the actual detectors over a racy
    // trace and ship their outcomes through the codec.
    let input = "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\nt2|w(x)\n";
    let mut engine = Engine::new();
    engine.register(Box::new(rapid_wcp::WcpStream::new()));
    engine.register(Box::new(rapid_hb::HbStream::new()));
    engine.register(Box::new(rapid_hb::FastTrackStream::new()));
    engine.register(Box::new(rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default())));
    let mut reader = rapid_trace::format::StreamReader::std(input.as_bytes());
    engine.run(&mut reader).expect("trace parses");
    for run in engine.finish(reader.names()) {
        let bytes = wire::to_bytes(&run.outcome);
        assert_eq!(
            wire::from_bytes(&bytes).expect("decodes"),
            run.outcome,
            "{} outcome did not survive the wire",
            run.outcome.detector
        );
    }
}

#[test]
fn typed_errors_for_bad_magic_and_unknown_version() {
    let mut races = BTreeMap::new();
    races.insert(RacePair::new("x", "A", "B"), PairStats { race_events: 1, min_distance: 1 });
    let outcome = Outcome {
        detector: "wcp".to_owned(),
        shards: 1,
        events: 2,
        races,
        metrics: Metrics::new(),
    };
    let good = wire::to_bytes(&outcome);

    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"RWF\0"); // the *trace* magic is not an outcome
    assert_eq!(wire::from_bytes(&bad_magic).unwrap_err(), wire::WireError::BadMagic);

    let mut future = good.clone();
    future[4..6].copy_from_slice(&99u16.to_le_bytes());
    assert_eq!(wire::from_bytes(&future).unwrap_err(), wire::WireError::BadVersion(99));

    let mut trailing = good.clone();
    trailing.extend_from_slice(b"junk");
    assert_eq!(wire::from_bytes(&trailing).unwrap_err(), wire::WireError::TrailingBytes);

    // Embedded decodes tolerate (and position past) exactly one outcome.
    let mut two = good.clone();
    two.extend_from_slice(&good);
    let mut cursor = Cursor::new(&two);
    assert_eq!(wire::decode(&mut cursor).unwrap(), outcome);
    assert_eq!(wire::decode(&mut cursor).unwrap(), outcome);
    assert!(cursor.at_end());
}
