//! Differential tests for the parallel multi-trace driver.
//!
//! Random shard sets (1–4 random well-formed traces, serialized to a mix of
//! std text and binary `.rwf` files) are analyzed three ways: through
//! [`run_shards`] at `jobs ∈ {1, 2, 4}`, and by folding sequential per-file
//! engine runs by hand.  The properties:
//!
//! (a) the merged race-pair sets AND the aggregated metrics are identical
//!     for every job count (worker interleaving never leaks into results);
//! (b) the driver's fold equals the sequential per-file fold — same
//!     `Outcome` values, not just same cardinalities;
//! (c) report ordering is deterministic: shards come back in input order
//!     regardless of which worker finished first;
//! (d) independently of `Outcome::merge` (so a merge bug cannot corrupt
//!     both sides of the comparison), the merged race map equals a naive
//!     hand-computed union over per-shard outcomes, and merged events equal
//!     the hand-computed sum.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;
use rapid_engine::driver::{run_shards, DriverConfig};
use rapid_engine::{Detector, DetectorRun, Engine, PairStats, RacePair};
use rapid_hb::HbStream;
use rapid_trace::format::{self, AnyReader, TextFormat};
use rapid_trace::Trace;
use rapid_wcp::WcpStream;

mod common;

static SHARD_SET: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn detectors() -> Vec<Box<dyn Detector>> {
    vec![Box::new(WcpStream::new()), Box::new(HbStream::new())]
}

/// Writes each trace to a shard file, alternating encodings: even shards as
/// std text, odd shards as binary `.rwf` (exercising mixed-encoding runs).
fn write_shards(traces: &[Trace]) -> Vec<PathBuf> {
    let set = SHARD_SET.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    traces
        .iter()
        .enumerate()
        .map(|(index, trace)| {
            let extension = if index % 2 == 0 { "std" } else { "rwf" };
            let path = std::env::temp_dir()
                .join(format!("rapid-parallel-{}-{set}-{index}.{extension}", std::process::id()));
            format::write_trace_file(trace, &path).expect("shard writes");
            path
        })
        .collect()
}

/// One fresh engine per file: the per-shard runs of the sequential
/// baseline, *not* folded.
fn per_shard_runs(paths: &[PathBuf]) -> Vec<Vec<DetectorRun>> {
    paths
        .iter()
        .map(|path| {
            let mut reader =
                AnyReader::open(path, TextFormat::from_path(path), true).expect("shard reopens");
            let mut engine = Engine::new();
            for detector in detectors() {
                engine.register(detector);
            }
            engine.run(&mut reader).expect("shard parses");
            engine.finish(reader.names())
        })
        .collect()
}

/// The sequential baseline: per-shard runs folded in input order through
/// the outcome algebra — definitionally "summing per-file analysis".
fn sequential_fold(shards: &[Vec<DetectorRun>]) -> Vec<DetectorRun> {
    let mut merged: Vec<DetectorRun> = Vec::new();
    for runs in shards {
        if merged.is_empty() {
            merged = runs.clone();
        } else {
            for (aggregate, run) in merged.iter_mut().zip(runs) {
                aggregate.merge(run.clone());
            }
        }
    }
    merged
}

/// A *naive* ground truth that never calls `Outcome::merge`: hand-union the
/// race maps (race events add, min distance mins) and hand-sum the events
/// of one detector's per-shard outcomes.
fn naive_union(
    shards: &[Vec<DetectorRun>],
    detector: usize,
) -> (BTreeMap<RacePair, PairStats>, usize) {
    let mut races: BTreeMap<RacePair, PairStats> = BTreeMap::new();
    let mut events = 0usize;
    for runs in shards {
        let outcome = &runs[detector].outcome;
        events += outcome.events;
        for (pair, stats) in &outcome.races {
            match races.get_mut(pair) {
                Some(existing) => {
                    existing.race_events += stats.race_events;
                    existing.min_distance = existing.min_distance.min(stats.min_distance);
                }
                None => {
                    races.insert(pair.clone(), *stats);
                }
            }
        }
    }
    (races, events)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn multi_jobs_equals_sequential_per_file_analysis(
        traces in prop::collection::vec(common::generated_trace(), 1..5)
    ) {
        let paths = write_shards(&traces);
        let shard_runs = per_shard_runs(&paths);
        let baseline = sequential_fold(&shard_runs);

        for jobs in [1usize, 2, 4] {
            let report = run_shards(
                &paths,
                detectors,
                &DriverConfig { jobs, ..DriverConfig::default() },
            )
            .expect("all shards parse");

            // (c) deterministic ordering: input order, not completion order.
            prop_assert_eq!(report.shards.len(), paths.len());
            for (shard, path) in report.shards.iter().zip(&paths) {
                prop_assert_eq!(&shard.path, path, "jobs={}", jobs);
            }

            // (a) + (b): merged outcomes — race-pair sets, per-pair stats,
            // event totals and every aggregated metric — equal the
            // sequential fold as *values*.
            prop_assert_eq!(report.merged.len(), baseline.len());
            for (run, base) in report.merged.iter().zip(&baseline) {
                prop_assert_eq!(
                    &run.outcome,
                    &base.outcome,
                    "jobs={} diverged from sequential analysis for {}",
                    jobs,
                    base.outcome.detector
                );
            }

            // The aggregate metrics really did aggregate: events sum over
            // shards, and every shard contributed.
            let total: usize = traces.iter().map(Trace::len).sum();
            prop_assert_eq!(report.total_events(), total);
            for run in &report.merged {
                prop_assert_eq!(run.outcome.shards, paths.len());
                prop_assert_eq!(run.outcome.events, total);
            }

            // (d) independent ground truth: the merged race map equals a
            // hand-computed union of the per-shard outcomes that never
            // touches Outcome::merge, so a merge bug cannot hide by
            // corrupting both sides of assertion (b).
            for (index, run) in report.merged.iter().enumerate() {
                let (races, events) = naive_union(&shard_runs, index);
                prop_assert_eq!(
                    &run.outcome.races,
                    &races,
                    "jobs={} diverged from the hand-computed union for {}",
                    jobs,
                    run.outcome.detector
                );
                prop_assert_eq!(run.outcome.events, events);
            }
        }

        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    }
}
