//! End-to-end streaming tests: trace file → [`StreamReader`] → [`Engine`].
//!
//! These lock the streaming path against the batch baselines recorded in
//! PR 1 (CHANGES.md): Figure 2b (WCP 1 race / HB 0) and a Table 1 benchmark
//! model reproduce their race counts through the file-streaming pipeline,
//! and streaming WCP state stays bounded on a 500K-event stream.

use std::fs::File;
use std::io::{BufReader, Write as _};

use rapid_engine::{DetectorRun, Engine};
use rapid_gen::{benchmarks, figures};
use rapid_hb::HbStream;
use rapid_mcm::{McmConfig, McmDetector, McmStream};
use rapid_trace::format::{self, StreamReader};
use rapid_trace::{Location, Trace};
use rapid_vc::ThreadId;
use rapid_wcp::WcpStream;

/// Writes `trace` to a temp file in std format and returns its path.
fn write_temp_trace(name: &str, trace: &Trace) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rapid-engine-{name}-{}.std", std::process::id()));
    let mut file = File::create(&path).expect("temp file creates");
    file.write_all(format::write_std(trace).as_bytes()).expect("temp file writes");
    path
}

#[test]
fn figure_2b_streams_from_a_file_with_the_baseline_counts() {
    let figure = figures::figure_2b();
    let path = write_temp_trace("figure2b", &figure.trace);

    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::new()));
    engine.register(Box::new(HbStream::new()));

    let mut reader = StreamReader::std(BufReader::new(File::open(&path).expect("reopens")));
    engine.run(&mut reader).expect("figure trace parses");
    let runs = engine.finish(reader.names());
    std::fs::remove_file(&path).ok();

    assert_eq!(engine.events_seen(), figure.trace.len());
    let wcp = runs.iter().find(|run| run.outcome.detector == "wcp").expect("wcp ran");
    let hb = runs.iter().find(|run| run.outcome.detector == "hb").expect("hb ran");
    // The PR 1 baseline: Figure 2b has exactly one WCP race (on y) that HB
    // misses entirely.
    assert_eq!(wcp.outcome.distinct_pairs(), 1);
    assert_eq!(hb.outcome.distinct_pairs(), 0);
}

#[test]
fn table1_benchmark_streams_with_the_baseline_counts() {
    // account is a full Table 1 row at its default scale; the PR 1 baseline
    // reproduces the paper's race counts for it (spec.wcp_races /
    // spec.hb_races), which the streaming path must preserve end-to-end.
    let spec = benchmarks::spec("account").expect("account exists");
    let model = benchmarks::benchmark("account").expect("account generates");
    let path = write_temp_trace("account", &model.trace);

    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::new()));
    engine.register(Box::new(HbStream::new()));
    let (mcm_config, _) = McmConfig::table1_pair();
    engine.register(Box::new(McmStream::new(mcm_config.clone())));

    let mut reader = StreamReader::std(BufReader::new(File::open(&path).expect("reopens")));
    engine.run(&mut reader).expect("benchmark trace parses");
    let runs = engine.finish(reader.names());
    std::fs::remove_file(&path).ok();

    let find = |name: &str| -> &DetectorRun {
        runs.iter().find(|run| run.outcome.detector.starts_with(name)).expect("detector ran")
    };
    assert_eq!(find("wcp").outcome.distinct_pairs(), spec.wcp_races, "WCP baseline");
    assert_eq!(find("hb").outcome.distinct_pairs(), spec.hb_races, "HB baseline");

    // The windowed MCM stream agrees with its batch wrapper on the same
    // trace.  Outcomes are keyed by location *names*, so the streamed side
    // (ids interned in first-occurrence order) and the batch side (builder
    // interning) compare directly.
    let batch_mcm = McmDetector::new(mcm_config).detect(&model.trace);
    let batch_outcome = rapid_engine::Outcome::from_report(
        "mcm",
        model.trace.len(),
        &batch_mcm,
        rapid_engine::Metrics::new(),
        &model.trace,
    );
    assert_eq!(
        find("mcm").outcome.races,
        batch_outcome.races,
        "MCM stream/batch divergence (race pairs, events or distances)"
    );
}

#[test]
fn any_reader_auto_detects_binary_regardless_of_extension() {
    // A binary .rwf written under a misleading `.std` extension must still
    // be routed to the binary reader (magic sniffing beats the extension)
    // and produce the same engine outcome as the text original.
    let figure = figures::figure_2b();
    let text_path = write_temp_trace("anyreader-text", &figure.trace);
    let lying_path =
        std::env::temp_dir().join(format!("rapid-engine-anyreader-{}.std", std::process::id()));
    std::fs::write(&lying_path, format::to_rwf_bytes(&figure.trace)).expect("rwf writes");

    let mut outcomes = Vec::new();
    for (path, expected_source) in [(&text_path, "text/mmap"), (&lying_path, "binary/mmap")] {
        let mut reader = format::AnyReader::open(path, format::TextFormat::Std, true)
            .expect("auto-detection opens both encodings");
        assert_eq!(reader.source(), expected_source);
        let mut engine = Engine::new();
        engine.register(Box::new(WcpStream::new()));
        engine.register(Box::new(HbStream::new()));
        engine.run(&mut reader).expect("both encodings parse");
        let events = engine.events_seen();
        let runs = engine.finish(reader.names());
        outcomes.push((runs[0].outcome.clone(), runs[1].outcome.clone(), events));
    }
    std::fs::remove_file(&text_path).ok();
    std::fs::remove_file(&lying_path).ok();

    assert_eq!(outcomes[0].0.distinct_pairs(), 1, "Figure 2b baseline: WCP 1");
    assert_eq!(outcomes[0].1.distinct_pairs(), 0, "Figure 2b baseline: HB 0");
    assert_eq!(outcomes[0].2, figure.trace.len());
    // Name-keyed outcomes compare as whole values across ingestion paths.
    assert_eq!(outcomes[0], outcomes[1], "binary and text ingestion agree");
}

#[test]
fn online_race_sink_fires_at_the_flagging_event() {
    // The engine's per-event sink (behind `engine stream --races`) must
    // report each race exactly once, at the event that flags it, with the
    // detector attributed.
    let mut builder = rapid_trace::TraceBuilder::new();
    let t1 = builder.thread("t1");
    let t2 = builder.thread("t2");
    let x = builder.variable("x");
    builder.write(t1, x);
    builder.write(t2, x);
    let trace = builder.finish();

    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::new()));
    engine.register(Box::new(HbStream::new()));
    let mut sunk: Vec<(String, u32, usize)> = Vec::new();
    for (index, event) in trace.events().iter().enumerate() {
        engine.on_event_with(event, |detector, race| {
            sunk.push((detector.to_owned(), race.second.raw(), index));
        });
    }
    let runs = engine.finish(&trace);
    assert_eq!(sunk.len(), 2, "each detector flags the race once");
    for (detector, second, at_index) in &sunk {
        assert_eq!(*second as usize, *at_index, "{detector} reported at the flagging event");
    }
    assert!(sunk.iter().any(|(detector, ..)| detector == "wcp"));
    assert!(sunk.iter().any(|(detector, ..)| detector == "hb"));
    assert_eq!(runs.iter().map(|run| run.outcome.race_events()).sum::<usize>(), 2);
}

/// Drives `sections` rotating critical sections (plus one far race) through
/// a WCP stream, synthesizing each [`Event`] on the fly — no trace, builder
/// or buffer ever holds the stream.  Returns the peak live Rule (b) queue
/// occupancy, the peak retained section count, and the races found.
fn run_synthetic_stream(sections: usize) -> (usize, usize, usize) {
    use rapid_trace::{Event, EventId, EventKind, LockId, VarId};

    struct Probe {
        stream: WcpStream,
        next: u32,
        races: usize,
        peak_queue: usize,
        peak_sections: usize,
    }

    impl Probe {
        fn feed(&mut self, thread: u32, kind: EventKind) {
            // Locations cycle over a fixed small set so race pairs stay
            // meaningful without unbounded interning.
            let location = Location::new(self.next % 64);
            let event = Event::new(EventId::new(self.next), ThreadId::new(thread), kind, location);
            self.next += 1;
            self.races += self.stream.on_event(&event).len();
            self.peak_queue = self.peak_queue.max(self.stream.live_queue_entries());
            self.peak_sections = self.peak_sections.max(self.stream.retained_sections());
        }
    }

    let lock = LockId::new(0);
    let counter = VarId::new(0);
    let racy = VarId::new(1);
    let mut probe =
        Probe { stream: WcpStream::new(), next: 0, races: 0, peak_queue: 0, peak_sections: 0 };

    // An unprotected write whose racing read arrives only after the filler.
    // The reader (thread 1) stays out of the lock rotation — joining it
    // would WCP-order the pair through Rule (b) — so it is also *discovered*
    // only at the very end of the stream.
    probe.feed(0, EventKind::Write(racy));
    for index in 0..sections {
        let thread = [0u32, 2, 3][index % 3];
        probe.feed(thread, EventKind::Acquire(lock));
        probe.feed(thread, EventKind::Read(counter));
        probe.feed(thread, EventKind::Write(counter));
        probe.feed(thread, EventKind::Release(lock));
    }
    probe.feed(1, EventKind::Read(racy));

    let total_races = probe.stream.finish().report.len();
    assert_eq!(total_races, probe.races, "per-event race deltas add up to the final report");
    (probe.peak_queue, probe.peak_sections, total_races)
}

#[test]
fn streaming_wcp_state_is_independent_of_trace_length() {
    // ~500K events (125K critical sections × 4 events) vs a 50× shorter
    // stream: the peak live Rule (b) state must not grow with the stream.
    let (short_queue, short_sections, _) = run_synthetic_stream(2_500);
    let (long_queue, long_sections, long_races) = run_synthetic_stream(125_000);

    assert!(long_races >= 1, "the far race is found across 500K events");
    assert!(
        long_sections <= short_sections.max(8),
        "retained sections grew with the stream: {long_sections} vs {short_sections}"
    );
    assert!(
        long_queue <= short_queue.max(32),
        "queue occupancy grew with the stream: {long_queue} vs {short_queue}"
    );
}
