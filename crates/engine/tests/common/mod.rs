//! Shared test infrastructure: a generator of random *well-formed* traces
//! with a fork prologue (thread 0 announces every other thread before any
//! lock activity — the pattern of real logged traces), used by both the
//! batch/stream differential suite and the parallel-driver suite.

#![allow(dead_code)]

use proptest::prelude::*;
use rapid_trace::{Trace, TraceBuilder};

/// Abstract actions interpreted into well-formed traces.
#[derive(Debug, Clone, Copy)]
pub enum Action {
    Read(u8),
    Write(u8),
    Acquire(u8),
    Release,
}

pub fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..6).prop_map(Action::Read),
        (0u8..6).prop_map(Action::Write),
        (0u8..4).prop_map(Action::Acquire),
        Just(Action::Release),
    ]
}

/// Interprets a script into a well-formed trace whose threads are all
/// announced by fork events before any other activity.
pub fn interpret(script: &[(u8, Action)], threads: usize) -> Trace {
    let threads = threads.max(2);
    let mut builder = TraceBuilder::new();
    let thread_ids = builder.threads(threads);
    let lock_ids = builder.locks(3);
    let var_ids = builder.variables(6);

    // Fork prologue: t0 announces every other thread.
    for &child in &thread_ids[1..] {
        builder.fork(thread_ids[0], child);
    }

    let mut held: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut holder: Vec<Option<usize>> = vec![None; lock_ids.len()];

    for &(raw_thread, action) in script {
        let t = (raw_thread as usize) % threads;
        let thread = thread_ids[t];
        match action {
            Action::Read(var) => {
                builder.read(thread, var_ids[var as usize % var_ids.len()]);
            }
            Action::Write(var) => {
                builder.write(thread, var_ids[var as usize % var_ids.len()]);
            }
            Action::Acquire(lock) => {
                let lock = lock as usize % lock_ids.len();
                if holder[lock].is_none() && held[t].len() < 3 {
                    holder[lock] = Some(t);
                    held[t].push(lock);
                    builder.acquire(thread, lock_ids[lock]);
                }
            }
            Action::Release => {
                if let Some(lock) = held[t].pop() {
                    holder[lock] = None;
                    builder.release(thread, lock_ids[lock]);
                }
            }
        }
    }
    for t in 0..threads {
        while let Some(lock) = held[t].pop() {
            holder[lock] = None;
            builder.release(thread_ids[t], lock_ids[lock]);
        }
    }
    builder.finish()
}

/// A random well-formed trace with 2–4 threads and up to 200 events.
pub fn generated_trace() -> impl Strategy<Value = Trace> {
    (2usize..5, prop::collection::vec((0u8..5, action()), 0..200))
        .prop_map(|(threads, script)| interpret(&script, threads))
}

/// Runs `run` on its own thread and panics if it has not finished within
/// `limit` — the hang detector of the chaos suites: a cluster that
/// deadlocks under fault injection fails the test instead of wedging it.
pub fn with_deadline<T: Send + 'static>(
    label: &str,
    limit: std::time::Duration,
    run: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (sender, receiver) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        sender.send(run()).ok();
    });
    match receiver.recv_timeout(limit) {
        Ok(value) => {
            handle.join().expect("scenario thread");
            value
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => panic!("{label}: scenario thread died without a result"),
        },
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label} still running after {limit:?} — the cluster hung")
        }
    }
}
