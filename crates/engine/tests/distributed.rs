//! Integration tests for the distributed shard driver: a real coordinator
//! on a localhost ephemeral port, real TCP workers, and the two pinned
//! acceptance properties.
//!
//! * **Distributed ≡ local:** coordinator + N workers over a
//!   mixed-encoding shard set produce a merged `Outcome` equal
//!   (`PartialEq`, metrics included) to `run_shards` at `jobs = 1` and
//!   `jobs = N`, and byte-identical rendered race-pair output.
//! * **Fault tolerance:** a worker that leases a shard and disconnects
//!   mid-analysis has its shard requeued; the final merged outcome still
//!   equals the local run, and no shard is counted twice (the shards-sum
//!   invariant holds).

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use rapid_engine::dist::{self, proto, Coordinator, ServeConfig, ServeReport};
use rapid_engine::driver::{run_shards, DriverConfig};
use rapid_engine::{DetectorSpec, Engine};
use rapid_trace::format;
use rapid_trace::{Trace, TraceBuilder};

fn racy_trace(variable: &str, location_a: &str, location_b: &str) -> Trace {
    let mut builder = TraceBuilder::new();
    let t1 = builder.thread("t1");
    let t2 = builder.thread("t2");
    let var = builder.variable(variable);
    builder.at(location_a);
    builder.write(t1, var);
    builder.at(location_b);
    builder.write(t2, var);
    builder.finish()
}

/// Writes a mixed-encoding shard set (std text and binary `.rwf`
/// alternating) under unique temp names.
fn write_shards(tag: &str, traces: &[Trace]) -> Vec<PathBuf> {
    traces
        .iter()
        .enumerate()
        .map(|(index, trace)| {
            let extension = if index % 2 == 0 { "std" } else { "rwf" };
            let path = std::env::temp_dir()
                .join(format!("rapid-dist-{tag}-{}-{index}.{extension}", std::process::id()));
            format::write_trace_file(trace, &path).expect("shard writes");
            path
        })
        .collect()
}

fn cleanup(paths: &[PathBuf]) {
    for path in paths {
        std::fs::remove_file(path).ok();
    }
}

fn spec() -> DetectorSpec {
    DetectorSpec::default() // wcp + hb
}

/// Starts a coordinator for `paths`, runs `workers` real worker loops
/// against it plus `faults` (a hook that may talk to the coordinator
/// first), fetches the submit report, and returns (serve report, submit
/// report).
fn drive_cluster(
    paths: &[PathBuf],
    workers: usize,
    lease_timeout: Duration,
    faults: impl FnOnce(std::net::SocketAddr),
) -> (ServeReport, dist::SubmitReport) {
    let config = ServeConfig { spec: spec(), lease_timeout, ..ServeConfig::default() };
    let coordinator = Coordinator::bind(paths, &config).expect("coordinator binds");
    let addr = coordinator.local_addr();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    faults(addr);

    let addr_string = addr.to_string();
    let worker_handles: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr_string.clone();
            std::thread::spawn(move || dist::work(&addr, Some(1)).expect("worker completes"))
        })
        .collect();
    let submit = dist::submit(&addr_string).expect("submit returns the merged report");
    for handle in worker_handles {
        handle.join().expect("worker thread");
    }
    let serve_report = serve.join().expect("serve thread");
    (serve_report, submit)
}

#[test]
fn distributed_equals_local_on_mixed_encodings() {
    let traces = [
        racy_trace("x", "A:1", "A:2"),
        racy_trace("y", "B:1", "B:2"),
        racy_trace("x", "A:1", "A:2"), // same pair as shard 0: exercises stat merging
        racy_trace("z", "C:1", "C:9"),
    ];
    let paths = write_shards("equal", &traces);

    let local = |jobs: usize| {
        run_shards(
            &paths,
            || spec().build().expect("spec builds"),
            &DriverConfig { jobs, ..DriverConfig::default() },
        )
        .expect("local run completes")
    };
    let jobs1 = local(1);
    let jobs2 = local(2);
    let (serve, submit) = drive_cluster(&paths, 2, Duration::from_secs(60), |_| {});
    cleanup(&paths);

    // jobs=1 ≡ jobs=N ≡ distributed, as whole Outcome values.
    assert_eq!(serve.report.merged.len(), jobs1.merged.len());
    for (index, baseline) in jobs1.merged.iter().enumerate() {
        assert_eq!(
            baseline.outcome, jobs2.merged[index].outcome,
            "local jobs=2 diverged for {}",
            baseline.outcome.detector
        );
        assert_eq!(
            baseline.outcome, serve.report.merged[index].outcome,
            "coordinator fold diverged for {}",
            baseline.outcome.detector
        );
        assert_eq!(
            baseline.outcome, submit.merged[index].outcome,
            "submit report diverged for {}",
            baseline.outcome.detector
        );
    }

    // Byte-identical rendered race pairs across all four views.
    let rendered = Engine::render_race_pairs(&jobs1.merged);
    assert!(!rendered.is_empty());
    assert_eq!(rendered, Engine::render_race_pairs(&jobs2.merged));
    assert_eq!(rendered, Engine::render_race_pairs(&serve.report.merged));
    assert_eq!(rendered, Engine::render_race_pairs(&submit.merged));

    // Shape: per-shard rows stay in input order; accounting matches.
    assert_eq!(serve.report.shards.len(), paths.len());
    for (shard, path) in serve.report.shards.iter().zip(&paths) {
        assert_eq!(shard.path, *path);
        assert_eq!(shard.source, "remote");
    }
    let total: usize = traces.iter().map(Trace::len).sum();
    assert_eq!(serve.report.total_events(), total);
    assert_eq!(submit.events, total);
    assert_eq!(submit.shards, paths.len());
    assert!(submit.workers >= 1 && submit.workers <= 2);
}

/// The evil client of the fault-tolerance acceptance criterion: handshake,
/// lease a shard, read it… and vanish without returning an outcome.
fn lease_and_vanish(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("evil client connects");
    proto::write_message(&mut stream, &proto::Message::Hello { role: proto::Role::Worker })
        .expect("hello");
    match proto::expect_message(&mut stream, Duration::from_secs(10)).expect("welcome") {
        proto::Message::Welcome { .. } => {}
        other => panic!("expected WELCOME, got {other:?}"),
    }
    proto::write_message(&mut stream, &proto::Message::Lease).expect("lease");
    match proto::expect_message(&mut stream, Duration::from_secs(10)).expect("shard") {
        proto::Message::Shard { .. } => {}
        other => panic!("expected SHARD, got {other:?}"),
    }
    // Mid-analysis disconnect: drop the socket with the lease outstanding.
    drop(stream);
}

#[test]
fn dead_worker_shard_is_requeued_and_not_double_counted() {
    let traces = [
        racy_trace("x", "A:1", "A:2"),
        racy_trace("y", "B:1", "B:2"),
        racy_trace("z", "C:1", "C:2"),
    ];
    let paths = write_shards("fault", &traces);

    let jobs1 = run_shards(
        &paths,
        || spec().build().expect("spec builds"),
        &DriverConfig { jobs: 1, ..DriverConfig::default() },
    )
    .expect("local run completes");

    // Lease timeout far above test runtime: only the *disconnect* path can
    // requeue the evil worker's shard.
    let (serve, submit) = drive_cluster(&paths, 1, Duration::from_secs(600), lease_and_vanish);
    cleanup(&paths);

    for (baseline, (served, submitted)) in
        jobs1.merged.iter().zip(serve.report.merged.iter().zip(&submit.merged))
    {
        assert_eq!(
            baseline.outcome, served.outcome,
            "requeued shard lost or double-counted for {}",
            baseline.outcome.detector
        );
        assert_eq!(baseline.outcome, submitted.outcome);
        // The shards-sum invariant, explicitly: every shard folded exactly
        // once despite the dead worker.
        assert_eq!(served.outcome.shards, paths.len());
        assert_eq!(served.outcome.events, jobs1.total_events());
    }
    assert_eq!(serve.report.shards.len(), paths.len());
}

#[test]
fn expired_lease_requeues_to_a_live_worker() {
    // Same dead-worker scenario, but the disconnect is replaced by a
    // *stall*: the evil client keeps its connection open and never
    // answers.  Only the lease timeout can reclaim the shard.
    let traces = [racy_trace("x", "A:1", "A:2"), racy_trace("y", "B:1", "B:2")];
    let paths = write_shards("stall", &traces);

    let jobs1 = run_shards(
        &paths,
        || spec().build().expect("spec builds"),
        &DriverConfig { jobs: 1, ..DriverConfig::default() },
    )
    .expect("local run completes");

    let mut stalled: Option<TcpStream> = None;
    let (serve, _submit) = drive_cluster(&paths, 1, Duration::from_secs(1), |addr| {
        let mut stream = TcpStream::connect(addr).expect("stalling client connects");
        proto::write_message(&mut stream, &proto::Message::Hello { role: proto::Role::Worker })
            .expect("hello");
        let _ = proto::expect_message(&mut stream, Duration::from_secs(10)).expect("welcome");
        proto::write_message(&mut stream, &proto::Message::Lease).expect("lease");
        let _ = proto::expect_message(&mut stream, Duration::from_secs(10)).expect("shard");
        stalled = Some(stream); // keep the connection open, never reply
    });
    cleanup(&paths);
    drop(stalled); // the connection stayed open for the whole run

    for (baseline, served) in jobs1.merged.iter().zip(&serve.report.merged) {
        assert_eq!(
            baseline.outcome, served.outcome,
            "expired lease lost or duplicated work for {}",
            baseline.outcome.detector
        );
        assert_eq!(served.outcome.shards, paths.len());
    }
}

#[test]
fn failed_shards_surface_the_earliest_error_like_the_local_driver() {
    let good = racy_trace("x", "A:1", "A:2");
    let paths = write_shards("fail", std::slice::from_ref(&good));
    let bad = std::env::temp_dir().join(format!("rapid-dist-fail-bad-{}.std", std::process::id()));
    std::fs::write(&bad, "t1|nonsense|A:1\n").expect("bad shard writes");
    let all = vec![bad.clone(), paths[0].clone()];

    let config = ServeConfig { spec: spec(), ..ServeConfig::default() };
    let coordinator = Coordinator::bind(&all, &config).expect("binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run());

    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || dist::work(&worker_addr, Some(1)));
    let submit_error = dist::submit(&addr).expect_err("submit surfaces the shard error");
    assert!(
        submit_error.contains("nonsense")
            || submit_error.contains(bad.display().to_string().as_str()),
        "error should name the failing shard: {submit_error}"
    );
    worker.join().expect("worker thread").expect("worker completed its leases");
    let serve_error = serve.join().expect("serve thread").expect_err("serve fails too");
    assert!(serve_error.contains("cannot analyze"), "{serve_error}");

    cleanup(&all);
}

#[test]
fn worker_against_a_dead_address_errors_cleanly() {
    // Nothing listens here; the worker's connect retry gives up with a
    // rendered error instead of hanging or panicking.
    let error = dist::work("127.0.0.1:1", Some(1)).expect_err("no coordinator");
    assert!(error.contains("cannot connect"), "{error}");
}
