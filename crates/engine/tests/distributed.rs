//! Integration tests for the resident detection service: a real
//! coordinator on a localhost ephemeral port, real TCP workers, and the
//! pinned acceptance properties.
//!
//! * **Distributed ≡ local:** coordinator + N workers over a
//!   mixed-encoding shard set produce a merged `Outcome` equal
//!   (`PartialEq`, metrics included) to `run_shards` at `jobs = 1` and
//!   `jobs = N`, and byte-identical rendered race-pair output.
//! * **Multi-tenancy:** two concurrently submitted named jobs with
//!   *different* detector specs over *different* shard sets, answered by
//!   one worker fleet, each fold to exactly their local `jobs = 1` run —
//!   no cross-job contamination.
//! * **Fault tolerance:** a worker that leases a shard and disconnects
//!   (or stalls past its lease) has its shard requeued — with byte-for-byte
//!   identical shard bytes on the re-lease — and the final merged outcome
//!   still equals the local run with no shard counted twice.

mod common;

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use rapid_engine::dist::{
    self, proto, Coordinator, ServeConfig, ServeSummary, SubmitConfig, WorkConfig, DEFAULT_JOB,
};
use rapid_engine::driver::{run_shards, DriverConfig, MultiReport};
use rapid_engine::{DetectorSpec, Engine};
use rapid_trace::format;
use rapid_trace::{Trace, TraceBuilder};

use common::with_deadline;

fn racy_trace(variable: &str, location_a: &str, location_b: &str) -> Trace {
    let mut builder = TraceBuilder::new();
    let t1 = builder.thread("t1");
    let t2 = builder.thread("t2");
    let var = builder.variable(variable);
    builder.at(location_a);
    builder.write(t1, var);
    builder.at(location_b);
    builder.write(t2, var);
    builder.finish()
}

/// Writes a mixed-encoding shard set (std text and binary `.rwf`
/// alternating) under unique temp names.
fn write_shards(tag: &str, traces: &[Trace]) -> Vec<PathBuf> {
    traces
        .iter()
        .enumerate()
        .map(|(index, trace)| {
            let extension = if index % 2 == 0 { "std" } else { "rwf" };
            let path = std::env::temp_dir()
                .join(format!("rapid-dist-{tag}-{}-{index}.{extension}", std::process::id()));
            format::write_trace_file(trace, &path).expect("shard writes");
            path
        })
        .collect()
}

fn cleanup(paths: &[PathBuf]) {
    for path in paths {
        std::fs::remove_file(path).ok();
    }
}

fn spec() -> DetectorSpec {
    DetectorSpec::default() // wcp + hb
}

/// Runs the shard set locally with the given spec — the ground truth every
/// distributed view is compared against.
fn local_run(paths: &[PathBuf], spec: &DetectorSpec, jobs: usize) -> MultiReport {
    let spec = spec.clone();
    run_shards(
        paths,
        move || spec.build().expect("spec builds"),
        &DriverConfig { jobs, ..DriverConfig::default() },
    )
    .expect("local run completes")
}

fn spawn_workers(addr: &str, workers: usize) -> Vec<std::thread::JoinHandle<dist::WorkSummary>> {
    (0..workers)
        .map(|_| {
            let addr = addr.to_owned();
            let config = WorkConfig { jobs: Some(1), ..WorkConfig::default() };
            std::thread::spawn(move || dist::work(&addr, &config).expect("worker completes"))
        })
        .collect()
}

/// Unwraps the one answered job from a one-shot serve summary.
fn only_job(summary: ServeSummary) -> Result<MultiReport, String> {
    assert_eq!(summary.jobs.len(), 1, "one-shot serve answers exactly one job");
    let job = summary.jobs.into_iter().next().expect("one job");
    assert_eq!(job.name, DEFAULT_JOB);
    job.result
}

/// Starts a one-shot coordinator over the pre-registered default job, runs
/// `workers` real worker loops against it plus `faults` (a hook that may
/// talk to the coordinator first), fetches the submit report, and returns
/// (serve-side fold, submit-side report).
fn drive_cluster(
    paths: &[PathBuf],
    workers: usize,
    lease_timeout: Duration,
    faults: impl FnOnce(std::net::SocketAddr),
) -> (MultiReport, dist::SubmitReport) {
    let config = ServeConfig { spec: spec(), lease_timeout, once: true, ..ServeConfig::default() };
    let coordinator = Coordinator::bind(paths, &config).expect("coordinator binds");
    let addr = coordinator.local_addr();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    faults(addr);

    let addr_string = addr.to_string();
    let worker_handles = spawn_workers(&addr_string, workers);
    let submit = dist::submit(&addr_string, &SubmitConfig::default())
        .expect("submit returns the merged report");
    for handle in worker_handles {
        handle.join().expect("worker thread");
    }
    let summary = serve.join().expect("serve thread");
    let report = only_job(summary).expect("default job folds");
    (report, submit)
}

#[test]
fn distributed_equals_local_on_mixed_encodings() {
    let traces = [
        racy_trace("x", "A:1", "A:2"),
        racy_trace("y", "B:1", "B:2"),
        racy_trace("x", "A:1", "A:2"), // same pair as shard 0: exercises stat merging
        racy_trace("z", "C:1", "C:9"),
    ];
    let paths = write_shards("equal", &traces);

    let jobs1 = local_run(&paths, &spec(), 1);
    let jobs2 = local_run(&paths, &spec(), 2);
    let (serve, submit) = drive_cluster(&paths, 2, Duration::from_secs(60), |_| {});
    cleanup(&paths);

    // jobs=1 ≡ jobs=N ≡ distributed, as whole Outcome values.
    assert_eq!(serve.merged.len(), jobs1.merged.len());
    for (index, baseline) in jobs1.merged.iter().enumerate() {
        assert_eq!(
            baseline.outcome, jobs2.merged[index].outcome,
            "local jobs=2 diverged for {}",
            baseline.outcome.detector
        );
        assert_eq!(
            baseline.outcome, serve.merged[index].outcome,
            "coordinator fold diverged for {}",
            baseline.outcome.detector
        );
        assert_eq!(
            baseline.outcome, submit.merged[index].outcome,
            "submit report diverged for {}",
            baseline.outcome.detector
        );
    }

    // Byte-identical rendered race pairs across all four views.
    let rendered = Engine::render_race_pairs(&jobs1.merged);
    assert!(!rendered.is_empty());
    assert_eq!(rendered, Engine::render_race_pairs(&jobs2.merged));
    assert_eq!(rendered, Engine::render_race_pairs(&serve.merged));
    assert_eq!(rendered, Engine::render_race_pairs(&submit.merged));

    // Shape: per-shard rows stay in input order; accounting matches.
    assert_eq!(serve.shards.len(), paths.len());
    for (shard, path) in serve.shards.iter().zip(&paths) {
        assert_eq!(shard.path, *path);
        assert_eq!(shard.source, "remote");
    }
    let total: usize = traces.iter().map(Trace::len).sum();
    assert_eq!(serve.total_events(), total);
    assert_eq!(submit.events, total);
    assert_eq!(submit.shards, paths.len());
    assert!(submit.workers >= 1 && submit.workers <= 2);
}

#[test]
fn concurrent_jobs_with_different_specs_stay_isolated() {
    // Two named jobs with different detector sets over different shard
    // sets, submitted concurrently to ONE resident fleet: each job's
    // merged outcome must equal its own local jobs=1 run exactly.
    let wide_traces = [
        racy_trace("x", "A:1", "A:2"),
        racy_trace("y", "B:1", "B:2"),
        racy_trace("x", "A:1", "A:3"),
    ];
    let narrow_traces = [racy_trace("p", "P:1", "P:2"), racy_trace("q", "Q:1", "Q:2")];
    let wide_paths = write_shards("job-wide", &wide_traces);
    let narrow_paths = write_shards("job-narrow", &narrow_traces);
    let wide_spec = spec(); // wcp + hb
    let narrow_spec = DetectorSpec { detectors: vec!["hb".to_owned()], ..DetectorSpec::default() };

    let coordinator =
        Coordinator::bind(&[], &ServeConfig::default()).expect("resident coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));
    let workers = spawn_workers(&addr, 2);

    let submit_job = |name: &str, paths: &[PathBuf], spec: &DetectorSpec| {
        let addr = addr.clone();
        let config = SubmitConfig {
            job: Some(name.to_owned()),
            paths: paths.to_vec(),
            spec: spec.clone(),
            ..SubmitConfig::default()
        };
        std::thread::spawn(move || dist::submit(&addr, &config).expect("job submits"))
    };
    let wide_handle = submit_job("wide", &wide_paths, &wide_spec);
    let narrow_handle = submit_job("narrow", &narrow_paths, &narrow_spec);
    let wide = wide_handle.join().expect("wide submit thread");
    let narrow = narrow_handle.join().expect("narrow submit thread");

    dist::shutdown(&addr).expect("coordinator drains");
    for worker in workers {
        worker.join().expect("worker thread");
    }
    let summary = serve.join().expect("serve thread");

    let wide_local = local_run(&wide_paths, &wide_spec, 1);
    let narrow_local = local_run(&narrow_paths, &narrow_spec, 1);
    cleanup(&wide_paths);
    cleanup(&narrow_paths);

    // Per-job isolation: detector sets did not leak between jobs…
    assert_eq!(wide.merged.len(), 2, "wide job ran wcp + hb");
    assert_eq!(narrow.merged.len(), 1, "narrow job ran hb only");
    assert_eq!(narrow.merged[0].outcome.detector, "hb");
    // …and every merged value equals that job's own local run.
    for (baseline, remote) in wide_local.merged.iter().zip(&wide.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "wide job diverged from its local run");
    }
    for (baseline, remote) in narrow_local.merged.iter().zip(&narrow.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "narrow job diverged from its local run");
    }
    assert_eq!(wide.events, wide_traces.iter().map(Trace::len).sum::<usize>());
    assert_eq!(narrow.events, narrow_traces.iter().map(Trace::len).sum::<usize>());

    // The serve summary lists both jobs, each folded successfully.
    let mut names: Vec<&str> = summary.jobs.iter().map(|job| job.name.as_str()).collect();
    names.sort_unstable();
    assert_eq!(names, ["narrow", "wide"]);
    for job in &summary.jobs {
        assert!(job.result.is_ok(), "job {} failed: {:?}", job.name, job.result);
    }
}

#[test]
fn multi_chunk_shards_stream_end_to_end() {
    // Tiny chunk budgets on both sides force every shard through
    // multi-chunk reassembly: submit → coordinator at 43 bytes per chunk,
    // coordinator → worker at 57.  The outcome must not notice.
    let busy_trace = |variable: &str, prefix: &str| {
        let mut builder = TraceBuilder::new();
        let t1 = builder.thread("t1");
        let t2 = builder.thread("t2");
        let var = builder.variable(variable);
        for round in 0..40 {
            builder.at(&format!("{prefix}:{round}"));
            builder.write(if round % 2 == 0 { t1 } else { t2 }, var);
        }
        builder.finish()
    };
    let traces = [busy_trace("x", "A"), busy_trace("y", "B")];
    let paths = write_shards("chunky", &traces);
    for path in &paths {
        let len = std::fs::metadata(path).expect("shard stats").len();
        assert!(len > 57, "shard {} too small ({len} bytes) to exercise chunking", path.display());
    }

    let config = ServeConfig { chunk_len: 57, ..ServeConfig::default() };
    let coordinator = Coordinator::bind(&[], &config).expect("resident coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));
    let workers = spawn_workers(&addr, 1);

    let submit = SubmitConfig {
        job: Some("chunky".to_owned()),
        paths: paths.clone(),
        spec: spec(),
        chunk_len: 43,
        ..SubmitConfig::default()
    };
    let report = dist::submit(&addr, &submit).expect("chunked job submits");
    dist::shutdown(&addr).expect("coordinator drains");
    for worker in workers {
        worker.join().expect("worker thread");
    }
    serve.join().expect("serve thread");

    let local = local_run(&paths, &spec(), 1);
    cleanup(&paths);
    for (baseline, remote) in local.merged.iter().zip(&report.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "chunked transfer corrupted the analysis");
    }
    assert_eq!(report.events, traces.iter().map(Trace::len).sum::<usize>());
}

#[test]
fn submit_timeout_errors_instead_of_blocking() {
    let traces = [racy_trace("x", "A:1", "A:2")];
    let paths = write_shards("timeout", &traces);

    // No workers attached: the default job cannot complete, so a bounded
    // fetch must give up with an error instead of blocking forever.
    let coordinator =
        Coordinator::bind(&paths, &ServeConfig::default()).expect("coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    let bounded =
        SubmitConfig { timeout: Some(Duration::from_millis(400)), ..SubmitConfig::default() };
    let error = dist::submit(&addr, &bounded).expect_err("bounded fetch times out");
    assert!(error.contains("no reply from peer"), "{error}");

    // The service survived the timed-out client: attach a worker, fetch
    // again unbounded, and the job completes normally.
    let workers = spawn_workers(&addr, 1);
    let report = dist::submit(&addr, &SubmitConfig::default()).expect("second fetch succeeds");
    dist::shutdown(&addr).expect("coordinator drains");
    for worker in workers {
        worker.join().expect("worker thread");
    }
    serve.join().expect("serve thread");

    let local = local_run(&paths, &spec(), 1);
    cleanup(&paths);
    for (baseline, remote) in local.merged.iter().zip(&report.merged) {
        assert_eq!(baseline.outcome, remote.outcome);
    }
}

/// Handshakes as a worker and leases one shard, returning the grant's
/// addressing and the reassembled shard bytes (pulled cache-less, the way
/// a cold worker would).
fn lease_one(stream: &mut TcpStream) -> (u32, u32, Vec<u8>) {
    proto::write_message(stream, &proto::Message::Hello { role: proto::Role::Worker })
        .expect("hello");
    match proto::expect_message(stream, Duration::from_secs(10)).expect("welcome") {
        proto::Message::Welcome { .. } => {}
        other => panic!("expected WELCOME, got {other:?}"),
    }
    proto::write_message(stream, &proto::Message::Lease).expect("lease");
    match proto::expect_message(stream, Duration::from_secs(10)).expect("grant") {
        proto::Message::Grant { job, shard, chunks, content, .. } => {
            proto::write_message(stream, &proto::Message::Pull { job, shard }).expect("pull");
            let bytes = proto::read_chunks(stream, job, shard, chunks, Duration::from_secs(10))
                .expect("shard chunks");
            assert_eq!(
                proto::ContentId::of(&bytes),
                content,
                "the grant's content id does not match the shipped bytes"
            );
            (job, shard, bytes)
        }
        other => panic!("expected GRANT, got {other:?}"),
    }
}

/// The evil client of the fault-tolerance acceptance criterion: handshake,
/// lease a shard, read it… and vanish without returning an outcome.
fn lease_and_vanish(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("evil client connects");
    let _ = lease_one(&mut stream);
    // Mid-analysis disconnect: drop the socket with the lease outstanding.
    drop(stream);
}

#[test]
fn dead_worker_shard_is_requeued_and_not_double_counted() {
    let traces = [
        racy_trace("x", "A:1", "A:2"),
        racy_trace("y", "B:1", "B:2"),
        racy_trace("z", "C:1", "C:2"),
    ];
    let paths = write_shards("fault", &traces);

    let jobs1 = local_run(&paths, &spec(), 1);

    // Lease timeout far above test runtime: only the *disconnect* path can
    // requeue the evil worker's shard.
    let (serve, submit) = drive_cluster(&paths, 1, Duration::from_secs(600), lease_and_vanish);
    cleanup(&paths);

    for (baseline, (served, submitted)) in
        jobs1.merged.iter().zip(serve.merged.iter().zip(&submit.merged))
    {
        assert_eq!(
            baseline.outcome, served.outcome,
            "requeued shard lost or double-counted for {}",
            baseline.outcome.detector
        );
        assert_eq!(baseline.outcome, submitted.outcome);
        // The shards-sum invariant, explicitly: every shard folded exactly
        // once despite the dead worker.
        assert_eq!(served.outcome.shards, paths.len());
        assert_eq!(served.outcome.events, jobs1.total_events());
    }
    assert_eq!(serve.shards.len(), paths.len());
}

#[test]
fn expired_lease_requeues_to_a_live_worker() {
    // Same dead-worker scenario, but the disconnect is replaced by a
    // *stall*: the evil client keeps its connection open and never
    // answers.  Only the lease timeout can reclaim the shard.
    let traces = [racy_trace("x", "A:1", "A:2"), racy_trace("y", "B:1", "B:2")];
    let paths = write_shards("stall", &traces);

    let jobs1 = local_run(&paths, &spec(), 1);

    let mut stalled: Option<TcpStream> = None;
    let (serve, _submit) = drive_cluster(&paths, 1, Duration::from_secs(1), |addr| {
        let mut stream = TcpStream::connect(addr).expect("stalling client connects");
        let _ = lease_one(&mut stream);
        stalled = Some(stream); // keep the connection open, never reply
    });
    cleanup(&paths);
    drop(stalled); // the connection stayed open for the whole run

    for (baseline, served) in jobs1.merged.iter().zip(&serve.merged) {
        assert_eq!(
            baseline.outcome, served.outcome,
            "expired lease lost or duplicated work for {}",
            baseline.outcome.detector
        );
        assert_eq!(served.outcome.shards, paths.len());
    }
}

#[test]
fn requeued_shard_is_leased_with_identical_bytes() {
    // The regression pinned here: a shard whose lease expired must be
    // re-granted with byte-for-byte the same content the first worker saw
    // (and the same content as the file), with no re-read surprises.
    let traces = [racy_trace("x", "A:1", "A:2")];
    let paths = write_shards("rebytes", &traces);
    let on_disk = std::fs::read(&paths[0]).expect("shard reads");

    let config = ServeConfig {
        spec: spec(),
        lease_timeout: Duration::from_millis(400),
        once: true,
        ..ServeConfig::default()
    };
    let coordinator = Coordinator::bind(&paths, &config).expect("coordinator binds");
    let addr = coordinator.local_addr();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    // First lease: stall past the timeout without answering.
    let mut first = TcpStream::connect(addr).expect("first client connects");
    let (job_a, shard_a, bytes_a) = lease_one(&mut first);
    std::thread::sleep(Duration::from_millis(700));

    // Second lease after expiry: same shard, identical bytes.
    let mut second = TcpStream::connect(addr).expect("second client connects");
    let (job_b, shard_b, bytes_b) = lease_one(&mut second);
    assert_eq!((job_a, shard_a), (job_b, shard_b), "the requeued shard is re-leased");
    assert_eq!(bytes_a, bytes_b, "re-lease shipped different bytes");
    assert_eq!(bytes_b, on_disk, "leased bytes diverged from the shard file");
    drop(first);

    // Fail the shard so the one-shot service can answer and drain.
    proto::write_message(
        &mut second,
        &proto::Message::Failed {
            job: job_b,
            shard: shard_b,
            message: "synthetic failure".to_owned(),
        },
    )
    .expect("failed reply");
    let error = dist::submit(&addr.to_string(), &SubmitConfig::default()).expect_err("job failed");
    assert!(error.contains("synthetic failure"), "{error}");
    drop(second);

    let summary = serve.join().expect("serve thread");
    cleanup(&paths);
    let folded = only_job(summary).expect_err("serve-side fold carries the failure");
    assert!(folded.contains("synthetic failure"), "{folded}");
}

#[test]
fn failed_shards_surface_the_earliest_error_like_the_local_driver() {
    let good = racy_trace("x", "A:1", "A:2");
    let paths = write_shards("fail", std::slice::from_ref(&good));
    let bad = std::env::temp_dir().join(format!("rapid-dist-fail-bad-{}.std", std::process::id()));
    std::fs::write(&bad, "t1|nonsense|A:1\n").expect("bad shard writes");
    let all = vec![bad.clone(), paths[0].clone()];

    let config = ServeConfig { spec: spec(), once: true, ..ServeConfig::default() };
    let coordinator = Coordinator::bind(&all, &config).expect("binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run());

    let workers = spawn_workers(&addr, 1);
    let submit_error =
        dist::submit(&addr, &SubmitConfig::default()).expect_err("submit surfaces the shard error");
    assert!(
        submit_error.contains("nonsense")
            || submit_error.contains(bad.display().to_string().as_str()),
        "error should name the failing shard: {submit_error}"
    );
    for worker in workers {
        worker.join().expect("worker thread");
    }
    // The *serve* side still exits cleanly — the job's failure is a value
    // in its summary, not a service crash.
    let summary = serve.join().expect("serve thread").expect("serve completes");
    let folded = only_job(summary).expect_err("default job failed");
    assert!(folded.contains("cannot analyze"), "{folded}");

    cleanup(&all);
}

#[test]
fn speculative_re_lease_folds_once_and_acks_the_loser_stale() {
    // The duplicate-OUTCOME bugfix pinned end-to-end: a straggler holds a
    // lease hostage, speculation re-leases its shard to an idle worker, the
    // thief's result folds — and when the straggler finally reports in, it
    // must get a non-fatal STALE ack (not an ERROR), and its stale FAILED
    // must not abort the already-completed job.
    let traces = [racy_trace("x", "A:1", "A:2"), racy_trace("y", "B:1", "B:2")];
    let paths = write_shards("steal", &traces);
    let jobs1 = local_run(&paths, &spec(), 1);

    let config = ServeConfig {
        // Leases effectively never expire: only speculation can reclaim.
        lease_timeout: Duration::from_secs(600),
        speculate_after: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    };
    let coordinator = Coordinator::bind(&[], &config).expect("coordinator binds");
    let addr = coordinator.local_addr();
    let addr_string = addr.to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    let submit_addr = addr_string.clone();
    let submit_paths = paths.clone();
    let submit = std::thread::spawn(move || {
        let config = SubmitConfig {
            job: Some("steal".to_owned()),
            paths: submit_paths,
            spec: spec(),
            ..SubmitConfig::default()
        };
        dist::submit(&submit_addr, &config).expect("job submits")
    });

    // The straggler leases a shard (before any honest worker exists, so the
    // claim is deterministic), pulls its bytes, and goes quiet.
    let mut straggler = TcpStream::connect(addr).expect("straggler connects");
    let (job, shard, _bytes) = lease_one(&mut straggler);

    // One honest worker: drains the other shard, idles, then steals the
    // straggler's shard once its lease is speculation-ripe.
    let workers = spawn_workers(&addr_string, 1);
    let report = submit.join().expect("submit thread");

    // The job completed without the straggler, folding every shard exactly
    // once, and the steal is visible in the scheduling stats.
    for (baseline, remote) in jobs1.merged.iter().zip(&report.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "speculation corrupted the fold");
        assert_eq!(remote.outcome.shards, paths.len(), "a shard folded twice");
    }
    let stolen = report.scheduling.get("leases_stolen").unwrap_or(0.0);
    assert!(stolen >= 1.0, "the steal never happened (leases_stolen = {stolen})");

    // The loser reports in late — with a FAILED, the nastier case: a fatal
    // ack (or worse, aborting the job) would turn a finished job into a
    // failure.  The coordinator must answer STALE and move on.
    proto::write_message(
        &mut straggler,
        &proto::Message::Failed { job, shard, message: "late straggler".to_owned() },
    )
    .expect("the straggler's connection survived the steal");
    match proto::expect_message(&mut straggler, Duration::from_secs(10)).expect("stale ack") {
        proto::Message::Stale { job: acked_job, shard: acked_shard } => {
            assert_eq!((acked_job, acked_shard), (job, shard));
        }
        other => panic!("expected STALE, got {other:?}"),
    }
    drop(straggler);

    // The completed job is still intact: re-fetching its report succeeds
    // and the fold is unchanged.
    let refetch_config = SubmitConfig { job: Some("steal".to_owned()), ..SubmitConfig::default() };
    let refetch = dist::submit(&addr_string, &refetch_config)
        .expect("a stale FAILED must not abort a completed job");
    for (baseline, remote) in jobs1.merged.iter().zip(&refetch.merged) {
        assert_eq!(baseline.outcome, remote.outcome);
    }

    dist::shutdown(&addr_string).expect("coordinator drains");
    for worker in workers {
        worker.join().expect("worker thread");
    }
    serve.join().expect("serve thread");
    cleanup(&paths);
}

#[test]
fn worker_cache_is_keyed_by_content_not_job_identity() {
    // The cache-keying bugfix pinned end-to-end: a job name is reused for
    // *different* bytes, and the worker's cache must miss (a
    // (job, shard)-keyed cache would happily serve the stale bytes).  Then
    // the name is reused a third time with the *original* bytes: everything
    // hits and nothing re-crosses the wire.
    let first = [racy_trace("x", "A:1", "A:2"), racy_trace("y", "B:1", "B:2")];
    let second = [racy_trace("p", "P:1", "P:2"), racy_trace("q", "Q:1", "Q:2")];
    let first_paths = write_shards("reuse-a", &first);
    let second_paths = write_shards("reuse-b", &second);

    let coordinator =
        Coordinator::bind(&[], &ServeConfig::default()).expect("resident coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        let config = WorkConfig { jobs: Some(1), cache_bytes: 1 << 20, ..WorkConfig::default() };
        dist::work(&worker_addr, &config).expect("worker completes")
    });

    let submit = |paths: &[PathBuf]| {
        let config = SubmitConfig {
            job: Some("reuse".to_owned()),
            paths: paths.to_vec(),
            spec: spec(),
            ..SubmitConfig::default()
        };
        dist::submit(&addr, &config).expect("job submits")
    };
    let metric =
        |report: &dist::SubmitReport, name: &str| report.scheduling.get(name).unwrap_or(0.0) as u64;

    // Cold: every shard byte crosses the wire, nothing hits.
    let cold = submit(&first_paths);
    let first_bytes: u64 =
        first_paths.iter().map(|path| std::fs::metadata(path).expect("shard stats").len()).sum();
    assert_eq!(metric(&cold, "bytes_transferred"), first_bytes);
    assert_eq!(metric(&cold, "cache_hits"), 0);
    assert_eq!(metric(&cold, "leases_stolen"), 0, "no speculation configured");

    // Reused name, changed bytes: the cache must miss on every shard.
    let changed = submit(&second_paths);
    assert_eq!(
        metric(&changed, "cache_hits"),
        0,
        "content changed under a reused job name but the worker cache hit"
    );
    assert!(metric(&changed, "bytes_transferred") > 0);
    let second_local = local_run(&second_paths, &spec(), 1);
    for (baseline, remote) in second_local.merged.iter().zip(&changed.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "a stale cached shard was analyzed");
    }

    // Reused name, original bytes: warm — all HAVE, zero transfer.
    let warm = submit(&first_paths);
    assert_eq!(metric(&warm, "bytes_transferred"), 0, "warm submit re-transferred cached shards");
    assert_eq!(metric(&warm, "cache_hits"), first_paths.len() as u64);
    let first_local = local_run(&first_paths, &spec(), 1);
    for (baseline, remote) in first_local.merged.iter().zip(&warm.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "a cache-served shard diverged");
    }

    dist::shutdown(&addr).expect("coordinator drains");
    worker.join().expect("worker thread");
    serve.join().expect("serve thread");
    cleanup(&first_paths);
    cleanup(&second_paths);
}

#[test]
fn prefetch_pipeline_matches_the_blocking_worker() {
    // The prefetch pipeline (transfer of lease N+1 overlapped with the
    // analysis of lease N) must be invisible in every result: same merged
    // outcomes, same rendered race pairs, same shard accounting.
    let traces = [
        racy_trace("x", "A:1", "A:2"),
        racy_trace("y", "B:1", "B:2"),
        racy_trace("z", "C:1", "C:2"),
        racy_trace("x", "A:1", "A:2"),
    ];
    let paths = write_shards("prefetch", &traces);
    let jobs1 = local_run(&paths, &spec(), 1);

    let config = ServeConfig { spec: spec(), once: true, ..ServeConfig::default() };
    let coordinator = Coordinator::bind(&paths, &config).expect("coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));
    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        let config = WorkConfig {
            jobs: Some(2),
            prefetch: true,
            cache_bytes: 1 << 20,
            ..WorkConfig::default()
        };
        dist::work(&worker_addr, &config).expect("worker completes")
    });

    let report = dist::submit(&addr, &SubmitConfig::default()).expect("submit succeeds");
    worker.join().expect("worker thread");
    serve.join().expect("serve thread");

    let rendered = Engine::render_race_pairs(&jobs1.merged);
    assert_eq!(rendered, Engine::render_race_pairs(&report.merged));
    for (baseline, remote) in jobs1.merged.iter().zip(&report.merged) {
        assert_eq!(baseline.outcome, remote.outcome, "the prefetch pipeline changed a verdict");
        assert_eq!(remote.outcome.shards, paths.len());
    }
    assert_eq!(report.scheduling.get("leases_stolen"), Some(0.0));
    cleanup(&paths);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    // The lease-bookkeeping invariant under randomized evil-client
    // schedules (a chaos-harness satellite): whatever mix of
    // lease-and-vanish and lease-and-squat clients hits the coordinator,
    // every shard folds exactly once — the merged outcome equals the local
    // run, the shards-sum holds, and no shard is double-counted.
    #[test]
    fn lease_bookkeeping_survives_random_evil_schedules(
        evils in prop::collection::vec(0u8..2, 1..4),
    ) {
        let traces = [
            racy_trace("x", "A:1", "A:2"),
            racy_trace("y", "B:1", "B:2"),
            racy_trace("z", "C:1", "C:2"),
        ];
        let paths = write_shards("evil", &traces);
        let jobs1 = local_run(&paths, &spec(), 1);

        let cluster_paths = paths.clone();
        let (serve, submit) =
            with_deadline("evil-client schedule", Duration::from_secs(120), move || {
                // Squatters keep their connections open (and their leases
                // hostage) for the whole run; only the 700ms lease timeout
                // can reclaim their shards.  Vanishers requeue through the
                // disconnect path instead.
                let mut squatters: Vec<TcpStream> = Vec::new();
                let result =
                    drive_cluster(&cluster_paths, 1, Duration::from_millis(700), |addr| {
                        for &evil in &evils {
                            if evil == 0 {
                                lease_and_vanish(addr);
                            } else {
                                let mut stream =
                                    TcpStream::connect(addr).expect("squatter connects");
                                let _ = lease_one(&mut stream);
                                squatters.push(stream);
                            }
                        }
                    });
                drop(squatters);
                result
            });
        cleanup(&paths);

        for (baseline, (served, submitted)) in
            jobs1.merged.iter().zip(serve.merged.iter().zip(&submit.merged))
        {
            assert_eq!(
                baseline.outcome, served.outcome,
                "an evil schedule lost or double-counted a shard for {}",
                baseline.outcome.detector
            );
            assert_eq!(baseline.outcome, submitted.outcome);
            assert_eq!(served.outcome.shards, paths.len());
            assert_eq!(served.outcome.events, jobs1.total_events());
        }
    }
}

#[test]
fn submit_timeout_bounds_the_job_open_handshake() {
    let traces = [racy_trace("x", "A:1", "A:2")];
    let paths = write_shards("handshake-timeout", &traces);
    let bounded = SubmitConfig {
        job: Some("stuck".to_owned()),
        paths: paths.clone(),
        spec: spec(),
        timeout: Some(Duration::from_millis(400)),
        ..SubmitConfig::default()
    };

    // A coordinator stand-in that accepts TCP but never answers the HELLO:
    // the WELCOME wait must respect --timeout, not the 30-second default.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").expect("mute listener binds");
    let mute_addr = mute.local_addr().expect("mute addr").to_string();
    let started = std::time::Instant::now();
    let error = dist::submit(&mute_addr, &bounded).expect_err("the WELCOME wait is bounded");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the handshake wait ignored --timeout ({:?})",
        started.elapsed()
    );
    assert!(error.contains("no reply from peer"), "{error}");
    drop(mute);

    // A stand-in that answers the handshake, then goes silent: the
    // JOB_ACCEPT wait must be bounded by --timeout too.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("listener binds");
    let addr = listener.local_addr().expect("addr").to_string();
    let hold = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accepts the submit client");
        match proto::read_message(&mut stream) {
            Ok(proto::Incoming::Message(proto::Message::Hello { .. })) => {}
            other => panic!("expected HELLO, got {other:?}"),
        }
        proto::write_message(&mut stream, &proto::Message::Welcome { jobs_hint: 0 })
            .expect("welcome");
        stream // hold the connection open; never answer the JOB_OPEN
    });
    let started = std::time::Instant::now();
    let error = dist::submit(&addr, &bounded).expect_err("the JOB_ACCEPT wait is bounded");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the JOB_ACCEPT wait ignored --timeout ({:?})",
        started.elapsed()
    );
    assert!(error.contains("no reply from peer"), "{error}");
    drop(hold.join().expect("holder thread"));
    cleanup(&paths);
}

#[test]
fn worker_against_a_dead_address_errors_cleanly() {
    // Nothing listens here; the worker's connect retry gives up with a
    // rendered error instead of hanging or panicking.
    let error = dist::work("127.0.0.1:1", &WorkConfig::default()).expect_err("no coordinator");
    assert!(error.contains("cannot connect"), "{error}");
}

#[test]
fn worker_retries_through_a_late_coordinator() {
    // Reserve an address, start with nothing listening, and bring the
    // coordinator up only after the worker's first attempts failed: the
    // retry budget must carry the worker through to a clean completion.
    let traces = [racy_trace("x", "A:1", "A:2")];
    let paths = write_shards("retry", &traces);

    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve a port");
    let addr = placeholder.local_addr().expect("reserved addr").to_string();
    drop(placeholder);

    let worker_addr = addr.clone();
    let worker = std::thread::spawn(move || {
        let config = WorkConfig {
            jobs: Some(1),
            retries: 10,
            retry_max_wait: Duration::from_millis(250),
            ..WorkConfig::default()
        };
        dist::work(&worker_addr, &config)
    });

    // Let the worker burn at least one failed connect before binding.
    std::thread::sleep(Duration::from_millis(300));
    let config =
        ServeConfig { spec: spec(), bind: addr.clone(), once: true, ..ServeConfig::default() };
    let coordinator = Coordinator::bind(&paths, &config).expect("late coordinator binds");
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    let report = dist::submit(&addr, &SubmitConfig::default()).expect("submit succeeds");
    let summary = worker.join().expect("worker thread").expect("worker retried to completion");
    assert_eq!(summary.stats.shards, 1);
    serve.join().expect("serve thread");

    let local = local_run(&paths, &spec(), 1);
    cleanup(&paths);
    for (baseline, remote) in local.merged.iter().zip(&report.merged) {
        assert_eq!(baseline.outcome, remote.outcome);
    }
}
