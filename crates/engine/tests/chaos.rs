//! The chaos harness for the distributed layer: deterministic fault
//! injection into the RWP transport, driven by replayable seeds, with the
//! verdict-preservation property pinned end to end.
//!
//! The headline property: for a random (workload × fault schedule) pair,
//! a cluster whose transport suffers delays, bit flips, cut connections
//! and stalls either produces a merged `Outcome` **equal** (`PartialEq`,
//! metrics included) to the local `jobs = 1` run of the same shards, or a
//! clean typed error — it never hangs and never reports a silently wrong
//! verdict.  Every failing schedule reproduces exactly from the seed the
//! proptest failure prints.
//!
//! Fault semantics are documented in `docs/CHAOS.md`; the wire-level
//! guarantees (CRC-32 framing, bounded stalls, lease requeue) in
//! `docs/PROTOCOL.md`.

mod common;

use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use rapid_engine::dist::{
    self, ChaosConfig, Coordinator, FaultAction, FaultPlan, RemoteQueue, ServeConfig, SubmitConfig,
    WorkConfig,
};
use rapid_engine::driver::{run_shards, DriverConfig, MultiReport, ShardInput, WorkSource};
use rapid_engine::{DetectorSpec, Engine};
use rapid_trace::format;
use rapid_trace::{Trace, TraceBuilder};

use common::{interpret, with_deadline};

/// A deterministic two-thread workload big enough (hundreds of events,
/// per-shard string tables) that its `.rwf` encoding spans well past any
/// handshake bytes — chaos anchors up to ~1800 land inside its chunk
/// streams.
fn busy_trace(variable: &str, prefix: &str, rounds: usize) -> Trace {
    let mut builder = TraceBuilder::new();
    let t1 = builder.thread("t1");
    let t2 = builder.thread("t2");
    let var = builder.variable(variable);
    for round in 0..rounds {
        builder.at(&format!("{prefix}:{round}"));
        builder.write(if round % 2 == 0 { t1 } else { t2 }, var);
    }
    builder.finish()
}

fn write_shards(tag: &str, traces: &[Trace]) -> Vec<PathBuf> {
    traces
        .iter()
        .enumerate()
        .map(|(index, trace)| {
            let extension = if index % 2 == 0 { "std" } else { "rwf" };
            let path = std::env::temp_dir()
                .join(format!("rapid-chaos-{tag}-{}-{index}.{extension}", std::process::id()));
            format::write_trace_file(trace, &path).expect("shard writes");
            path
        })
        .collect()
}

fn cleanup(paths: &[PathBuf]) {
    for path in paths {
        std::fs::remove_file(path).ok();
    }
}

fn spec() -> DetectorSpec {
    DetectorSpec::default() // wcp + hb
}

fn local_run(paths: &[PathBuf], jobs: usize) -> MultiReport {
    let spec = spec();
    run_shards(
        paths,
        move || spec.build().expect("spec builds"),
        &DriverConfig { jobs, ..DriverConfig::default() },
    )
    .expect("local run completes")
}

/// The chaos differential scenario: a one-shot coordinator with a short
/// lease timeout and speculation armed, one clean worker (guaranteed
/// progress), one chaotic worker whose every leasing connection runs
/// under `chaos`, and a clean bounded submit.  Both workers run with the
/// full scheduling surface on — shard caching *and* prefetch pipelining —
/// so the whole PR-9 feature set is exercised under faults at once.
/// Asserts the full verdict-preservation contract against the local
/// `jobs = 1` ground truth, plus the scheduling-metrics invariants.
fn assert_chaotic_worker_preserves_verdict(tag: &str, traces: &[Trace], chaos: ChaosConfig) {
    let paths = write_shards(tag, traces);
    let local = local_run(&paths, 1);
    let total_events: usize = traces.iter().map(Trace::len).sum();

    let config = ServeConfig {
        spec: spec(),
        lease_timeout: Duration::from_millis(700),
        // Tiny chunks so shard transfers span many frames and byte-level
        // faults land mid-chunk-stream, not just in handshakes.
        chunk_len: 64,
        once: true,
        // Speculation ripens only when chaos actually stalls a lease for
        // whole seconds — clean schedules steal nothing, sabotaged ones
        // may, and the verdict must not notice either way.
        speculate_after: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    };
    let coordinator = Coordinator::bind(&paths, &config).expect("coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

    let clean_addr = addr.clone();
    let clean = std::thread::spawn(move || {
        let config = WorkConfig {
            jobs: Some(1),
            retries: 5,
            retry_max_wait: Duration::from_millis(250),
            cache_bytes: 8 << 20,
            prefetch: true,
            ..WorkConfig::default()
        };
        dist::work(&clean_addr, &config).expect("the clean worker completes")
    });
    let chaotic_addr = addr.clone();
    let chaotic = std::thread::spawn(move || {
        let config = WorkConfig {
            jobs: Some(1),
            retries: 2,
            retry_max_wait: Duration::from_millis(100),
            // Bound the lease/chunk waits so injected stalls surface as
            // typed errors in seconds, not the production hour.
            patience: Some(Duration::from_secs(1)),
            cache_bytes: 8 << 20,
            prefetch: true,
            chaos,
        };
        dist::work(&chaotic_addr, &config)
    });

    let submit_config =
        SubmitConfig { timeout: Some(Duration::from_secs(60)), ..SubmitConfig::default() };
    let submit = dist::submit(&addr, &submit_config)
        .expect("a clean submit completes despite the chaotic worker");
    // The chaotic worker may end in a typed error (its connections were
    // sabotaged) or cleanly — both are in-contract; a hang is not, and the
    // caller's deadline catches that.
    let _ = chaotic.join().expect("chaotic worker thread");
    clean.join().expect("clean worker thread");
    let summary = serve.join().expect("serve thread");
    cleanup(&paths);

    // Verdict preservation: the merged report equals local jobs=1 as whole
    // Outcome values, and the rendered race pairs are byte-identical.
    assert_eq!(submit.merged.len(), local.merged.len());
    for (baseline, remote) in local.merged.iter().zip(&submit.merged) {
        assert_eq!(
            baseline.outcome, remote.outcome,
            "chaos changed the {} verdict",
            baseline.outcome.detector
        );
        // The shards-sum invariant: every shard folded exactly once even
        // when leases were forfeited and requeued along the way.
        assert_eq!(remote.outcome.shards, paths.len());
        assert_eq!(remote.outcome.events, total_events);
    }
    assert_eq!(Engine::render_race_pairs(&local.merged), Engine::render_race_pairs(&submit.merged));
    assert_eq!(submit.events, total_events);
    assert_eq!(submit.shards, paths.len());

    // The scheduling stats are job-level metadata, present and consistent
    // whatever the fault schedule did: every counter is recorded, shard
    // bytes reached the workers one way or the other (wire transfers, or
    // cache hits on a retried connection), and a steal only ever happens
    // through the speculation path.
    let sched =
        |name: &str| submit.scheduling.get(name).unwrap_or_else(|| panic!("metric {name} missing"));
    let transferred = sched("bytes_transferred");
    let hits = sched("cache_hits");
    let stolen = sched("leases_stolen");
    assert!(transferred > 0.0, "no shard bytes ever crossed the wire");
    assert!(hits >= 0.0 && stolen >= 0.0);

    // The serve-side fold agrees too.
    assert_eq!(summary.jobs.len(), 1);
    let served = summary.jobs.into_iter().next().expect("one job").result.expect("job folds");
    for (baseline, remote) in local.merged.iter().zip(&served.merged) {
        assert_eq!(baseline.outcome, remote.outcome);
    }
}

/// The fixed workload of the pinned-seed smokes: two mixed-encoding shards
/// with multi-chunk bodies plus one trivial shard.
fn pinned_workload() -> Vec<Trace> {
    vec![busy_trace("x", "A", 120), busy_trace("y", "B", 90), busy_trace("x", "A", 7)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The headline chaos differential: random workload × random seeded
    // fault schedule.  Each case is a real cluster on localhost; the
    // deadline converts any hang into a failure that prints the seed.
    #[test]
    fn chaotic_transport_never_changes_the_verdict(
        seed in 0u64..u64::MAX,
        threads in 2usize..4,
        script in prop::collection::vec((0u8..4, common::action()), 1..60),
    ) {
        let traces = vec![interpret(&script, threads), busy_trace("q", "Q", 80)];
        with_deadline("chaos differential", Duration::from_secs(120), move || {
            assert_chaotic_worker_preserves_verdict(
                &format!("diff-{seed:x}"),
                &traces,
                ChaosConfig::seeded(seed),
            );
        });
    }
}

// The pinned chaos seeds: three fixed schedules re-run on every build (the
// CI chaos smoke), so a hardening regression reproduces from a constant.
#[test]
fn pinned_chaos_seed_0x11() {
    with_deadline("pinned seed 0x11", Duration::from_secs(120), || {
        assert_chaotic_worker_preserves_verdict(
            "pin11",
            &pinned_workload(),
            ChaosConfig::seeded(0x11),
        );
    });
}

#[test]
fn pinned_chaos_seed_0xc0ffee() {
    with_deadline("pinned seed 0xC0FFEE", Duration::from_secs(120), || {
        assert_chaotic_worker_preserves_verdict(
            "pincoffee",
            &pinned_workload(),
            ChaosConfig::seeded(0xC0_FFEE),
        );
    });
}

#[test]
fn pinned_chaos_seed_0xdead_beef() {
    with_deadline("pinned seed 0xDEAD_BEEF", Duration::from_secs(120), || {
        assert_chaotic_worker_preserves_verdict(
            "pinbeef",
            &pinned_workload(),
            ChaosConfig::seeded(0xDEAD_BEEF),
        );
    });
}

// The known-nasty hand-written schedule: the chaotic worker is the ONLY
// worker, and its first three leasing connections are each sabotaged a
// different way — a cut mid-chunk-stream, a stall mid-grant, and a write
// flip that corrupts a frame the coordinator reads.  The retry budget must
// carry it through to a clean, equal completion.
#[test]
fn known_nasty_schedule_recovers_through_retries() {
    with_deadline("known-nasty schedule", Duration::from_secs(120), || {
        let traces = pinned_workload();
        let paths = write_shards("nasty", &traces);
        let local = local_run(&paths, 1);

        let config = ServeConfig {
            spec: spec(),
            lease_timeout: Duration::from_millis(700),
            chunk_len: 64,
            once: true,
            ..ServeConfig::default()
        };
        let coordinator = Coordinator::bind(&paths, &config).expect("coordinator binds");
        let addr = coordinator.local_addr().to_string();
        let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

        let plans = vec![
            // Connection 0: cut 300 bytes into the read direction — inside
            // the first shard's chunk stream (64-byte chunks), a frame
            // truncated mid-body.
            FaultPlan::clean().with_read(300, FaultAction::Cut),
            // Connection 1: stall 40 bytes in — mid-GRANT; the bounded
            // mid-frame stall budget must surface a typed timeout.
            FaultPlan::clean().with_read(40, FaultAction::Stall),
            // Connection 2: flip a bit in the 30th written byte — corrupts
            // a LEASE/OUTCOME frame on the coordinator's side of the CRC.
            FaultPlan::clean().with_write(29, FaultAction::Flip { bit: 5 }),
            // Connections 3+: clean — the recovery path.
        ];
        let worker_addr = addr.clone();
        let worker = std::thread::spawn(move || {
            let config = WorkConfig {
                jobs: Some(1),
                retries: 6,
                retry_max_wait: Duration::from_millis(100),
                patience: Some(Duration::from_secs(1)),
                chaos: ChaosConfig::scripted(plans),
                ..WorkConfig::default()
            };
            dist::work(&worker_addr, &config).expect("the worker retries through the schedule")
        });

        let submit_config =
            SubmitConfig { timeout: Some(Duration::from_secs(60)), ..SubmitConfig::default() };
        let submit = dist::submit(&addr, &submit_config).expect("submit completes");
        let summary = worker.join().expect("worker thread");
        serve.join().expect("serve thread");
        cleanup(&paths);

        assert!(summary.stats.shards >= traces.len(), "the recovered worker did all the work");
        for (baseline, remote) in local.merged.iter().zip(&submit.merged) {
            assert_eq!(baseline.outcome, remote.outcome);
            assert_eq!(remote.outcome.shards, paths.len());
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Chaos on the *submit* connection: the report either arrives equal to
    // the local run, or submit fails with a clean typed error — and either
    // way the service is not poisoned: a follow-up clean submit of the
    // same shards completes and matches the local run.
    #[test]
    fn chaotic_submit_reports_equal_or_errors_cleanly(seed in 0u64..u64::MAX) {
        with_deadline("chaotic submit", Duration::from_secs(120), move || {
            let traces = vec![busy_trace("x", "A", 60), busy_trace("y", "B", 45)];
            let paths = write_shards(&format!("submit-{seed:x}"), &traces);
            let local = local_run(&paths, 1);

            let coordinator = Coordinator::bind(&[], &ServeConfig::default())
                .expect("resident coordinator binds");
            let addr = coordinator.local_addr().to_string();
            let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));
            let worker_addr = addr.clone();
            let worker = std::thread::spawn(move || {
                let config = WorkConfig { jobs: Some(1), ..WorkConfig::default() };
                dist::work(&worker_addr, &config).expect("the clean worker completes")
            });

            let chaotic = SubmitConfig {
                job: Some("under-test".to_owned()),
                paths: paths.clone(),
                spec: spec(),
                timeout: Some(Duration::from_secs(10)),
                chunk_len: 64,
                chaos: ChaosConfig::seeded(seed),
                ..SubmitConfig::default()
            };
            match dist::submit(&addr, &chaotic) {
                Ok(report) => {
                    // The report survived the chaos: it must be the truth.
                    for (baseline, remote) in local.merged.iter().zip(&report.merged) {
                        assert_eq!(
                            baseline.outcome, remote.outcome,
                            "a chaotic submit returned a wrong verdict"
                        );
                    }
                }
                Err(error) => {
                    assert!(!error.is_empty(), "submit failures carry a rendered error");
                }
            }

            // No poisoning: the service still answers a clean job in full.
            let follow_up = SubmitConfig {
                job: Some("after-chaos".to_owned()),
                paths: paths.clone(),
                spec: spec(),
                timeout: Some(Duration::from_secs(60)),
                ..SubmitConfig::default()
            };
            let report = dist::submit(&addr, &follow_up)
                .expect("the service survives a sabotaged client");
            for (baseline, remote) in local.merged.iter().zip(&report.merged) {
                assert_eq!(baseline.outcome, remote.outcome);
            }

            dist::shutdown(&addr).expect("coordinator drains");
            worker.join().expect("worker thread");
            serve.join().expect("serve thread");
            cleanup(&paths);
        });
    }
}

// The speculation pin, scripted: a worker whose first connection stalls
// mid-chunk-stream (a straggler by fault injection, not by sleep) holds
// its lease hostage far under the lease timeout; the coordinator must
// speculatively re-lease the shard to the idle clean worker, fold the
// thief's result exactly once, and finish the job to the local verdict.
#[test]
fn stalled_straggler_is_speculatively_re_leased() {
    with_deadline("scripted-stall speculation", Duration::from_secs(60), || {
        let traces = pinned_workload();
        let paths = write_shards("specstall", &traces);
        let local = local_run(&paths, 1);
        let total_events: usize = traces.iter().map(Trace::len).sum();

        let config = ServeConfig {
            spec: spec(),
            // Leases effectively never expire and tiny chunks put byte 300
            // of the read direction inside the first chunk stream: the
            // stall lands mid-transfer, after the GRANT was accepted.
            lease_timeout: Duration::from_secs(600),
            chunk_len: 64,
            once: true,
            speculate_after: Some(Duration::from_millis(300)),
            ..ServeConfig::default()
        };
        let coordinator = Coordinator::bind(&paths, &config).expect("coordinator binds");
        let addr = coordinator.local_addr().to_string();
        let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

        // The straggler leases first; its stalled read keeps the lease
        // hostage until its 2s patience gives up — well past the 300ms
        // speculation ripeness.
        let straggler_addr = addr.clone();
        let straggler = std::thread::spawn(move || {
            let config = WorkConfig {
                jobs: Some(1),
                retries: 1,
                retry_max_wait: Duration::from_millis(100),
                patience: Some(Duration::from_secs(2)),
                chaos: ChaosConfig::scripted(vec![
                    FaultPlan::clean().with_read(300, FaultAction::Stall)
                ]),
                ..WorkConfig::default()
            };
            dist::work(&straggler_addr, &config)
        });
        std::thread::sleep(Duration::from_millis(200)); // let the straggler lease first

        let clean_addr = addr.clone();
        let clean = std::thread::spawn(move || {
            let config = WorkConfig { jobs: Some(1), ..WorkConfig::default() };
            dist::work(&clean_addr, &config).expect("the clean worker completes")
        });

        let submit_config =
            SubmitConfig { timeout: Some(Duration::from_secs(60)), ..SubmitConfig::default() };
        let submit = dist::submit(&addr, &submit_config).expect("submit completes");
        let _ = straggler.join().expect("straggler thread"); // typed error or clean exit
        clean.join().expect("clean worker thread");
        serve.join().expect("serve thread");
        cleanup(&paths);

        for (baseline, remote) in local.merged.iter().zip(&submit.merged) {
            assert_eq!(baseline.outcome, remote.outcome, "speculation changed the verdict");
            assert_eq!(remote.outcome.shards, paths.len(), "a stolen shard folded twice");
            assert_eq!(remote.outcome.events, total_events);
        }
        let stolen = submit.scheduling.get("leases_stolen").unwrap_or(0.0);
        assert!(stolen >= 1.0, "the stalled lease was never stolen (leases_stolen = {stolen})");
    });
}

// The satellite regression pin: one flipped bit inside a leased shard's
// chunk stream must surface to the worker as a typed *corrupt frame*
// error — never a decode of wrong bytes — the lease must requeue, and a
// clean re-lease must ship byte-identical content so the job still folds
// to the local verdict.
#[test]
fn bit_flipped_chunk_is_a_typed_error_and_the_lease_requeues() {
    with_deadline("bit-flipped chunk regression", Duration::from_secs(60), || {
        let traces = [busy_trace("x", "FlipTarget", 300)];
        let paths = write_shards("bitflip", &traces);
        let on_disk = std::fs::read(&paths[0]).expect("shard reads");
        assert!(
            on_disk.len() > 1200,
            "shard too small ({} bytes) for the anchored flip to land in its chunk stream",
            on_disk.len()
        );
        let local = local_run(&paths, 1);

        let config = ServeConfig { spec: spec(), ..ServeConfig::default() };
        let coordinator = Coordinator::bind(&paths, &config).expect("coordinator binds");
        let addr = coordinator.local_addr().to_string();
        let serve = std::thread::spawn(move || coordinator.run().expect("serve completes"));

        // Byte 600 of the read direction is well past WELCOME + GRANT and
        // inside the single chunk frame's payload.
        let plan = FaultPlan::clean().with_read(600, FaultAction::Flip { bit: 2 });
        let (sabotaged, _) =
            RemoteQueue::connect_with(&addr, Some(Duration::from_secs(10)), Some(plan))
                .expect("sabotaged worker handshakes (the flip is past the handshake)");
        let error = sabotaged.claim().expect_err("a flipped chunk must not decode");
        assert!(
            error.message.contains("corrupt frame"),
            "expected a typed corruption error, got: {}",
            error.message
        );
        // Dropping the queue closes the connection; the coordinator
        // requeues the forfeited lease.
        drop(sabotaged);

        // A clean re-lease ships byte-identical content.
        let (clean, _) = RemoteQueue::connect(&addr).expect("clean worker handshakes");
        let item = clean
            .claim()
            .expect("the requeued shard re-leases")
            .expect("the shard is pending again");
        match item.input {
            ShardInput::Bytes { bytes, .. } => {
                assert_eq!(*bytes, on_disk, "the re-lease shipped different bytes");
            }
            other => panic!("expected leased bytes, got {other:?}"),
        }
        drop(clean); // forfeit again — the real fleet below finishes the job

        let worker_addr = addr.clone();
        let worker = std::thread::spawn(move || {
            let config = WorkConfig { jobs: Some(1), ..WorkConfig::default() };
            dist::work(&worker_addr, &config).expect("worker completes")
        });
        let report = dist::submit(&addr, &SubmitConfig::default()).expect("job completes");
        dist::shutdown(&addr).expect("coordinator drains");
        worker.join().expect("worker thread");
        serve.join().expect("serve thread");
        cleanup(&paths);

        for (baseline, remote) in local.merged.iter().zip(&report.merged) {
            assert_eq!(baseline.outcome, remote.outcome, "corruption leaked into the verdict");
        }
    });
}
