//! Differential tests locking in batch/stream equivalence.
//!
//! Random well-formed traces are generated with a *fork prologue* (thread 0
//! announces every other thread before any lock activity — the pattern of
//! real logged traces), serialized to the std text format, and re-ingested
//! through [`StreamReader`] into the detectors' streaming cores in
//! *discovery* mode.  The properties:
//!
//! (a) streaming and batch WCP/HB report identical race sets **and**
//!     identical per-event timestamps;
//! (b) every HB race is a WCP race (the Theorem 1 soundness ordering).
//!
//! On failure, the offending trace is printed in std format so it can be
//! replayed directly with `engine stream <file>`.

mod common;

use std::collections::BTreeSet;

use common::generated_trace;
use proptest::prelude::*;
use rapid_hb::{FastTrackStream, HbDetector, HbStream};
use rapid_trace::format::{self, BinReader, MmapReader, StreamReader};
use rapid_trace::{Event, Race, RaceReport, Trace};
use rapid_vc::VectorClock;
use rapid_wcp::{WcpConfig, WcpDetector, WcpStream};

/// A name-based, order-insensitive key for one race, resolved against the
/// trace that reported it (stream and batch intern ids independently, so
/// raw `VarId`s are not comparable across the two sides; event ids are —
/// both sides assign them positionally).
fn race_key(race: &Race, trace: &Trace) -> (u32, u32, String, String, String) {
    (
        race.first.raw(),
        race.second.raw(),
        trace.variable_name(race.variable).unwrap_or_default().to_owned(),
        trace.location_name(race.first_location).unwrap_or_default().to_owned(),
        trace.location_name(race.second_location).unwrap_or_default().to_owned(),
    )
}

fn race_set(report: &RaceReport, trace: &Trace) -> BTreeSet<(u32, u32, String, String, String)> {
    report.races().iter().map(|race| race_key(race, trace)).collect()
}

fn clocks_equal(a: &VectorClock, b: &VectorClock) -> bool {
    // Structural equality is too strict (trailing-zero components); compare
    // as partial-order elements.
    a.le(b) && b.le(a)
}

/// Drives WCP and HB streaming cores off any event source, collecting race
/// reports and per-event timestamps.
fn run_cores(
    events: impl Iterator<Item = Result<Event, format::ParseError>>,
) -> (RaceReport, Vec<VectorClock>, RaceReport, Vec<VectorClock>) {
    let mut wcp = WcpStream::new();
    let mut hb = HbStream::new();
    let mut wcp_report = RaceReport::new();
    let mut hb_report = RaceReport::new();
    let mut wcp_times = Vec::new();
    let mut hb_times = Vec::new();
    for event in events {
        let event = event.expect("source yields well-formed events");
        wcp_report.extend(wcp.on_event(&event));
        wcp_times.push(wcp.current_time(event.thread()));
        hb_report.extend(hb.on_event(&event));
        hb_times.push(hb.timestamp_of_last(&event));
    }
    (wcp_report, wcp_times, hb_report, hb_times)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// (a) for WCP: race sets and per-event timestamps agree between the
    /// batch wrapper and a discovery-mode stream fed from serialized text.
    #[test]
    fn wcp_stream_matches_batch(trace in generated_trace()) {
        let text = format::write_std(&trace);

        let batch = WcpDetector::new().analyze_with_timestamps(&trace);
        let batch_times = batch.timestamps.expect("requested");

        let mut stream = WcpStream::new();
        let mut stream_report = RaceReport::new();
        let mut stream_times = Vec::new();
        let mut reader = StreamReader::std(text.as_bytes());
        let mut events = Vec::new();
        for event in reader.by_ref() {
            let event = event.expect("serialized trace reparses");
            stream_report.extend(stream.on_event(&event));
            stream_times.push(stream.current_time(event.thread()));
            events.push(event);
        }

        prop_assert_eq!(events.len(), trace.len());
        // The streamed trace has its own name tables; resolve through them.
        let streamed_trace = format::parse_std(&text).expect("reparses");
        prop_assert_eq!(
            race_set(&batch.report, &trace),
            race_set(&stream_report, &streamed_trace),
            "stream/batch WCP race sets diverged on:\n{}", text
        );
        for (index, stream_clock) in stream_times.iter().enumerate() {
            let event = rapid_trace::EventId::new(index as u32);
            prop_assert!(
                clocks_equal(batch_times.clock(event), stream_clock),
                "WCP timestamp of event {} diverged on:\n{}", index, text
            );
        }
    }

    /// (a) for HB: race sets and per-event timestamps agree between the
    /// batch wrapper and a discovery-mode stream fed from serialized text.
    #[test]
    fn hb_stream_matches_batch(trace in generated_trace()) {
        let text = format::write_std(&trace);

        let (batch_report, batch_times) = HbDetector::new().detect_with_timestamps(&trace);

        let mut stream = HbStream::new();
        let mut stream_report = RaceReport::new();
        let mut stream_times = Vec::new();
        for event in StreamReader::std(text.as_bytes()) {
            let event = event.expect("serialized trace reparses");
            stream_report.extend(stream.on_event(&event));
            stream_times.push(stream.timestamp_of_last(&event));
        }

        let streamed_trace = format::parse_std(&text).expect("reparses");
        prop_assert_eq!(
            race_set(&batch_report, &trace),
            race_set(&stream_report, &streamed_trace),
            "stream/batch HB race sets diverged on:\n{}", text
        );
        for (index, stream_clock) in stream_times.iter().enumerate() {
            let event = rapid_trace::EventId::new(index as u32);
            prop_assert!(
                clocks_equal(batch_times.clock(event), stream_clock),
                "HB timestamp of event {} diverged on:\n{}", index, text
            );
        }
    }

    /// FastTrack's epoch representation is an optimization, not an
    /// approximation of the race *verdict*: its stream agrees with the
    /// Djit+ stream on which variables race.  (Pair-level reports can
    /// differ by design — FastTrack only keeps the last write epoch, so it
    /// reports at least one pair per racy variable rather than all pairs.)
    #[test]
    fn fasttrack_stream_matches_djit_racy_variables(trace in generated_trace()) {
        let mut djit = HbStream::new();
        let mut fasttrack = FastTrackStream::new();
        for event in trace.events() {
            djit.on_event(event);
            fasttrack.on_event(event);
        }
        let vars = |report: &RaceReport| -> BTreeSet<_> {
            report.races().iter().map(|race| race.variable).collect()
        };
        prop_assert_eq!(
            vars(&djit.finish()),
            vars(&fasttrack.finish()),
            "FastTrack diverged from Djit+ on:\n{}", format::write_std(&trace)
        );
    }

    /// The zero-copy ingestion paths are detector-equivalent to
    /// [`StreamReader`]: a memory-mapped text reader and a binary `.rwf`
    /// reader produce identical WCP/HB race sets *and* per-event timestamps
    /// on random fork-announced traces.
    #[test]
    fn zero_copy_readers_match_stream_reader(trace in generated_trace()) {
        let text = format::write_std(&trace);

        let baseline = run_cores(StreamReader::std(text.as_bytes()));
        let mapped = run_cores(MmapReader::std_bytes(text.clone().into_bytes()));
        let rwf = format::to_rwf_bytes(&format::parse_std(&text).expect("reparses"));
        let binary = run_cores(BinReader::from_bytes(rwf).expect("fresh rwf header is sound"));

        let streamed_trace = format::parse_std(&text).expect("reparses");
        for (path, run) in [("mmap", &mapped), ("binary", &binary)] {
            let (wcp_report, wcp_times, hb_report, hb_times) = run;
            prop_assert_eq!(
                race_set(&baseline.0, &streamed_trace),
                race_set(wcp_report, &streamed_trace),
                "{} WCP race set diverged on:\n{}", path, text
            );
            prop_assert_eq!(
                race_set(&baseline.2, &streamed_trace),
                race_set(hb_report, &streamed_trace),
                "{} HB race set diverged on:\n{}", path, text
            );
            prop_assert_eq!(wcp_times.len(), baseline.1.len());
            for (index, clock) in wcp_times.iter().enumerate() {
                prop_assert!(
                    clocks_equal(&baseline.1[index], clock),
                    "{} WCP timestamp of event {} diverged on:\n{}", path, index, text
                );
            }
            for (index, clock) in hb_times.iter().enumerate() {
                prop_assert!(
                    clocks_equal(&baseline.3[index], clock),
                    "{} HB timestamp of event {} diverged on:\n{}", path, index, text
                );
            }
        }
    }

    /// The epoch fast paths are an optimization, not an approximation: a
    /// full-clock reference run ([`WcpConfig::reference`] — no fast paths,
    /// no pooling) and the default epoch-fast core agree on the race
    /// *vector* (same races, same event indices, same order), every
    /// per-event timestamp, and every [`rapid_wcp::WcpStats`] counter
    /// except the fast-path/pool hit counters themselves.
    #[test]
    fn epoch_fast_wcp_matches_full_clock_reference(trace in generated_trace()) {
        let mut fast = WcpStream::with_config(0, WcpConfig::default());
        let mut reference = WcpStream::with_config(0, WcpConfig::reference());
        let mut fast_times = Vec::new();
        let mut reference_times = Vec::new();
        for event in trace.events() {
            fast.on_event(event);
            reference.on_event(event);
            fast_times.push(fast.current_time(event.thread()));
            reference_times.push(reference.current_time(event.thread()));
        }
        let fast = fast.finish();
        let reference = reference.finish();

        let key = |report: &RaceReport| -> Vec<_> {
            report
                .races()
                .iter()
                .map(|race| (race.first, race.second, race.variable, race.first_location))
                .collect()
        };
        prop_assert_eq!(
            key(&fast.report),
            key(&reference.report),
            "epoch-fast race vector diverged from full-clock reference on:\n{}",
            format::write_std(&trace)
        );
        for (index, (fast_clock, reference_clock)) in
            fast_times.iter().zip(&reference_times).enumerate()
        {
            prop_assert!(
                clocks_equal(fast_clock, reference_clock),
                "epoch-fast timestamp of event {} diverged on:\n{}",
                index, format::write_std(&trace)
            );
        }
        // Stats must match counter for counter once the mode-specific hit
        // counters are masked out (the reference never takes a fast path or
        // a pooled clock by construction).
        let mask = |stats: &rapid_wcp::WcpStats| rapid_wcp::WcpStats {
            epoch_fast_reads: 0,
            epoch_fast_writes: 0,
            pool_taken: 0,
            pool_recycled: 0,
            ..stats.clone()
        };
        prop_assert_eq!(
            mask(&fast.stats),
            mask(&reference.stats),
            "epoch-fast stats diverged on:\n{}", format::write_std(&trace)
        );
        prop_assert_eq!(reference.stats.epoch_fast_reads, 0);
        prop_assert_eq!(reference.stats.pool_taken, 0);
    }

    /// Pooled clock recycling is invisible: a pooled run and a
    /// fresh-allocation run produce identical per-event timestamps (and
    /// race vectors).  This is the guard for `ClockPool::put` clearing on
    /// every return path — one leaked stale component would surface here as
    /// a timestamp diff.
    #[test]
    fn pooled_and_fresh_allocation_runs_agree(trace in generated_trace()) {
        let pooled_config = WcpConfig { pool_clocks: true, ..WcpConfig::default() };
        let fresh_config = WcpConfig { pool_clocks: false, ..WcpConfig::default() };
        let mut pooled = WcpStream::with_config(0, pooled_config);
        let mut fresh = WcpStream::with_config(0, fresh_config);
        for (index, event) in trace.events().iter().enumerate() {
            pooled.on_event(event);
            fresh.on_event(event);
            prop_assert!(
                clocks_equal(
                    &pooled.current_time(event.thread()),
                    &fresh.current_time(event.thread())
                ),
                "pooled/fresh timestamp of event {} diverged on:\n{}",
                index, format::write_std(&trace)
            );
        }
        let pooled = pooled.finish();
        let fresh = fresh.finish();
        let key = |report: &RaceReport| -> Vec<_> {
            report.races().iter().map(|race| (race.first, race.second, race.variable)).collect()
        };
        prop_assert_eq!(key(&pooled.report), key(&fresh.report));
    }

    /// (b) Theorem 1 soundness ordering: every HB race is a WCP race, at
    /// both the event-pair and the location-pair level.
    #[test]
    fn hb_races_are_a_subset_of_wcp_races(trace in generated_trace()) {
        let hb = HbDetector::new().detect(&trace);
        let wcp = WcpDetector::new().detect(&trace);

        let hb_pairs: BTreeSet<_> =
            hb.races().iter().map(|race| (race.first, race.second, race.variable)).collect();
        let wcp_pairs: BTreeSet<_> =
            wcp.races().iter().map(|race| (race.first, race.second, race.variable)).collect();
        prop_assert!(
            hb_pairs.is_subset(&wcp_pairs),
            "HB-only event pairs {:?} on:\n{}",
            hb_pairs.difference(&wcp_pairs).collect::<Vec<_>>(),
            format::write_std(&trace)
        );
        prop_assert!(
            hb.distinct_location_pairs().is_subset(&wcp.distinct_location_pairs()),
            "HB-only location pairs on:\n{}", format::write_std(&trace)
        );
    }
}
