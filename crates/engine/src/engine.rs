//! The [`Engine`]: one event stream, fanned out to N registered detectors.

use std::time::{Duration, Instant};

use rapid_trace::{Event, NameResolver, Race, Trace};

use crate::detector::Detector;
use crate::outcome::Outcome;

/// Per-detector results of one engine run: the detector's own outcome plus
/// the driver's accounting.
#[derive(Debug, Clone)]
pub struct DetectorRun {
    /// What the detector reported at the end of the stream.
    pub outcome: Outcome,
    /// Cumulative wall-clock time spent inside this detector (its
    /// `on_event` and `finish` calls only — parsing and the other detectors
    /// are excluded).  Accounting costs one monotonic clock read per
    /// detector per event (boundaries are shared between adjacent
    /// detectors), so detectors running at tens of nanoseconds per event
    /// carry a measurable floor from the timer itself; treat sub-µs/event
    /// comparisons across harness versions accordingly.
    ///
    /// Under [`DetectorRun::merge`] times **sum**: for runs folded from
    /// parallel shards this is the total detector-CPU time across workers,
    /// which can exceed the aggregate wall-clock.
    pub time: Duration,
}

impl DetectorRun {
    /// Events per second through this detector, derived from
    /// [`Outcome::events`] and the per-detector time.  A zero-duration run
    /// (possible on tiny traces, where the accumulated slices round to
    /// zero) yields a non-finite value — `inf` with events, `NaN` without;
    /// [`Engine::render`] clamps both to a `—` cell rather than printing
    /// them.
    pub fn events_per_second(&self) -> f64 {
        self.outcome.events as f64 / self.time.as_secs_f64()
    }

    /// Folds another run of the *same detector configuration* into this one:
    /// outcomes merge per the [`Outcome`] algebra, times sum.
    pub fn merge(&mut self, other: DetectorRun) {
        self.time += other.time;
        self.outcome.merge(other.outcome);
    }
}

struct Registered {
    detector: Box<dyn Detector>,
    /// Cached display name, so per-event sinks don't re-allocate it.
    name: String,
    spent: Duration,
}

/// A single-pass, push-based analysis driver.
///
/// Register any number of [`Detector`]s, then feed each event of the stream
/// exactly once with [`Engine::on_event`] (or drive a whole source with
/// [`Engine::run`] / [`Engine::run_trace`]); every registered detector sees
/// every event, and per-detector wall-clock time is accounted separately.
/// Because detectors are streaming cores, total live memory is the sum of
/// the detectors' states — the trace itself is never materialized on this
/// path, so a multi-gigabyte trace file can be analyzed in
/// `O(threads · variables + window)` memory.
///
/// For analyzing *many* trace files at once, see
/// [`driver::run_shards`](crate::driver::run_shards), which runs one engine
/// per shard on a worker pool and merges the outcomes.
///
/// # Examples
///
/// ```
/// use rapid_engine::Engine;
/// use rapid_trace::format::StreamReader;
///
/// let input = "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n";
/// let mut engine = Engine::new();
/// engine.register(Box::new(rapid_wcp::WcpStream::new()));
/// engine.register(Box::new(rapid_hb::HbStream::new()));
///
/// let mut reader = StreamReader::std(input.as_bytes());
/// engine.run(&mut reader).expect("parses");
/// let runs = engine.finish(reader.names());
/// assert_eq!(runs.len(), 2);
/// assert!(runs.iter().all(|run| run.outcome.distinct_pairs() == 1));
/// ```
#[derive(Default)]
pub struct Engine {
    detectors: Vec<Registered>,
    events: usize,
}

impl Engine {
    /// Creates an engine with no detectors registered.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Registers a detector; it will see every subsequent event.
    pub fn register(&mut self, detector: Box<dyn Detector>) -> &mut Self {
        let name = detector.name();
        self.detectors.push(Registered { detector, name, spent: Duration::ZERO });
        self
    }

    /// Number of registered detectors.
    pub fn detector_count(&self) -> usize {
        self.detectors.len()
    }

    /// Number of events fed so far.
    pub fn events_seen(&self) -> usize {
        self.events
    }

    /// Fans one event out to every registered detector, returning how many
    /// races were flagged at this event across all of them.
    pub fn on_event(&mut self, event: &Event) -> usize {
        self.on_event_with(event, |_, _| {})
    }

    /// Like [`Engine::on_event`], but hands every race flagged at this event
    /// to `sink` together with the reporting detector's name — the hook
    /// behind the CLI's online `--races` reporting.  The sink runs outside
    /// the per-detector timing slices, so reporting cost is not billed to
    /// the detectors.
    pub fn on_event_with(&mut self, event: &Event, mut sink: impl FnMut(&str, &Race)) -> usize {
        self.events += 1;
        let mut flagged = 0;
        // One clock read per detector boundary (each timestamp ends one
        // detector's slice and starts the next), so fast detectors are not
        // dominated by timer overhead.
        let mut last = Instant::now();
        for registered in &mut self.detectors {
            let races = registered.detector.on_event(event);
            let now = Instant::now();
            registered.spent += now.duration_since(last);
            last = now;
            if !races.is_empty() {
                flagged += races.len();
                for race in &races {
                    sink(&registered.name, race);
                }
                // Exclude the sink's own cost from the next detector's slice.
                last = Instant::now();
            }
        }
        flagged
    }

    /// Drains an event source (e.g. a
    /// [`StreamReader`](rapid_trace::format::StreamReader)) through the
    /// engine, stopping at the first source error.
    ///
    /// # Errors
    ///
    /// Returns the source's error unchanged; events already fed remain
    /// accounted, so a caller may still [`Engine::finish`] for partial
    /// results.
    pub fn run<E>(
        &mut self,
        events: impl IntoIterator<Item = Result<Event, E>>,
    ) -> Result<usize, E> {
        let mut count = 0;
        for event in events {
            self.on_event(&event?);
            count += 1;
        }
        Ok(count)
    }

    /// Feeds a fully materialized trace (the batch path) through the engine.
    pub fn run_trace(&mut self, trace: &Trace) -> usize {
        for event in trace.events() {
            self.on_event(event);
        }
        trace.len()
    }

    /// Finishes every detector, returning their outcomes in registration
    /// order together with per-detector timing.  Race pairs are resolved to
    /// names through `names` — pass the [`Trace`] on the batch path or the
    /// reader's [`StreamNames`](rapid_trace::format::StreamNames) on the
    /// stream path — so the returned outcomes are mergeable across runs.
    pub fn finish(&mut self, names: &dyn NameResolver) -> Vec<DetectorRun> {
        self.detectors
            .drain(..)
            .map(|mut registered| {
                let start = Instant::now();
                let outcome = registered.detector.finish(names);
                let time = registered.spent + start.elapsed();
                DetectorRun { outcome, time }
            })
            .collect()
    }

    /// Renders a per-detector result table for `runs` (as returned by
    /// [`Engine::finish`] or merged by [`DetectorRun::merge`]).  The
    /// events/s column is derived from each detector's own time slice, and
    /// the separator is sized to the header row.
    pub fn render(runs: &[DetectorRun]) -> String {
        let header = format!(
            "{:<18} {:>8} {:>12} {:>10} {:>10}  {}",
            "detector", "#races", "race events", "events/s", "time", "telemetry"
        );
        let mut out = String::new();
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for run in runs {
            out.push_str(&format!(
                "{:<18} {:>8} {:>12} {:>10} {:>10.2?}  {}\n",
                run.outcome.detector,
                run.outcome.distinct_pairs(),
                run.outcome.race_events(),
                format_events_per_second(run.events_per_second()),
                run.time,
                run.outcome.telemetry(),
            ));
        }
        out
    }

    /// Renders each detector's merged race pairs, one block per detector
    /// with at least one pair — name-keyed, so the output is deterministic
    /// and byte-identical across job counts, ingestion paths, and the
    /// local/distributed divide (CI diffs `engine multi` against `engine
    /// submit` output with this very rendering).
    pub fn render_race_pairs(runs: &[DetectorRun]) -> String {
        let mut out = String::new();
        for run in runs {
            if run.outcome.races.is_empty() {
                continue;
            }
            out.push_str(&format!("{} race pairs:\n", run.outcome.detector));
            for (pair, stats) in &run.outcome.races {
                out.push_str(&format!(
                    "  {pair} ({} event(s), min distance {})\n",
                    stats.race_events, stats.min_distance
                ));
            }
        }
        out
    }
}

/// Human-scaled events/s: `17.8M`, `55.1K`, `912` — or `—` when the rate
/// is not finite (a zero-duration detector run divides by ~0).
fn format_events_per_second(eps: f64) -> String {
    if !eps.is_finite() {
        "—".to_owned()
    } else if eps >= 1e6 {
        format!("{:.1}M", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.1}K", eps / 1e3)
    } else {
        format!("{eps:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_trace::format::{ParseError, StreamReader};
    use rapid_trace::TraceBuilder;

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        b.finish()
    }

    #[test]
    fn fans_events_to_all_detectors() {
        let trace = racy_trace();
        let mut engine = Engine::new();
        engine.register(Box::new(rapid_hb::HbStream::new()));
        engine.register(Box::new(rapid_wcp::WcpStream::new()));
        assert_eq!(engine.detector_count(), 2);
        let flagged = trace.events().iter().map(|e| engine.on_event(e)).sum::<usize>();
        assert_eq!(flagged, 2, "each detector flags the write-write race once");
        let runs = engine.finish(&trace);
        assert_eq!(runs.len(), 2);
        for run in &runs {
            assert_eq!(run.outcome.events, 2);
            assert_eq!(run.outcome.distinct_pairs(), 1);
        }
        let rendered = Engine::render(&runs);
        assert!(rendered.contains("wcp"));
        assert!(rendered.contains("hb"));
        assert!(rendered.contains("events/s"));
    }

    #[test]
    fn zero_duration_runs_render_a_dash_not_inf() {
        // The raw rate is honest (inf with events, NaN without)…
        assert_eq!(format_events_per_second(f64::INFINITY), "—");
        assert_eq!(format_events_per_second(f64::NAN), "—");
        assert_eq!(format_events_per_second(912.0), "912");
        assert_eq!(format_events_per_second(55_100.0), "55.1K");
        assert_eq!(format_events_per_second(17_800_000.0), "17.8M");

        // …and a zero-duration DetectorRun renders a `—` cell end to end.
        let trace = racy_trace();
        let mut engine = Engine::new();
        engine.register(Box::new(rapid_wcp::WcpStream::new()));
        engine.run_trace(&trace);
        let mut runs = engine.finish(&trace);
        runs[0].time = Duration::ZERO;
        assert!(runs[0].events_per_second().is_infinite());
        let rendered = Engine::render(&runs);
        assert!(rendered.contains("—"), "zero-duration rate must render as a dash:\n{rendered}");
        assert!(!rendered.contains("inf"), "inf must never reach the table:\n{rendered}");
    }

    #[test]
    fn race_pairs_render_deterministically() {
        let trace = racy_trace();
        let mut engine = Engine::new();
        engine.register(Box::new(rapid_wcp::WcpStream::new()));
        engine.register(Box::new(rapid_hb::HbStream::new()));
        engine.run_trace(&trace);
        let runs = engine.finish(&trace);
        let rendered = Engine::render_race_pairs(&runs);
        assert!(rendered.starts_with("wcp race pairs:\n"));
        assert!(rendered.contains("hb race pairs:\n"));
        assert!(rendered.contains("min distance"));
        // No races ⇒ no block at all.
        assert_eq!(Engine::render_race_pairs(&[]), "");
    }

    #[test]
    fn render_separator_matches_header_width() {
        let rendered = Engine::render(&[]);
        let mut lines = rendered.lines();
        let header = lines.next().expect("header row");
        let separator = lines.next().expect("separator row");
        assert_eq!(separator.len(), header.len(), "separator is computed from the header");
        assert!(separator.chars().all(|c| c == '-'));
    }

    #[test]
    fn run_propagates_stream_errors() {
        let input = "t1|w(x)|A:1\nt1|oops|A:2\n";
        let mut engine = Engine::new();
        engine.register(Box::new(rapid_wcp::WcpStream::new()));
        let mut reader = StreamReader::std(input.as_bytes());
        let error: ParseError = engine.run(&mut reader).unwrap_err();
        assert_eq!(error.line, 2);
        assert_eq!(engine.events_seen(), 1, "events before the error were fed");
    }

    #[test]
    fn run_trace_matches_streamed_text() {
        let trace = racy_trace();
        let text = rapid_trace::format::write_std(&trace);

        let mut batch = Engine::new();
        batch.register(Box::new(rapid_wcp::WcpStream::new()));
        batch.run_trace(&trace);
        let batch_runs = batch.finish(&trace);

        let mut streamed = Engine::new();
        streamed.register(Box::new(rapid_wcp::WcpStream::new()));
        let mut reader = StreamReader::std(text.as_bytes());
        streamed.run(&mut reader).expect("round-trips");
        let stream_runs = streamed.finish(reader.names());

        // With name-keyed outcomes the two sides are directly comparable —
        // not just in cardinality but as values.
        assert_eq!(batch_runs[0].outcome.races, stream_runs[0].outcome.races);
    }

    #[test]
    fn merged_runs_sum_times_and_union_races() {
        let trace = racy_trace();
        let run = |trace: &Trace| {
            let mut engine = Engine::new();
            engine.register(Box::new(rapid_wcp::WcpStream::new()));
            engine.run_trace(trace);
            engine.finish(trace).remove(0)
        };
        let mut merged = run(&trace);
        merged.merge(run(&trace));
        assert_eq!(merged.outcome.shards, 2);
        assert_eq!(merged.outcome.events, 2 * trace.len());
        assert_eq!(merged.outcome.distinct_pairs(), 1, "same named pair unions to one");
        assert_eq!(merged.outcome.race_events(), 2);
    }
}
