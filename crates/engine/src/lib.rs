//! Streaming detection engine for `rapid-rs`.
//!
//! The paper's headline claim is that WCP admits a *single-pass, linear-time*
//! analysis.  This crate makes that operational — and scales it across
//! traces:
//!
//! * a unified [`Detector`] trait (`on_event` / `finish`) implemented by
//!   every detector's streaming core;
//! * an [`Engine`] driver that fans one event stream out to any number of
//!   registered detectors in a single pass with per-detector accounting;
//! * a mergeable [`Outcome`] algebra ([`outcome`]): race pairs keyed by
//!   interned *names* (not per-trace ids) and typed, aggregatable
//!   [`Metrics`], so results from different traces fold together losslessly;
//! * a parallel multi-trace [`driver`]: a `std::thread` worker pool that
//!   analyzes N shard files concurrently (one fresh engine per shard, any
//!   mix of encodings) and merges the per-shard outcomes into one report —
//!   with shard acquisition and result return behind a pluggable
//!   [`WorkSource`]/[`ResultSink`] queue layer;
//! * a wire codec for outcomes ([`outcome::wire`], magic `RWO`) and a
//!   distributed front-end ([`dist`]): a TCP coordinator/worker protocol
//!   (`engine serve|work|submit`) that leases shards to remote workers,
//!   survives worker death by requeueing, and folds returned outcomes
//!   through the exact same merge path as a local `jobs = N` run — see
//!   `docs/PROTOCOL.md`.
//!
//! Combined with [`rapid_trace::format::StreamReader`] (an iterator of
//! events over any `BufRead`), a trace file of arbitrary length is analyzed
//! in bounded memory: nothing on the stream path ever materializes a
//! [`Trace`](rapid_trace::Trace).  The batch entry points of the detector
//! crates (`WcpDetector::analyze`, `HbDetector::detect`, …) are thin
//! wrappers over the same streaming cores, so batch and stream results
//! cannot drift apart — a property locked in by this crate's differential
//! test suite, which since PR 4 also covers `jobs = 1` vs `jobs = N`
//! parallel shard runs.
//!
//! # Example: stream a trace file through three detectors
//!
//! ```
//! use rapid_engine::Engine;
//! use rapid_trace::format::StreamReader;
//!
//! let file = "\
//! main|fork(worker)|Main.java:10
//! main|w(flag)|Main.java:20
//! worker|r(flag)|Worker.java:33
//! main|join(worker)|Main.java:30
//! ";
//!
//! let mut engine = Engine::new();
//! engine.register(Box::new(rapid_wcp::WcpStream::new()));
//! engine.register(Box::new(rapid_hb::FastTrackStream::new()));
//! engine.register(Box::new(rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default())));
//!
//! let mut reader = StreamReader::std(file.as_bytes());
//! engine.run(&mut reader).expect("well-formed trace");
//! let runs = engine.finish(reader.names());
//! assert!(runs.iter().all(|run| run.outcome.distinct_pairs() == 1));
//! // Race pairs are keyed by names, so they are directly comparable (and
//! // mergeable) across traces:
//! let pair = runs[0].outcome.races.keys().next().expect("one pair");
//! assert_eq!(pair.variable, "flag");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod dist;
pub mod driver;
pub mod engine;
pub mod outcome;

pub use detector::{Detector, DetectorSpec};
pub use driver::{
    expand_shard_paths, fold_runs, run_shards, DriverConfig, DriverError, MultiReport, ResultSink,
    ShardInput, ShardRun, WorkItem, WorkSource,
};
pub use engine::{DetectorRun, Engine};
pub use outcome::{Aggregation, Metric, Metrics, Outcome, PairStats, RacePair};
// The shared race-drain cursor every streaming core feeds its `on_event`
// return values through.  It lives next to `RaceReport` in `rapid-trace`
// (the detector crates cannot depend on this one), but engine users are its
// main audience, so it is re-exported here.
pub use rapid_trace::RaceDrain;
