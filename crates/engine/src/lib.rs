//! Streaming detection engine for `rapid-rs`.
//!
//! The paper's headline claim is that WCP admits a *single-pass, linear-time*
//! analysis.  This crate makes that operational: a unified [`Detector`]
//! trait (`on_event` / `finish`) implemented by every detector's streaming
//! core, and an [`Engine`] driver that fans one event stream out to any
//! number of registered detectors in a single pass with per-detector
//! accounting.
//!
//! Combined with [`rapid_trace::format::StreamReader`] (an iterator of
//! events over any `BufRead`), a trace file of arbitrary length is analyzed
//! in bounded memory: nothing on the stream path ever materializes a
//! [`Trace`](rapid_trace::Trace).  The batch entry points of the detector
//! crates (`WcpDetector::analyze`, `HbDetector::detect`, …) are thin
//! wrappers over the same streaming cores, so batch and stream results
//! cannot drift apart — a property locked in by this crate's differential
//! test suite.
//!
//! # Example: stream a trace file through three detectors
//!
//! ```
//! use rapid_engine::Engine;
//! use rapid_trace::format::StreamReader;
//!
//! let file = "\
//! main|fork(worker)|Main.java:10
//! main|w(flag)|Main.java:20
//! worker|r(flag)|Worker.java:33
//! main|join(worker)|Main.java:30
//! ";
//!
//! let mut engine = Engine::new();
//! engine.register(Box::new(rapid_wcp::WcpStream::new()));
//! engine.register(Box::new(rapid_hb::FastTrackStream::new()));
//! engine.register(Box::new(rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default())));
//!
//! engine.run(StreamReader::std(file.as_bytes())).expect("well-formed trace");
//! let runs = engine.finish();
//! assert!(runs.iter().all(|run| run.outcome.distinct_pairs() == 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod engine;

pub use detector::{Detector, Outcome};
pub use engine::{DetectorRun, Engine};
// The shared race-drain cursor every streaming core feeds its `on_event`
// return values through.  It lives next to `RaceReport` in `rapid-trace`
// (the detector crates cannot depend on this one), but engine users are its
// main audience, so it is re-exported here.
pub use rapid_trace::RaceDrain;
