//! The parallel multi-trace driver: a worker pool over trace shards, with a
//! pluggable work-queue layer.
//!
//! The paper's detectors are linear-time per trace, and since the binary
//! ingestion layer the cost model is detector-bound — so the remaining
//! scaling axis is *across* traces.  This module makes "a directory of
//! shards" the unit of work: [`run_shards`] pops shard files off a shared
//! work queue onto `std::thread` workers, runs one fresh [`Engine`] (with a
//! fresh detector set) per shard via
//! [`AnyReader::open`](rapid_trace::format::AnyReader::open) — so text,
//! mmap and binary `.rwf` shards mix freely in one invocation — and folds
//! the per-shard [`DetectorRun`]s into one merged report with per-shard and
//! aggregate wall-clock.
//!
//! # The queue layer
//!
//! Shard acquisition and result return are abstracted behind two small
//! traits, so the same per-shard analysis loop ([`drive_queue`]) serves
//! both the in-process pool and the distributed front-end:
//!
//! * [`WorkSource`] hands out [`WorkItem`]s — a shard id plus its input,
//!   which is either a path ([`ShardInput::Path`], the local case) or raw
//!   bytes shipped from elsewhere ([`ShardInput::Bytes`], the remote case).
//! * [`ResultSink`] takes each finished [`ShardRun`] (or its error) back.
//!
//! The local implementation is the atomic-cursor pair
//! [`LocalQueue`]/[`SlotSink`]; the TCP implementation lives in
//! [`dist`](crate::dist), where a coordinator leases shards to remote
//! workers and folds the returned outcomes through [`fold_runs`] — the
//! *same* merge path as `jobs = N`, which is what makes distributed and
//! local runs bit-identical.
//!
//! # Determinism
//!
//! Worker interleaving never leaks into results: per-shard results are
//! slotted by input index and merged *after* all workers join, in input
//! order, so `jobs = 1` and `jobs = N` produce identical merged outcomes
//! (bit-identical race-pair sets and metrics; only the wall-clock numbers
//! vary).  Errors are deterministic too — the earliest failing shard by
//! input order wins, regardless of which worker hit an error first.
//!
//! Outcomes merge by interned **names**; shards logged without real source
//! locations fall back to positional `line<N>` labels that coincide across
//! shards — see the [`outcome`](crate::outcome) module docs for when that
//! deduplication is (and is not) what you want.
//!
//! # Example
//!
//! ```no_run
//! use rapid_engine::driver::{run_shards, DriverConfig};
//! use rapid_engine::Detector;
//!
//! let shards = ["a.std".into(), "b.rwf".into(), "c.std".into()];
//! let report = run_shards(
//!     &shards,
//!     || -> Vec<Box<dyn Detector>> {
//!         vec![Box::new(rapid_wcp::WcpStream::new()), Box::new(rapid_hb::HbStream::new())]
//!     },
//!     &DriverConfig { jobs: 4, ..DriverConfig::default() },
//! )?;
//! println!("{} shards, {} events", report.shards.len(), report.total_events());
//! for run in &report.merged {
//!     println!("{}: {} race pair(s)", run.outcome.detector, run.outcome.distinct_pairs());
//! }
//! # Ok::<(), rapid_engine::driver::DriverError>(())
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use memmap2::Mmap;
use rapid_trace::format::{self, AnyReader, BinReader, MmapReader, TextFormat};

use crate::detector::{Detector, DetectorSpec};
use crate::engine::{DetectorRun, Engine};
use crate::outcome::Metrics;

/// Configuration of one [`run_shards`] invocation.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of worker threads (clamped to at least 1 and at most the
    /// number of shards).
    pub jobs: usize,
    /// Text flavour override; `None` decides per shard by file extension
    /// (binary `.rwf` shards are always auto-detected by magic bytes,
    /// regardless of this setting).
    pub text: Option<TextFormat>,
    /// Ingest text shards through a memory map (`false`: buffered reads).
    pub use_mmap: bool,
}

impl Default for DriverConfig {
    /// One worker per available hardware thread, per-extension text
    /// detection, mmap ingestion.
    fn default() -> Self {
        DriverConfig { jobs: available_jobs(), text: None, use_mmap: true }
    }
}

/// The default worker count: the machine's available parallelism.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(|jobs| jobs.get()).unwrap_or(1)
}

/// One shard's results: the driver's accounting plus the per-detector runs.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// The shard file analyzed.
    pub path: PathBuf,
    /// Which ingestion path served it (`text/mmap`, `binary/mmap`, …).
    pub source: &'static str,
    /// Events in the shard.
    pub events: usize,
    /// Wall-clock for this shard end to end (open + parse + detect + finish).
    pub wall: Duration,
    /// Per-detector outcome and timing, in registration order.
    pub runs: Vec<DetectorRun>,
}

/// Everything [`run_shards`] produces: per-shard results in input order and
/// the merged aggregate.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Worker count actually used.
    pub jobs: usize,
    /// Per-shard results, in *input* order regardless of completion order.
    pub shards: Vec<ShardRun>,
    /// Per-detector aggregates, folded over all shards in input order.
    /// `DetectorRun::time` is summed detector time across workers (it can
    /// exceed [`MultiReport::wall`] when `jobs > 1` — that is the point).
    pub merged: Vec<DetectorRun>,
    /// Aggregate wall-clock of the whole invocation.
    pub wall: Duration,
    /// Job-level scheduling telemetry (`bytes_transferred`, `cache_hits`,
    /// `leases_stolen`) — populated by the distributed coordinator, empty
    /// for local runs.  Kept *outside* the per-detector merged outcomes so
    /// distributed and local `merged` stay `PartialEq`-identical.
    pub scheduling: Metrics,
}

impl MultiReport {
    /// Total events across all shards.
    pub fn total_events(&self) -> usize {
        self.shards.iter().map(|shard| shard.events).sum()
    }

    /// True when any merged detector outcome contains at least one race
    /// pair (the `--fail-on-race` predicate).
    pub fn has_races(&self) -> bool {
        self.merged.iter().any(|run| !run.outcome.races.is_empty())
    }
}

/// A shard that could not be opened or parsed.
#[derive(Debug)]
pub struct DriverError {
    /// The failing shard.
    pub path: PathBuf,
    /// What went wrong (open or parse error, rendered).
    pub message: String,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for DriverError {}

/// Runs `work` over every item of `items` on a pool of `jobs` worker
/// threads, returning results in input order.
///
/// This is the driver's work queue, exposed because other harnesses (the
/// Table 1 reproduction, the bench-smoke workload) fan their own units of
/// work through it: items are claimed atomically off a shared cursor, so an
/// expensive item never blocks the queue behind it, and results are slotted
/// by index — worker interleaving cannot reorder them.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else { break };
                let result = work(item);
                *slots[index].lock().expect("worker poisoned a result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker poisoned a result slot")
                .expect("every slot is filled once all workers join")
        })
        .collect()
}

/// One shard's input: a local file, or raw bytes shipped from elsewhere
/// (the distributed coordinator sends shard contents over the wire, so
/// workers never need a shared filesystem).
#[derive(Debug)]
pub enum ShardInput {
    /// A trace file on the local filesystem, opened via
    /// [`AnyReader::open`] (encoding auto-detected by magic bytes).
    Path(PathBuf),
    /// In-memory trace bytes; binary `.rwf` content is auto-detected by
    /// magic, anything else parses as text in the given flavour.  The
    /// bytes are shared (`Arc`) so the distributed worker's content-
    /// addressed shard cache can hand the same buffer to analysis without
    /// copying or losing its cached entry.
    Bytes {
        /// Text flavour to assume for non-binary content.
        text: TextFormat,
        /// The raw trace bytes.
        bytes: Arc<Vec<u8>>,
    },
}

/// One claimed unit of work: which shard, what to call it, and its input.
#[derive(Debug)]
pub struct WorkItem {
    /// The shard's index in the coordinator's (or caller's) input order —
    /// the slot its result folds into.
    pub id: usize,
    /// Display label (the path for local shards, the coordinator's shard
    /// name for remote ones).
    pub label: String,
    /// Where the shard's bytes come from.
    pub input: ShardInput,
    /// Per-item detector override: a multi-tenant source (the v2
    /// coordinator) prescribes each shard's spec with the lease, because
    /// different jobs run different detector sets over one worker fleet.
    /// `None` uses the worker's own factory (the local pool's case).
    pub spec: Option<DetectorSpec>,
}

/// Where workers claim shards from.
///
/// The local implementation ([`LocalQueue`]) pops paths off an atomic
/// cursor and never blocks; the TCP implementation
/// ([`dist::RemoteQueue`](crate::dist::RemoteQueue)) sends a `LEASE`
/// request and blocks until the coordinator answers with a shard or `DONE`.
pub trait WorkSource {
    /// Claims the next shard to analyze; `Ok(None)` means the queue is
    /// drained and the worker should stop.
    ///
    /// # Errors
    ///
    /// Transport failures (remote sources only).
    fn claim(&self) -> Result<Option<WorkItem>, DriverError>;
}

/// Where finished shard results go.
///
/// The local implementation ([`SlotSink`]) slots results by shard id for
/// the post-join fold; the TCP implementation sends them back to the
/// coordinator as `OUTCOME`/`FAILED` messages.
pub trait ResultSink {
    /// Returns one shard's finished analysis (or its failure).
    ///
    /// # Errors
    ///
    /// Transport failures (remote sinks only).
    fn submit(&self, id: usize, result: Result<ShardRun, DriverError>) -> Result<(), DriverError>;
}

/// What one [`drive_queue`] worker processed, for summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Shards successfully analyzed by this worker.
    pub shards: usize,
    /// Events across those shards.
    pub events: usize,
}

impl QueueStats {
    /// Accumulates another worker's stats.
    pub fn absorb(&mut self, other: QueueStats) {
        self.shards += other.shards;
        self.events += other.events;
    }
}

/// The worker loop shared by every queue implementation: claim a shard,
/// analyze it with a fresh engine, submit the result, repeat until the
/// source drains.
///
/// # Errors
///
/// Propagates source/sink transport errors (local queues never produce
/// them).  Per-shard *analysis* errors are not errors of the loop — they
/// are submitted to the sink, which decides how failures fold.
pub fn drive_queue<F>(
    source: &dyn WorkSource,
    sink: &dyn ResultSink,
    detectors: &F,
    config: &DriverConfig,
) -> Result<QueueStats, DriverError>
where
    F: Fn() -> Vec<Box<dyn Detector>>,
{
    let mut stats = QueueStats::default();
    while let Some(item) = source.claim()? {
        // A leased spec overrides the local factory: the shard runs its
        // *job's* detector set, not whatever this worker was started with.
        let result = match &item.spec {
            Some(spec) => spec
                .build()
                .map_err(|message| DriverError { path: PathBuf::from(&item.label), message })
                .and_then(|set| analyze_shard_with(item.input, &item.label, set, config)),
            None => analyze_shard(item.input, &item.label, detectors, config),
        };
        if let Ok(run) = &result {
            stats.shards += 1;
            stats.events += run.events;
        }
        sink.submit(item.id, result)?;
    }
    Ok(stats)
}

/// Analyzes one shard with a fresh engine: open (any encoding), stream,
/// finish against the reader's own name tables.
pub fn analyze_shard<F>(
    input: ShardInput,
    label: &str,
    detectors: &F,
    config: &DriverConfig,
) -> Result<ShardRun, DriverError>
where
    F: Fn() -> Vec<Box<dyn Detector>>,
{
    analyze_shard_with(input, label, detectors(), config)
}

/// [`analyze_shard`] with the detector set already built — the entry point
/// for callers whose detector configuration arrives per shard (a leased
/// [`WorkItem::spec`]) rather than from a shared factory.
pub fn analyze_shard_with(
    input: ShardInput,
    label: &str,
    detectors: Vec<Box<dyn Detector>>,
    config: &DriverConfig,
) -> Result<ShardRun, DriverError> {
    let start = Instant::now();
    let fail = |message: String| DriverError { path: PathBuf::from(label), message };
    let mut reader = match input {
        ShardInput::Path(path) => {
            let text = config.text.unwrap_or_else(|| TextFormat::from_path(&path));
            AnyReader::open(&path, text, config.use_mmap)
                .map_err(|error| fail(error.to_string()))?
        }
        ShardInput::Bytes { text, bytes } => {
            // A cache-shared buffer is cloned out of its `Arc` only when
            // another holder remains (the cached entry keeps its copy);
            // a uniquely-held buffer moves in without copying.
            let bytes = Arc::try_unwrap(bytes).unwrap_or_else(|shared| (*shared).clone());
            if format::looks_binary(&bytes) {
                AnyReader::Binary(
                    BinReader::from_bytes(bytes).map_err(|error| fail(error.to_string()))?,
                )
            } else {
                AnyReader::Mapped(match text {
                    TextFormat::Std => MmapReader::std_mmap(Mmap::from_vec(bytes)),
                    TextFormat::Csv => MmapReader::csv_mmap(Mmap::from_vec(bytes)),
                })
            }
        }
    };
    let source = reader.source();
    let mut engine = Engine::new();
    for detector in detectors {
        engine.register(detector);
    }
    engine.run(&mut reader).map_err(|error| fail(error.to_string()))?;
    let runs = engine.finish(reader.names());
    Ok(ShardRun {
        path: PathBuf::from(label),
        source,
        events: engine.events_seen(),
        wall: start.elapsed(),
        runs,
    })
}

/// The local [`WorkSource`]: shard paths claimed off a shared atomic
/// cursor, exactly the pre-PR-5 worker-pool behavior.
pub struct LocalQueue<'a> {
    paths: &'a [PathBuf],
    next: AtomicUsize,
}

impl<'a> LocalQueue<'a> {
    /// Creates a queue over `paths`.
    pub fn new(paths: &'a [PathBuf]) -> Self {
        LocalQueue { paths, next: AtomicUsize::new(0) }
    }
}

impl WorkSource for LocalQueue<'_> {
    fn claim(&self) -> Result<Option<WorkItem>, DriverError> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        Ok(self.paths.get(id).map(|path| WorkItem {
            id,
            label: path.display().to_string(),
            input: ShardInput::Path(path.clone()),
            spec: None,
        }))
    }
}

/// The local [`ResultSink`]: results slotted by shard id, so worker
/// interleaving cannot reorder them.
pub struct SlotSink {
    slots: Vec<Mutex<Option<Result<ShardRun, DriverError>>>>,
}

impl SlotSink {
    /// Creates `len` empty slots.
    pub fn new(len: usize) -> Self {
        SlotSink { slots: (0..len).map(|_| Mutex::new(None)).collect() }
    }

    /// Consumes the sink, returning the slotted results in input order.
    ///
    /// # Panics
    ///
    /// If a slot was never filled — impossible once every queue worker has
    /// drained its source and joined.
    pub fn into_results(self) -> Vec<Result<ShardRun, DriverError>> {
        self.slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker poisoned a result slot")
                    .expect("every slot is filled once all workers join")
            })
            .collect()
    }
}

impl ResultSink for SlotSink {
    fn submit(&self, id: usize, result: Result<ShardRun, DriverError>) -> Result<(), DriverError> {
        *self.slots[id].lock().expect("worker poisoned a result slot") = Some(result);
        Ok(())
    }
}

/// Folds per-shard runs into per-detector aggregates, in the order given —
/// the one merge path shared by the in-process pool and the distributed
/// coordinator, so `jobs = N` and remote workers produce identical merges.
pub fn fold_runs(shards: &[ShardRun]) -> Vec<DetectorRun> {
    let mut merged: Vec<DetectorRun> = Vec::new();
    for shard in shards {
        if merged.is_empty() {
            merged = shard.runs.clone();
        } else {
            for (aggregate, run) in merged.iter_mut().zip(&shard.runs) {
                aggregate.merge(run.clone());
            }
        }
    }
    merged
}

/// Expands any directory among `inputs` into the trace files it contains —
/// `.rwf`, `.csv` and `.std`, ASCII case-insensitive, non-recursive, in
/// sorted (byte-lexicographic) name order so shard order is deterministic
/// regardless of filesystem enumeration.  Plain file paths pass through
/// unchanged, in place.  Used by `engine multi` and `engine serve`, which
/// accept shard *directories* (no more shell-glob argv limits on large
/// shard dirs).
///
/// # Errors
///
/// A directory that cannot be read, or one containing **no** matching
/// trace files (an empty expansion is almost always a typo'd path, not an
/// empty workload).
pub fn expand_shard_paths(inputs: &[PathBuf]) -> Result<Vec<PathBuf>, DriverError> {
    let matches = |path: &Path| {
        path.extension().and_then(|extension| extension.to_str()).is_some_and(|extension| {
            ["rwf", "csv", "std"].iter().any(|known| extension.eq_ignore_ascii_case(known))
        })
    };
    let mut out = Vec::new();
    for input in inputs {
        if !input.is_dir() {
            out.push(input.clone());
            continue;
        }
        let entries = std::fs::read_dir(input)
            .map_err(|error| DriverError { path: input.clone(), message: error.to_string() })?;
        let mut found: Vec<PathBuf> = entries
            .filter_map(|entry| entry.ok().map(|entry| entry.path()))
            .filter(|path| path.is_file() && matches(path))
            .collect();
        if found.is_empty() {
            return Err(DriverError {
                path: input.clone(),
                message: "directory contains no .rwf/.csv/.std trace files".to_owned(),
            });
        }
        found.sort();
        out.extend(found);
    }
    Ok(out)
}

/// Analyzes every shard in `paths` on a worker pool and merges the results.
///
/// `detectors` is called once per shard, on the claiming worker's thread, to
/// build that shard's fresh detector set — detector state is never shared
/// between shards, which is what makes the per-shard analyses independent
/// and the fold exact.  All shards must register the same detector
/// configuration (same factory ⇒ holds by construction).
///
/// See the [module docs](self) for the determinism guarantees.
///
/// # Errors
///
/// Returns the error of the earliest failing shard in input order; shards
/// already analyzed are discarded.
pub fn run_shards<F>(
    paths: &[PathBuf],
    detectors: F,
    config: &DriverConfig,
) -> Result<MultiReport, DriverError>
where
    F: Fn() -> Vec<Box<dyn Detector>> + Sync,
{
    let start = Instant::now();
    let jobs = config.jobs.clamp(1, paths.len().max(1));
    let queue = LocalQueue::new(paths);
    let sink = SlotSink::new(paths.len());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Local sources and sinks are infallible; the loop can only
                // end by draining the queue.
                drive_queue(&queue, &sink, &detectors, config)
                    .expect("local queue transport cannot fail");
            });
        }
    });

    let mut shards = Vec::with_capacity(paths.len());
    for result in sink.into_results() {
        shards.push(result?);
    }
    let merged = fold_runs(&shards);
    Ok(MultiReport { jobs, shards, merged, wall: start.elapsed(), scheduling: Metrics::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_trace::format;
    use rapid_trace::TraceBuilder;

    fn racy_trace(variable: &str, location_a: &str, location_b: &str) -> rapid_trace::Trace {
        let mut builder = TraceBuilder::new();
        let t1 = builder.thread("t1");
        let t2 = builder.thread("t2");
        let var = builder.variable(variable);
        builder.at(location_a);
        builder.write(t1, var);
        builder.at(location_b);
        builder.write(t2, var);
        builder.finish()
    }

    fn detectors() -> Vec<Box<dyn Detector>> {
        vec![Box::new(rapid_wcp::WcpStream::new()), Box::new(rapid_hb::HbStream::new())]
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rapid-driver-{}-{name}", std::process::id()))
    }

    #[test]
    fn mixed_encodings_merge_identically_across_job_counts() {
        // Two distinct racy shards, one as std text and one as binary .rwf:
        // the merged outcome is the union of both shards' race pairs, and is
        // identical for every worker count.
        let first = racy_trace("x", "A:1", "A:2");
        let second = racy_trace("y", "B:1", "B:2");
        let std_path = temp_path("mixed.std");
        let rwf_path = temp_path("mixed.rwf");
        std::fs::write(&std_path, format::write_std(&first)).expect("std shard writes");
        std::fs::write(&rwf_path, format::to_rwf_bytes(&second)).expect("rwf shard writes");
        let paths = vec![std_path.clone(), rwf_path.clone()];

        let reports: Vec<MultiReport> = [1usize, 2, 4]
            .iter()
            .map(|&jobs| {
                run_shards(&paths, detectors, &DriverConfig { jobs, ..DriverConfig::default() })
                    .expect("both shards parse")
            })
            .collect();
        std::fs::remove_file(&std_path).ok();
        std::fs::remove_file(&rwf_path).ok();

        for report in &reports {
            assert_eq!(report.shards.len(), 2);
            assert_eq!(report.shards[0].path, paths[0], "shards stay in input order");
            assert_eq!(report.shards[0].source, "text/mmap");
            assert_eq!(report.shards[1].source, "binary/mmap");
            assert_eq!(report.total_events(), first.len() + second.len());
            assert!(report.has_races());
            for run in &report.merged {
                assert_eq!(run.outcome.shards, 2);
                assert_eq!(run.outcome.distinct_pairs(), 2, "{}", run.outcome.detector);
            }
        }
        for report in &reports[1..] {
            for (left, right) in reports[0].merged.iter().zip(&report.merged) {
                assert_eq!(left.outcome, right.outcome, "jobs=N changed the merged outcome");
            }
        }
    }

    #[test]
    fn unlocated_shards_merge_positionally() {
        // Pins the documented caveat of name-keyed merging: shards logged
        // *without* locations get per-shard positional `line<N>` labels, so
        // two unrelated location-less shards with races at the same event
        // indices merge into ONE pair (race events summed).  Shards with
        // real locations keep their pairs separate (the mixed-encodings
        // test above).  If this assertion starts failing because synthetic
        // labels became shard-qualified, update the outcome module docs.
        let shard = temp_path("unlocated-a.std");
        let other = temp_path("unlocated-b.std");
        std::fs::write(&shard, "t1|w(x)\nt2|w(x)\n").unwrap();
        std::fs::write(&other, "t1|w(x)\nt2|w(x)\n").unwrap();
        let report = run_shards(
            &[shard.clone(), other.clone()],
            detectors,
            &DriverConfig { jobs: 2, ..DriverConfig::default() },
        )
        .expect("both shards parse");
        std::fs::remove_file(&shard).ok();
        std::fs::remove_file(&other).ok();
        for run in &report.merged {
            assert_eq!(run.outcome.distinct_pairs(), 1, "{}", run.outcome.detector);
            assert_eq!(run.outcome.race_events(), 2, "{}", run.outcome.detector);
            let pair = run.outcome.races.keys().next().expect("one pair");
            assert_eq!(
                (pair.first_location.as_str(), pair.second_location.as_str()),
                ("line1", "line2")
            );
        }
    }

    #[test]
    fn earliest_failing_shard_wins_deterministically() {
        let good = temp_path("good.std");
        let bad = temp_path("bad.std");
        std::fs::write(&good, format::write_std(&racy_trace("x", "A:1", "A:2"))).unwrap();
        std::fs::write(&bad, "t1|nonsense|A:1\n").unwrap();

        // The bad shard sits first: every job count reports it.
        let paths = vec![bad.clone(), good.clone()];
        for jobs in [1, 3] {
            let error =
                run_shards(&paths, detectors, &DriverConfig { jobs, ..DriverConfig::default() })
                    .expect_err("malformed shard fails the run");
            assert_eq!(error.path, bad);
        }
        // A missing shard also surfaces as a driver error, not a panic.
        let missing = temp_path("missing.std");
        let error = run_shards(
            std::slice::from_ref(&missing),
            detectors,
            &DriverConfig { jobs: 2, ..DriverConfig::default() },
        )
        .expect_err("missing shard fails the run");
        assert_eq!(error.path, missing);
        assert!(!error.to_string().is_empty());
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn expand_shard_paths_walks_directories_sorted() {
        let dir = std::env::temp_dir().join(format!("rapid-expand-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Unsorted creation order, mixed case, one non-trace file, one
        // nested directory (not recursed into).
        for name in ["b.std", "a.RWF", "c.csv", "notes.txt"] {
            std::fs::write(dir.join(name), "").unwrap();
        }
        std::fs::create_dir_all(dir.join("nested")).unwrap();
        std::fs::write(dir.join("nested").join("d.std"), "").unwrap();

        let direct = PathBuf::from("direct.std");
        let expanded = expand_shard_paths(&[direct.clone(), dir.clone()]).unwrap();
        assert_eq!(
            expanded,
            vec![direct, dir.join("a.RWF"), dir.join("b.std"), dir.join("c.csv")],
            "files pass through, directories expand sorted, non-trace files are skipped"
        );

        // A directory with no trace files is an error, not an empty set.
        let empty = dir.join("nested2");
        std::fs::create_dir_all(&empty).unwrap();
        let error = expand_shard_paths(std::slice::from_ref(&empty)).unwrap_err();
        assert_eq!(error.path, empty);
        assert!(error.message.contains("no .rwf/.csv/.std"), "{}", error.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_shard_reads_bytes_in_both_encodings() {
        // The remote path: shard bytes arrive over the wire, never touching
        // the filesystem.  Binary is detected by magic, text by flavour.
        let trace = racy_trace("x", "A:1", "A:2");
        let cases: [(Vec<u8>, &str); 2] = [
            (format::write_std(&trace).into_bytes(), "text/mmap"),
            (format::to_rwf_bytes(&trace), "binary/mmap"),
        ];
        for (bytes, expected_source) in cases {
            let run = analyze_shard(
                ShardInput::Bytes {
                    text: rapid_trace::format::TextFormat::Std,
                    bytes: Arc::new(bytes),
                },
                "remote-shard",
                &detectors,
                &DriverConfig::default(),
            )
            .expect("bytes analyze");
            assert_eq!(run.source, expected_source);
            assert_eq!(run.events, trace.len());
            assert_eq!(run.path, PathBuf::from("remote-shard"));
            for detector_run in &run.runs {
                assert_eq!(detector_run.outcome.distinct_pairs(), 1);
            }
        }
        // Malformed bytes surface as a shard error carrying the label.
        let error = analyze_shard(
            ShardInput::Bytes {
                text: rapid_trace::format::TextFormat::Std,
                bytes: Arc::new(b"t1|nonsense|A:1\n".to_vec()),
            },
            "bad-shard",
            &detectors,
            &DriverConfig::default(),
        )
        .unwrap_err();
        assert_eq!(error.path, PathBuf::from("bad-shard"));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..32).collect();
        let doubled = parallel_map(&items, 4, |&n| n * 2);
        assert_eq!(doubled, (0..32).map(|n| n * 2).collect::<Vec<_>>());
        // Degenerate cases: zero items, more jobs than items.
        assert!(parallel_map(&[] as &[usize], 4, |&n| n).is_empty());
        assert_eq!(parallel_map(&[7usize], 16, |&n| n + 1), vec![8]);
    }
}
