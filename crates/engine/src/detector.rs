//! The unified [`Detector`] trait, its implementations, and the
//! [`DetectorSpec`] configuration that names a detector set.

use rapid_trace::{Event, NameResolver, Race};

use crate::outcome::{Metrics, Outcome};

/// A push-based race detector: one event in, zero or more races out.
///
/// All detectors in the workspace implement this trait through their
/// streaming cores ([`HbStream`](rapid_hb::HbStream),
/// [`FastTrackStream`](rapid_hb::FastTrackStream),
/// [`WcpStream`](rapid_wcp::WcpStream), [`McmStream`](rapid_mcm::McmStream)),
/// so one pass over an event stream can drive any combination of analyses —
/// that is what [`Engine`](crate::Engine) does.
///
/// Contract: events are fed in trace order; [`Detector::finish`] is called
/// exactly once, after the last event, with a
/// [`NameResolver`](rapid_trace::NameResolver) for the ids the events used —
/// the detector resolves its raw per-trace race report into the name-keyed,
/// mergeable [`Outcome`] at that boundary.  Windowed detectors may buffer
/// and report races late (at window boundaries or at `finish`), so per-event
/// return values are a *progress* signal, not a completeness guarantee — the
/// final [`Outcome::races`] is.
pub trait Detector {
    /// The detector's display name.
    fn name(&self) -> String;

    /// Processes the next event of the stream, returning the races flagged
    /// at (or unlocked by) it.
    fn on_event(&mut self, event: &Event) -> Vec<Race>;

    /// Ends the stream and returns the accumulated outcome, with race pairs
    /// resolved to names through `names`.
    fn finish(&mut self, names: &dyn NameResolver) -> Outcome;
}

/// A named detector configuration: which detectors to build, plus the MCM
/// window parameters.  This is the unit the `engine` CLI parses from
/// `--detectors`/`--window`/`--timeout` — and the unit the distributed
/// coordinator ships to workers in its `WELCOME` message, so every worker
/// in a fleet builds byte-identical detector sets without being configured
/// by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorSpec {
    /// Detector names, in registration order (`wcp`, `hb`, `fasttrack`/`ft`,
    /// `mcm`).
    pub detectors: Vec<String>,
    /// MCM window size (ignored unless `mcm` is listed).
    pub window: usize,
    /// MCM solver timeout in seconds (ignored unless `mcm` is listed).
    pub timeout_secs: u64,
}

impl Default for DetectorSpec {
    /// The CLI default: WCP + HB, MCM parameters at their defaults.
    fn default() -> Self {
        let mcm = rapid_mcm::McmConfig::default();
        DetectorSpec {
            detectors: vec!["wcp".to_owned(), "hb".to_owned()],
            window: mcm.window_size,
            timeout_secs: mcm.solver_timeout_secs,
        }
    }
}

impl DetectorSpec {
    /// Builds one fresh detector set for stream contexts (threads are
    /// discovered from the event stream).
    ///
    /// # Errors
    ///
    /// An unknown detector name.
    pub fn build(&self) -> Result<Vec<Box<dyn Detector>>, String> {
        self.build_with_threads(0)
    }

    /// Builds one fresh detector set, pre-registering `threads` known
    /// threads (the batch path passes the trace's thread count so the
    /// streaming cores reproduce the library batch entry points exactly).
    ///
    /// # Errors
    ///
    /// An unknown detector name.
    pub fn build_with_threads(&self, threads: usize) -> Result<Vec<Box<dyn Detector>>, String> {
        self.detectors
            .iter()
            .map(|name| -> Result<Box<dyn Detector>, String> {
                Ok(match name.as_str() {
                    "wcp" => Box::new(rapid_wcp::WcpStream::with_threads(threads)),
                    "hb" => Box::new(rapid_hb::HbStream::with_threads(threads)),
                    "fasttrack" | "ft" => {
                        Box::new(rapid_hb::FastTrackStream::with_threads(threads))
                    }
                    "mcm" => Box::new(rapid_mcm::McmStream::new(rapid_mcm::McmConfig::new(
                        self.window,
                        self.timeout_secs,
                    ))),
                    other => {
                        return Err(format!(
                            "unknown detector `{other}` (expected wcp, hb, fasttrack or mcm)"
                        ))
                    }
                })
            })
            .collect()
    }

    /// Checks the spec without keeping the built detectors — call once up
    /// front so worker factories cannot fail mid-run.
    ///
    /// # Errors
    ///
    /// An unknown detector name.
    pub fn validate(&self) -> Result<(), String> {
        self.build().map(drop)
    }
}

impl Detector for rapid_hb::HbStream {
    fn name(&self) -> String {
        "hb".to_owned()
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_hb::HbStream::on_event(self, event)
    }

    fn finish(&mut self, names: &dyn NameResolver) -> Outcome {
        let stats = self.stats();
        let report = rapid_hb::HbStream::finish(self);
        let mut metrics = Metrics::new();
        metrics.record_sum("race_events", stats.race_events as f64);
        Outcome::from_report(Detector::name(self), stats.events, &report, metrics, names)
    }
}

impl Detector for rapid_hb::FastTrackStream {
    fn name(&self) -> String {
        "hb-fasttrack".to_owned()
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_hb::FastTrackStream::on_event(self, event)
    }

    fn finish(&mut self, names: &dyn NameResolver) -> Outcome {
        let stats = self.stats();
        let report = rapid_hb::FastTrackStream::finish(self);
        let mut metrics = Metrics::new();
        metrics.record_sum("race_events", stats.race_events as f64);
        Outcome::from_report(Detector::name(self), stats.events, &report, metrics, names)
    }
}

impl Detector for rapid_wcp::WcpStream {
    fn name(&self) -> String {
        "wcp".to_owned()
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_wcp::WcpStream::on_event(self, event)
    }

    fn finish(&mut self, names: &dyn NameResolver) -> Outcome {
        let outcome = rapid_wcp::WcpStream::finish(self);
        let stats = &outcome.stats;
        let mut metrics = Metrics::new();
        metrics.record_max("max_queue_percentage", stats.max_queue_percentage());
        metrics.record_max("max_queue_entries", stats.max_queue_entries as f64);
        metrics.record_max("threads", stats.threads as f64);
        metrics.record_max("locks", stats.locks as f64);
        metrics.record_sum("queue_enqueues", stats.queue_enqueues as f64);
        metrics.record_sum("clock_joins", stats.clock_joins as f64);
        metrics.record_sum("race_events", stats.race_events as f64);
        metrics.record_sum("epoch_fast_reads", stats.epoch_fast_reads as f64);
        metrics.record_sum("epoch_fast_writes", stats.epoch_fast_writes as f64);
        metrics.record_sum("pool_taken", stats.pool_taken as f64);
        metrics.record_sum("pool_recycled", stats.pool_recycled as f64);
        Outcome::from_report(Detector::name(self), stats.events, &outcome.report, metrics, names)
    }
}

impl Detector for rapid_mcm::McmStream {
    fn name(&self) -> String {
        format!("mcm({})", self.config().label())
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_mcm::McmStream::on_event(self, event)
    }

    fn finish(&mut self, names: &dyn NameResolver) -> Outcome {
        let name = Detector::name(self);
        let events = self.events_seen();
        let (report, stats) = rapid_mcm::McmStream::finish(self);
        let mut metrics = Metrics::new();
        metrics.record_sum("windows", stats.windows as f64);
        metrics.record_sum("candidate_pairs", stats.candidate_pairs as f64);
        metrics.record_sum("witnessed_pairs", stats.witnessed_pairs as f64);
        metrics.record_sum("budget_exhausted_pairs", stats.budget_exhausted_pairs as f64);
        metrics.record_sum("race_events", report.len() as f64);
        Outcome::from_report(name, events, &report, metrics, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_trace::TraceBuilder;

    /// The per-crate typed counters (`WcpStats::merge`, `HbStats::merge`,
    /// `McmStats::merge`) must stay in lockstep with the engine's
    /// [`Metrics`] aggregation rules, since both describe the same fields.
    /// This test locks the correspondence for every shared field: merging
    /// two runs' stats in the detector crate and re-deriving metrics equals
    /// merging the two runs' [`Metrics`] directly.  (The one intentional
    /// exception is WCP's *derived ratio* `max_queue_percentage`: `Metrics`
    /// merges it as worst-shard Max, while a merged `WcpStats` would
    /// recompute `max_entries / summed_events` — so it is excluded here and
    /// documented on both sides.)
    #[test]
    fn typed_stats_merges_agree_with_metric_aggregation() {
        let trace_of = |scripts: &[(&str, &str)]| {
            let mut b = TraceBuilder::new();
            let t1 = b.thread("t1");
            let t2 = b.thread("t2");
            let l = b.lock("l");
            for &(thread, var) in scripts {
                let thread = if thread == "t1" { t1 } else { t2 };
                let var = b.variable(var);
                b.acquire(thread, l);
                b.write(thread, var);
                b.release(thread, l);
                b.write(thread, var);
            }
            b.finish()
        };
        let first = trace_of(&[("t1", "x"), ("t2", "x"), ("t1", "y")]);
        let second = trace_of(&[("t2", "z"), ("t1", "z")]);

        // WCP: raw counters align field by field.
        let wcp_stats = |trace: &rapid_trace::Trace| {
            let mut stream = rapid_wcp::WcpStream::new();
            for event in trace.events() {
                stream.on_event(event);
            }
            stream.finish().stats
        };
        let wcp_metrics = |trace: &rapid_trace::Trace| {
            let mut stream = rapid_wcp::WcpStream::new();
            for event in trace.events() {
                Detector::on_event(&mut stream, event);
            }
            Detector::finish(&mut stream, trace).metrics
        };
        let mut merged_stats = wcp_stats(&first);
        merged_stats.merge(&wcp_stats(&second));
        let mut merged_metrics = wcp_metrics(&first);
        merged_metrics.merge(&wcp_metrics(&second));
        for (name, value) in [
            ("max_queue_entries", merged_stats.max_queue_entries as f64),
            ("threads", merged_stats.threads as f64),
            ("locks", merged_stats.locks as f64),
            ("queue_enqueues", merged_stats.queue_enqueues as f64),
            ("clock_joins", merged_stats.clock_joins as f64),
            ("race_events", merged_stats.race_events as f64),
            ("epoch_fast_reads", merged_stats.epoch_fast_reads as f64),
            ("epoch_fast_writes", merged_stats.epoch_fast_writes as f64),
            ("pool_taken", merged_stats.pool_taken as f64),
            ("pool_recycled", merged_stats.pool_recycled as f64),
        ] {
            assert_eq!(merged_metrics.get(name), Some(value), "wcp {name} drifted");
        }

        // HB: both fields align.
        let hb_run = |trace: &rapid_trace::Trace| {
            let mut stream = rapid_hb::HbStream::new();
            for event in trace.events() {
                stream.on_event(event);
            }
            stream.stats()
        };
        let mut hb_merged = hb_run(&first);
        hb_merged.merge(&hb_run(&second));
        assert_eq!(hb_merged.events, first.len() + second.len());
        let mut hb_metrics = {
            let mut stream = rapid_hb::HbStream::new();
            for event in first.events() {
                Detector::on_event(&mut stream, event);
            }
            Detector::finish(&mut stream, &first).metrics
        };
        hb_metrics.merge(&{
            let mut stream = rapid_hb::HbStream::new();
            for event in second.events() {
                Detector::on_event(&mut stream, event);
            }
            Detector::finish(&mut stream, &second).metrics
        });
        assert_eq!(hb_metrics.get("race_events"), Some(hb_merged.race_events as f64));

        // MCM: every field sums on both sides.
        let mcm_run = |trace: &rapid_trace::Trace| {
            let mut stream = rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default());
            for event in trace.events() {
                stream.on_event(event);
            }
            stream.finish().1
        };
        let mut mcm_merged = mcm_run(&first);
        mcm_merged.merge(&mcm_run(&second));
        let mut mcm_metrics = {
            let mut stream = rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default());
            for event in first.events() {
                Detector::on_event(&mut stream, event);
            }
            Detector::finish(&mut stream, &first).metrics
        };
        mcm_metrics.merge(&{
            let mut stream = rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default());
            for event in second.events() {
                Detector::on_event(&mut stream, event);
            }
            Detector::finish(&mut stream, &second).metrics
        });
        for (name, value) in [
            ("windows", mcm_merged.windows as f64),
            ("candidate_pairs", mcm_merged.candidate_pairs as f64),
            ("witnessed_pairs", mcm_merged.witnessed_pairs as f64),
            ("budget_exhausted_pairs", mcm_merged.budget_exhausted_pairs as f64),
        ] {
            assert_eq!(mcm_metrics.get(name), Some(value), "mcm {name} drifted");
        }
    }

    #[test]
    fn trait_objects_cover_all_detectors() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let trace = b.finish();

        let mut detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(rapid_hb::HbStream::new()),
            Box::new(rapid_hb::FastTrackStream::new()),
            Box::new(rapid_wcp::WcpStream::new()),
            Box::new(rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default())),
        ];
        for detector in &mut detectors {
            for event in trace.events() {
                detector.on_event(event);
            }
            let outcome = detector.finish(&trace);
            assert_eq!(outcome.distinct_pairs(), 1, "{}", outcome.detector);
            assert_eq!(outcome.shards, 1);
            assert_eq!(outcome.metric("race_events"), Some(1.0), "{}", outcome.detector);
            assert!(!outcome.telemetry().is_empty());
            let pair = outcome.races.keys().next().expect("one race pair");
            assert_eq!(pair.variable, "x", "{}", outcome.detector);
        }
    }
}
