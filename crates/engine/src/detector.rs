//! The unified [`Detector`] trait and its implementations.

use rapid_trace::{Event, Race, RaceReport};

/// What a detector hands back when its stream ends.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The detector's display name (e.g. `wcp`, `mcm(w=1K,t=60s)`).
    pub detector: String,
    /// Number of events the detector processed.
    pub events: usize,
    /// Every race the detector flagged, in detection order.
    pub report: RaceReport,
    /// A one-line, detector-specific telemetry summary.
    pub summary: String,
    /// Structured telemetry as `(metric, value)` pairs, for harnesses that
    /// need numbers rather than prose (e.g. Table 1's queue occupancy).
    pub metrics: Vec<(&'static str, f64)>,
}

impl Outcome {
    /// Number of distinct racy location pairs — the paper's "#Races".
    pub fn distinct_pairs(&self) -> usize {
        self.report.distinct_pairs()
    }

    /// Looks up a structured telemetry value by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(metric, _)| *metric == name).map(|(_, value)| *value)
    }
}

/// A push-based race detector: one event in, zero or more races out.
///
/// All detectors in the workspace implement this trait through their
/// streaming cores ([`HbStream`](rapid_hb::HbStream),
/// [`FastTrackStream`](rapid_hb::FastTrackStream),
/// [`WcpStream`](rapid_wcp::WcpStream), [`McmStream`](rapid_mcm::McmStream)),
/// so one pass over an event stream can drive any combination of analyses —
/// that is what [`Engine`](crate::Engine) does.
///
/// Contract: events are fed in trace order; [`Detector::finish`] is called
/// exactly once, after the last event, and returns everything accumulated.
/// Windowed detectors may buffer and report races late (at window
/// boundaries or at `finish`), so per-event return values are a *progress*
/// signal, not a completeness guarantee — the final [`Outcome::report`] is.
pub trait Detector {
    /// The detector's display name.
    fn name(&self) -> String;

    /// Processes the next event of the stream, returning the races flagged
    /// at (or unlocked by) it.
    fn on_event(&mut self, event: &Event) -> Vec<Race>;

    /// Ends the stream and returns the accumulated outcome.
    fn finish(&mut self) -> Outcome;
}

impl Detector for rapid_hb::HbStream {
    fn name(&self) -> String {
        "hb".to_owned()
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_hb::HbStream::on_event(self, event)
    }

    fn finish(&mut self) -> Outcome {
        let events = self.events_seen();
        let report = rapid_hb::HbStream::finish(self);
        Outcome {
            detector: Detector::name(self),
            events,
            summary: format!("{} race event(s) (Djit+ vector clocks)", report.len()),
            metrics: vec![("race_events", report.len() as f64)],
            report,
        }
    }
}

impl Detector for rapid_hb::FastTrackStream {
    fn name(&self) -> String {
        "hb-fasttrack".to_owned()
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_hb::FastTrackStream::on_event(self, event)
    }

    fn finish(&mut self) -> Outcome {
        let events = self.events_seen();
        let report = rapid_hb::FastTrackStream::finish(self);
        Outcome {
            detector: Detector::name(self),
            events,
            summary: format!("{} race event(s) (epoch-optimized)", report.len()),
            metrics: vec![("race_events", report.len() as f64)],
            report,
        }
    }
}

impl Detector for rapid_wcp::WcpStream {
    fn name(&self) -> String {
        "wcp".to_owned()
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_wcp::WcpStream::on_event(self, event)
    }

    fn finish(&mut self) -> Outcome {
        let outcome = rapid_wcp::WcpStream::finish(self);
        Outcome {
            detector: Detector::name(self),
            events: outcome.stats.events,
            summary: outcome.stats.to_string(),
            metrics: vec![
                ("max_queue_percentage", outcome.stats.max_queue_percentage()),
                ("max_queue_entries", outcome.stats.max_queue_entries as f64),
                ("queue_enqueues", outcome.stats.queue_enqueues as f64),
                ("clock_joins", outcome.stats.clock_joins as f64),
                ("race_events", outcome.stats.race_events as f64),
            ],
            report: outcome.report,
        }
    }
}

impl Detector for rapid_mcm::McmStream {
    fn name(&self) -> String {
        format!("mcm({})", self.config().label())
    }

    fn on_event(&mut self, event: &Event) -> Vec<Race> {
        rapid_mcm::McmStream::on_event(self, event)
    }

    fn finish(&mut self) -> Outcome {
        let name = Detector::name(self);
        let events = self.events_seen();
        let (report, stats) = rapid_mcm::McmStream::finish(self);
        Outcome {
            detector: name,
            events,
            summary: stats.to_string(),
            metrics: vec![
                ("windows", stats.windows as f64),
                ("candidate_pairs", stats.candidate_pairs as f64),
                ("witnessed_pairs", stats.witnessed_pairs as f64),
                ("budget_exhausted_pairs", stats.budget_exhausted_pairs as f64),
            ],
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_trace::TraceBuilder;

    #[test]
    fn trait_objects_cover_all_detectors() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let trace = b.finish();

        let mut detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(rapid_hb::HbStream::new()),
            Box::new(rapid_hb::FastTrackStream::new()),
            Box::new(rapid_wcp::WcpStream::new()),
            Box::new(rapid_mcm::McmStream::new(rapid_mcm::McmConfig::default())),
        ];
        for detector in &mut detectors {
            for event in trace.events() {
                detector.on_event(event);
            }
            let outcome = detector.finish();
            assert_eq!(outcome.distinct_pairs(), 1, "{}", outcome.detector);
            assert!(!outcome.summary.is_empty());
        }
    }
}
