//! The mergeable [`Outcome`] algebra: name-keyed race pairs plus typed,
//! aggregatable metrics.
//!
//! # Merge semantics
//!
//! An [`Outcome`] is the unit of result reporting for one detector over one
//! trace *or* over any number of merged traces — the driver in
//! [`crate::driver`] folds per-shard outcomes into one aggregate with
//! [`Outcome::merge`].  For that fold to be meaningful across traces, nothing
//! in an outcome may reference per-trace ids (which are dense and
//! trace-local): race pairs are keyed by **interned names** — the variable
//! and the two program locations, resolved through a
//! [`NameResolver`](rapid_trace::NameResolver) when the detector finishes —
//! and every metric carries its own aggregation rule.  Field by field:
//!
//! | field | merge rule |
//! |------------------------|-----------------------------------------------|
//! | `events`, `shards` | sum |
//! | `races` (pair → stats) | set union; colliding pairs merge their stats (race events sum, min distance min) |
//! | `metrics` | per-metric: [`Aggregation::Sum`] adds, [`Aggregation::Max`] takes the maximum |
//!
//! The fold is commutative up to floating-point rounding in `Sum` metrics;
//! the driver merges in deterministic (input) order so repeated runs are
//! bit-identical regardless of worker interleaving.
//!
//! # Name-keyed merging requires meaningful names
//!
//! Keying by names makes outcomes comparable across traces *exactly to the
//! extent the names identify program locations*.  Two label families are
//! only positional: events logged **without** a location get a synthetic
//! per-trace `line<N>` label (1-based event index; see `docs/FORMAT.md`
//! and [`TraceBuilder`](rapid_trace::TraceBuilder)), and ids missing from
//! the resolver fall back to their per-trace display form.  Such labels
//! coincide *positionally* across shards: merging shards of the **same
//! program** then deduplicates as intended, but shards of unrelated,
//! unlabeled programs will conflate races that happen to share an event
//! index (e.g. both keying as `x: line1 <-> line2`).  Log real source
//! locations — or distinct location names per shard — when merged counts
//! across heterogeneous programs must stay separate.  This semantics is
//! pinned by `driver::tests::unlocated_shards_merge_positionally`.

use std::collections::{btree_map, BTreeMap, BTreeSet};
use std::fmt;

use rapid_trace::{NameResolver, RaceReport};

pub mod wire;

/// A race pair keyed by interned names, comparable across traces and shards.
///
/// The location pair is normalized so `first_location <= second_location`
/// **lexicographically by name** (not by per-trace id), making the key —
/// and any `BTreeMap` ordered by it — independent of interning order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RacePair {
    /// Name of the variable both accesses touch.
    pub variable: String,
    /// The lexicographically smaller program-location name.
    pub first_location: String,
    /// The lexicographically larger program-location name.
    pub second_location: String,
}

impl RacePair {
    /// Builds a pair from unordered location names, normalizing the order.
    pub fn new(
        variable: impl Into<String>,
        location_a: impl Into<String>,
        location_b: impl Into<String>,
    ) -> Self {
        let (a, b) = (location_a.into(), location_b.into());
        let (first_location, second_location) = if a <= b { (a, b) } else { (b, a) };
        RacePair { variable: variable.into(), first_location, second_location }
    }
}

impl fmt::Display for RacePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} <-> {}", self.variable, self.first_location, self.second_location)
    }
}

/// Per-pair aggregates carried through merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairStats {
    /// Number of race events reported for this pair (sums under merge).
    pub race_events: usize,
    /// Minimum event separation among the pair's races, per shard —
    /// distances are trace-local, so the merge keeps the minimum.
    pub min_distance: usize,
}

impl PairStats {
    /// Folds another pair's stats into this one.
    pub fn merge(&mut self, other: &PairStats) {
        self.race_events += other.race_events;
        self.min_distance = self.min_distance.min(other.min_distance);
    }
}

/// How a metric combines across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Values add up (counters: race events, clock joins, windows, …).
    Sum,
    /// The largest value wins (peaks: queue occupancy, thread count, …).
    Max,
}

/// One typed telemetry value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric {
    /// The merge rule for this metric.
    pub aggregation: Aggregation,
    /// The current value.
    pub value: f64,
}

/// Typed, aggregatable telemetry counters, keyed by metric name.
///
/// Replaces the former `Vec<(&str, f64)>`: every entry now knows how it
/// merges ([`Aggregation::Sum`] or [`Aggregation::Max`]), so whole-suite
/// aggregates keep their meaning — peaks stay peaks, counters stay counters.
/// Ratios (e.g. WCP's `max_queue_percentage`) are recorded as `Max`: the
/// merged value reports the *worst shard*, not a meaningless averaged ratio.
///
/// Names are owned `String`s (not `&'static str`): metrics cross process
/// boundaries through the [`wire`] codec, and a decoded outcome must carry
/// whatever names the *sending* build recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: BTreeMap<String, Metric>,
}

impl Metrics {
    /// Creates an empty metric set.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a summing counter (overwrites any previous entry).
    pub fn record_sum(&mut self, name: impl Into<String>, value: f64) {
        self.record(name, Metric { aggregation: Aggregation::Sum, value });
    }

    /// Records a peak value (overwrites any previous entry).
    pub fn record_max(&mut self, name: impl Into<String>, value: f64) {
        self.record(name, Metric { aggregation: Aggregation::Max, value });
    }

    /// Records a metric with an explicit aggregation rule (overwrites any
    /// previous entry) — the entry point the wire decoder uses.
    pub fn record(&mut self, name: impl Into<String>, metric: Metric) {
        self.entries.insert(name.into(), metric);
    }

    /// Looks up a metric's value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.get(name).map(|metric| metric.value)
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when no metric is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(name, metric)| (name.as_str(), metric))
    }

    /// Folds `other` into `self`, field by field: `Sum` entries add, `Max`
    /// entries keep the maximum, entries absent on one side carry over.
    /// A metric must be recorded with the same aggregation on both sides
    /// (debug-asserted; release builds keep `self`'s rule).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, metric) in &other.entries {
            match self.entries.entry(name.clone()) {
                btree_map::Entry::Vacant(slot) => {
                    slot.insert(*metric);
                }
                btree_map::Entry::Occupied(mut slot) => {
                    let entry = slot.get_mut();
                    debug_assert_eq!(
                        entry.aggregation, metric.aggregation,
                        "metric {name} merged with conflicting aggregations"
                    );
                    entry.value = match entry.aggregation {
                        Aggregation::Sum => entry.value + metric.value,
                        Aggregation::Max => entry.value.max(metric.value),
                    };
                }
            }
        }
    }
}

impl fmt::Display for Metrics {
    /// Renders `name=value` pairs in name order; integral values print
    /// without a fractional part.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, (name, metric)) in self.entries.iter().enumerate() {
            if index > 0 {
                f.write_str(", ")?;
            }
            if metric.value.fract() == 0.0 && metric.value.abs() < 1e15 {
                write!(f, "{name}={}", metric.value as i64)?;
            } else {
                write!(f, "{name}={:.2}", metric.value)?;
            }
        }
        Ok(())
    }
}

/// What a detector reports: a mergeable summary of one or more runs.
///
/// See the [module docs](self) for the merge semantics.  Unlike the pre-PR-4
/// shape (a trace-local [`RaceReport`] plus untyped `(name, value)` pairs),
/// everything here is keyed by interned names, so outcomes from different
/// traces, readers and worker threads fold together losslessly.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The detector's display name (e.g. `wcp`, `mcm(w=1K,t=60s)`).
    pub detector: String,
    /// Number of per-trace runs folded into this outcome (1 for a single
    /// run; sums under merge).
    pub shards: usize,
    /// Number of events the detector processed (sums under merge).
    pub events: usize,
    /// Every distinct race pair, keyed by interned names, with per-pair
    /// aggregates (unions under merge).  `BTreeMap` keeps iteration — and
    /// therefore every rendering — deterministic.
    pub races: BTreeMap<RacePair, PairStats>,
    /// Typed telemetry counters (per-field sum/max under merge).
    pub metrics: Metrics,
}

impl Outcome {
    /// Builds a single-run outcome from a detector's raw, id-keyed
    /// [`RaceReport`], resolving every id through `names` — the boundary
    /// where per-trace ids leave the system.
    pub fn from_report(
        detector: impl Into<String>,
        events: usize,
        report: &RaceReport,
        metrics: Metrics,
        names: &dyn NameResolver,
    ) -> Self {
        let mut races: BTreeMap<RacePair, PairStats> = BTreeMap::new();
        for race in report.races() {
            let pair = RacePair::new(
                names.variable_label(race.variable),
                names.location_label(race.first_location),
                names.location_label(race.second_location),
            );
            races
                .entry(pair)
                .and_modify(|stats| {
                    stats.race_events += 1;
                    stats.min_distance = stats.min_distance.min(race.distance());
                })
                .or_insert(PairStats { race_events: 1, min_distance: race.distance() });
        }
        Outcome { detector: detector.into(), shards: 1, events, races, metrics }
    }

    /// The distinct racy *location pairs* — the paper's "#Races" (variables
    /// are part of the race key but not of this count, matching Table 1).
    pub fn distinct_pairs(&self) -> usize {
        self.location_pairs().len()
    }

    /// The distinct location-name pairs in race, in lexicographic order.
    pub fn location_pairs(&self) -> BTreeSet<(&str, &str)> {
        self.races
            .keys()
            .map(|pair| (pair.first_location.as_str(), pair.second_location.as_str()))
            .collect()
    }

    /// Total race events across all pairs (sums under merge).
    pub fn race_events(&self) -> usize {
        self.races.values().map(|stats| stats.race_events).sum()
    }

    /// Looks up a telemetry value by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.get(name)
    }

    /// One-line telemetry rendering (the report table's last column).
    pub fn telemetry(&self) -> String {
        self.metrics.to_string()
    }

    /// Folds `other` into `self` per the merge table in the [module
    /// docs](self).  Both sides must come from the same detector
    /// configuration (debug-asserted by display name).
    pub fn merge(&mut self, other: Outcome) {
        debug_assert_eq!(self.detector, other.detector, "merging outcomes of different detectors");
        self.shards += other.shards;
        self.events += other.events;
        for (pair, stats) in other.races {
            match self.races.entry(pair) {
                btree_map::Entry::Vacant(slot) => {
                    slot.insert(stats);
                }
                btree_map::Entry::Occupied(mut slot) => slot.get_mut().merge(&stats),
            }
        }
        self.metrics.merge(&other.metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_trace::TraceBuilder;

    fn outcome(pairs: &[(&str, &str, &str, usize, usize)], events: usize) -> Outcome {
        let races = pairs
            .iter()
            .map(|(variable, a, b, race_events, min_distance)| {
                (
                    RacePair::new(*variable, *a, *b),
                    PairStats { race_events: *race_events, min_distance: *min_distance },
                )
            })
            .collect();
        Outcome { detector: "test".to_owned(), shards: 1, events, races, metrics: Metrics::new() }
    }

    #[test]
    fn race_pair_normalizes_by_name() {
        assert_eq!(RacePair::new("x", "B:2", "A:1"), RacePair::new("x", "A:1", "B:2"));
        assert_eq!(RacePair::new("x", "A:1", "B:2").to_string(), "x: A:1 <-> B:2");
    }

    #[test]
    fn merge_unions_pairs_and_sums_events() {
        let mut left = outcome(&[("x", "A", "B", 2, 10), ("y", "A", "C", 1, 3)], 100);
        let right = outcome(&[("x", "A", "B", 1, 4), ("z", "D", "E", 1, 7)], 50);
        left.merge(right);
        assert_eq!(left.shards, 2);
        assert_eq!(left.events, 150);
        assert_eq!(left.races.len(), 3);
        assert_eq!(left.race_events(), 5);
        let shared = &left.races[&RacePair::new("x", "A", "B")];
        assert_eq!(shared.race_events, 3, "colliding pairs sum race events");
        assert_eq!(shared.min_distance, 4, "colliding pairs keep the minimum distance");
    }

    #[test]
    fn distinct_pairs_counts_locations_not_variables() {
        // Two variables racing on the same location pair count once, as in
        // Table 1 (which counts distinct *location* pairs).
        let one = outcome(&[("x", "A", "B", 1, 1), ("y", "A", "B", 1, 1)], 10);
        assert_eq!(one.races.len(), 2);
        assert_eq!(one.distinct_pairs(), 1);
    }

    #[test]
    fn metrics_merge_by_aggregation() {
        let mut left = Metrics::new();
        left.record_sum("clock_joins", 10.0);
        left.record_max("max_queue_entries", 5.0);
        left.record_sum("only_left", 1.0);
        let mut right = Metrics::new();
        right.record_sum("clock_joins", 7.0);
        right.record_max("max_queue_entries", 3.0);
        right.record_max("only_right", 9.0);
        left.merge(&right);
        assert_eq!(left.get("clock_joins"), Some(17.0));
        assert_eq!(left.get("max_queue_entries"), Some(5.0));
        assert_eq!(left.get("only_left"), Some(1.0));
        assert_eq!(left.get("only_right"), Some(9.0));
        assert_eq!(
            left.to_string(),
            "clock_joins=17, max_queue_entries=5, only_left=1, only_right=9"
        );
    }

    #[test]
    fn merge_is_commutative_on_integral_metrics() {
        let make = |a: f64, b: f64| {
            let mut m = Metrics::new();
            m.record_sum("sum", a);
            m.record_max("max", b);
            m
        };
        let mut ab = make(1.0, 2.0);
        ab.merge(&make(3.0, 1.0));
        let mut ba = make(3.0, 1.0);
        ba.merge(&make(1.0, 2.0));
        assert_eq!(ab, ba);
    }

    #[test]
    fn from_report_resolves_names_and_dedupes() {
        let mut builder = TraceBuilder::new();
        let t1 = builder.thread("t1");
        let t2 = builder.thread("t2");
        let x = builder.variable("x");
        builder.at("A.java:1");
        builder.write(t1, x);
        builder.at("B.java:2");
        builder.write(t2, x);
        let trace = builder.finish();

        let report: RaceReport = vec![rapid_trace::Race {
            first: trace[0].id(),
            second: trace[1].id(),
            variable: x,
            first_location: trace[1].location(),
            second_location: trace[0].location(),
            kind: rapid_trace::RaceKind::Wcp,
        }]
        .into_iter()
        .collect();

        let outcome = Outcome::from_report("wcp", trace.len(), &report, Metrics::new(), &trace);
        assert_eq!(outcome.shards, 1);
        assert_eq!(outcome.events, 2);
        assert_eq!(outcome.distinct_pairs(), 1);
        let (pair, stats) = outcome.races.iter().next().unwrap();
        // Normalized by *name*, even though the ids arrived swapped.
        assert_eq!(pair, &RacePair::new("x", "A.java:1", "B.java:2"));
        assert_eq!(stats.race_events, 1);
        assert_eq!(stats.min_distance, 1);
    }
}
