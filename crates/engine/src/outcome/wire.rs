//! The `Outcome` wire codec (`RWO`): a hand-rolled binary encoding of the
//! mergeable result algebra, in the `.rwf` house style.
//!
//! The [`Outcome`] algebra merges results by interned *names*, which makes
//! outcomes from different processes foldable — but until this codec they
//! had no way to *arrive* from another process (the workspace's `serde`
//! stand-in derives are no-ops and cannot ship bytes).  This module is the
//! missing wire encoding: the coordinator/worker protocol of
//! [`dist`](crate::dist) embeds these blobs in its `OUTCOME` and `REPORT`
//! messages, and the coordinator folds decoded outcomes through the exact
//! same merge path as a local `jobs = N` run.
//!
//! # Layout
//!
//! All integers are little-endian fixed-width; strings are
//! `u32`-length-prefixed bytes — the same primitives as the `.rwf` trace
//! format, shared via [`rapid_trace::format::wire`] so the two codecs
//! cannot drift.  One encoded outcome is:
//!
//! ```text
//! header  := magic "RWO\0" | version u16 | reserved u16
//! body    := detector str | shards u64 | events u64
//!          | names: u32 count, count × str        (interned name table)
//!          | races: u32 count, count × race-frame
//!          | metrics: u32 count, count × metric-frame
//! race-frame   := variable u32 | first u32 | second u32        (name ids)
//!               | race_events u64 | min_distance u64           (28 bytes)
//! metric-frame := name u32 | aggregation u8 | value f64-bits   (13 bytes)
//! ```
//!
//! The name table interns every string a frame references (variables,
//! locations, metric names) in order of first use, walking races in map
//! order then metrics in map order — so encoding is deterministic and
//! `encode(decode(bytes)) == bytes` for well-formed input.  `aggregation`
//! is 0 for [`Aggregation::Sum`], 1 for [`Aggregation::Max`].
//!
//! The normative specification, including the message flow that carries
//! these blobs, lives in `docs/PROTOCOL.md`.
//!
//! # Examples
//!
//! ```
//! use rapid_engine::outcome::{wire, Metrics, Outcome, PairStats, RacePair};
//! use std::collections::BTreeMap;
//!
//! let mut races = BTreeMap::new();
//! races.insert(RacePair::new("x", "A.java:1", "B.java:2"), PairStats {
//!     race_events: 3,
//!     min_distance: 17,
//! });
//! let mut metrics = Metrics::new();
//! metrics.record_sum("clock_joins", 41.0);
//! let outcome =
//!     Outcome { detector: "wcp".into(), shards: 1, events: 100, races, metrics };
//!
//! let bytes = wire::to_bytes(&outcome);
//! assert!(wire::looks_like_outcome(&bytes));
//! assert_eq!(wire::from_bytes(&bytes).unwrap(), outcome);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use rapid_trace::format::wire;

use super::{Aggregation, Metric, Metrics, Outcome, PairStats, RacePair};

/// The four magic bytes opening every encoded outcome: `"RWO"` plus a NUL.
pub const MAGIC: [u8; 4] = *b"RWO\0";

/// The outcome-codec version this build reads and writes.
pub const VERSION: u16 = 1;

/// Size in bytes of one race-pair frame.
pub const RACE_FRAME_LEN: usize = 28;

/// Size in bytes of one metric frame.
pub const METRIC_FRAME_LEN: usize = 13;

const AGG_SUM: u8 = 0;
const AGG_MAX: u8 = 1;

/// Why a byte sequence could not be decoded as an [`Outcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input does not start with the `RWO\0` magic bytes.
    BadMagic,
    /// The input declares a codec version this build cannot read.
    BadVersion(u16),
    /// The input ends before the structure its header declares.
    Truncated,
    /// The input continues past the last declared frame
    /// ([`from_bytes`] only; embedded decodes are length-delimited upstream).
    TrailingBytes,
    /// A frame references a name-table entry that does not exist.
    BadNameId {
        /// The out-of-range id.
        id: u32,
        /// The table's actual length.
        len: u32,
    },
    /// A metric frame carries an aggregation tag outside `0..=1`.
    BadAggregation(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not an encoded outcome (bad magic bytes)"),
            WireError::BadVersion(version) => {
                write!(
                    f,
                    "unsupported outcome codec version {version} (this build reads {VERSION})"
                )
            }
            WireError::Truncated => write!(f, "truncated outcome"),
            WireError::TrailingBytes => write!(f, "trailing bytes after the encoded outcome"),
            WireError::BadNameId { id, len } => {
                write!(f, "name id {id} out of range (table has {len})")
            }
            WireError::BadAggregation(tag) => write!(f, "unknown aggregation tag {tag}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<wire::Truncated> for WireError {
    fn from(_: wire::Truncated) -> Self {
        WireError::Truncated
    }
}

/// Returns true when `bytes` starts with the outcome magic.
pub fn looks_like_outcome(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Interns strings in first-use order, building the encoder's name table.
#[derive(Default)]
struct NameTable<'a> {
    names: Vec<&'a str>,
    index: HashMap<&'a str, u32>,
}

impl<'a> NameTable<'a> {
    fn intern(&mut self, name: &'a str) -> u32 {
        *self.index.entry(name).or_insert_with(|| {
            self.names.push(name);
            (self.names.len() - 1) as u32
        })
    }
}

/// Appends `outcome` to `out` in the wire layout (see the [module
/// docs](self)).  Multiple outcomes concatenate cleanly: each blob is
/// self-delimiting, so [`decode`] can read them back in sequence.
pub fn encode(outcome: &Outcome, out: &mut Vec<u8>) {
    // First pass: intern every referenced name and collect the frames.
    let mut table = NameTable::default();
    let mut race_frames: Vec<(u32, u32, u32, &PairStats)> = Vec::with_capacity(outcome.races.len());
    for (pair, stats) in &outcome.races {
        let variable = table.intern(&pair.variable);
        let first = table.intern(&pair.first_location);
        let second = table.intern(&pair.second_location);
        race_frames.push((variable, first, second, stats));
    }
    let mut metric_frames: Vec<(u32, &Metric)> = Vec::new();
    for (name, metric) in outcome.metrics.iter() {
        metric_frames.push((table.intern(name), metric));
    }

    // Second pass: header, scalars, table, frames.
    out.extend_from_slice(&MAGIC);
    wire::put_u16(out, VERSION);
    wire::put_u16(out, 0); // reserved
    wire::put_str(out, &outcome.detector);
    wire::put_u64(out, outcome.shards as u64);
    wire::put_u64(out, outcome.events as u64);
    wire::put_u32(out, table.names.len() as u32);
    for name in &table.names {
        wire::put_str(out, name);
    }
    wire::put_u32(out, race_frames.len() as u32);
    for (variable, first, second, stats) in race_frames {
        wire::put_u32(out, variable);
        wire::put_u32(out, first);
        wire::put_u32(out, second);
        wire::put_u64(out, stats.race_events as u64);
        wire::put_u64(out, stats.min_distance as u64);
    }
    wire::put_u32(out, metric_frames.len() as u32);
    for (name, metric) in metric_frames {
        wire::put_u32(out, name);
        let tag = match metric.aggregation {
            Aggregation::Sum => AGG_SUM,
            Aggregation::Max => AGG_MAX,
        };
        wire::put_u8(out, tag);
        wire::put_f64(out, metric.value);
    }
}

/// Encodes `outcome` into a fresh byte vector.
pub fn to_bytes(outcome: &Outcome) -> Vec<u8> {
    let mut out = Vec::new();
    encode(outcome, &mut out);
    out
}

/// Decodes one outcome from `cursor`, leaving the cursor positioned after
/// it (so callers can decode a sequence of concatenated blobs, as the
/// protocol's `OUTCOME`/`REPORT` messages do).
///
/// # Errors
///
/// A typed [`WireError`]; [`WireError::TrailingBytes`] is never produced
/// here — use [`from_bytes`] when the input must contain exactly one
/// outcome.
pub fn decode(cursor: &mut wire::Cursor<'_>) -> Result<Outcome, WireError> {
    if cursor.take(MAGIC.len())? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = cursor.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    cursor.u16()?; // reserved
    let detector = cursor.str()?;
    let shards = cursor.u64()? as usize;
    let events = cursor.u64()? as usize;

    let name_count = cursor.u32()?;
    // Each name needs at least its 4-byte length prefix (hostile guard).
    cursor.check_count(name_count, 4)?;
    let mut names: Vec<String> = Vec::with_capacity(name_count as usize);
    for _ in 0..name_count {
        names.push(cursor.str()?);
    }
    let resolve = |id: u32| -> Result<&str, WireError> {
        names
            .get(id as usize)
            .map(String::as_str)
            .ok_or(WireError::BadNameId { id, len: names.len() as u32 })
    };

    let race_count = cursor.u32()?;
    cursor.check_count(race_count, RACE_FRAME_LEN)?;
    let mut races: BTreeMap<RacePair, PairStats> = BTreeMap::new();
    for _ in 0..race_count {
        let variable = cursor.u32()?;
        let first = cursor.u32()?;
        let second = cursor.u32()?;
        let stats =
            PairStats { race_events: cursor.u64()? as usize, min_distance: cursor.u64()? as usize };
        // `RacePair::new` re-normalizes the location order, so a hostile
        // frame with swapped locations cannot plant an unordered key; if
        // normalization makes two frames collide, their stats merge exactly
        // as [`Outcome::merge`] would merge them.
        let pair = RacePair::new(resolve(variable)?, resolve(first)?, resolve(second)?);
        races.entry(pair).and_modify(|existing| existing.merge(&stats)).or_insert(stats);
    }

    let metric_count = cursor.u32()?;
    cursor.check_count(metric_count, METRIC_FRAME_LEN)?;
    let mut metrics = Metrics::new();
    for _ in 0..metric_count {
        let name = resolve(cursor.u32()?)?.to_owned();
        let aggregation = match cursor.u8()? {
            AGG_SUM => Aggregation::Sum,
            AGG_MAX => Aggregation::Max,
            other => return Err(WireError::BadAggregation(other)),
        };
        metrics.record(name, Metric { aggregation, value: cursor.f64()? });
    }

    Ok(Outcome { detector, shards, events, races, metrics })
}

/// Decodes exactly one outcome from `bytes`.
///
/// # Errors
///
/// As [`decode`], plus [`WireError::TrailingBytes`] when input remains
/// after the outcome.
pub fn from_bytes(bytes: &[u8]) -> Result<Outcome, WireError> {
    let mut cursor = wire::Cursor::new(bytes);
    let outcome = decode(&mut cursor)?;
    if !cursor.at_end() {
        return Err(WireError::TrailingBytes);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Outcome {
        let mut races = BTreeMap::new();
        races.insert(
            RacePair::new("x", "A.java:1", "B.java:2"),
            PairStats { race_events: 3, min_distance: 17 },
        );
        races.insert(
            RacePair::new("y", "A.java:1", "C.java:9"),
            PairStats { race_events: 1, min_distance: 2 },
        );
        let mut metrics = Metrics::new();
        metrics.record_sum("clock_joins", 41.0);
        metrics.record_max("max_queue_percentage", 19.25);
        Outcome { detector: "wcp".to_owned(), shards: 2, events: 1234, races, metrics }
    }

    #[test]
    fn round_trips_by_value() {
        let outcome = sample();
        let bytes = to_bytes(&outcome);
        assert!(looks_like_outcome(&bytes));
        assert_eq!(from_bytes(&bytes).unwrap(), outcome);
    }

    #[test]
    fn encoding_is_deterministic_and_a_fixpoint() {
        let outcome = sample();
        let bytes = to_bytes(&outcome);
        assert_eq!(bytes, to_bytes(&from_bytes(&bytes).unwrap()));
    }

    #[test]
    fn concatenated_outcomes_decode_in_sequence() {
        let first = sample();
        let second = Outcome {
            detector: "hb".to_owned(),
            shards: 1,
            events: 7,
            races: BTreeMap::new(),
            metrics: Metrics::new(),
        };
        let mut bytes = Vec::new();
        encode(&first, &mut bytes);
        encode(&second, &mut bytes);
        let mut cursor = rapid_trace::format::wire::Cursor::new(&bytes);
        assert_eq!(decode(&mut cursor).unwrap(), first);
        assert_eq!(decode(&mut cursor).unwrap(), second);
        assert!(cursor.at_end());
    }

    #[test]
    fn rejects_bad_magic_version_truncation_and_trailing_bytes() {
        let good = to_bytes(&sample());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(from_bytes(&bad_magic).unwrap_err(), WireError::BadMagic);

        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        assert_eq!(from_bytes(&bad_version).unwrap_err(), WireError::BadVersion(0xEE));

        for len in 0..good.len() {
            let error = from_bytes(&good[..len]).unwrap_err();
            assert!(
                matches!(error, WireError::Truncated | WireError::BadMagic),
                "prefix of {len} bytes decoded to {error:?}"
            );
        }

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(from_bytes(&trailing).unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn rejects_out_of_range_name_ids_and_bad_aggregation_tags() {
        // Hand-build a minimal blob with one metric frame.
        let mut outcome = Outcome {
            detector: "t".to_owned(),
            shards: 1,
            events: 0,
            races: BTreeMap::new(),
            metrics: Metrics::new(),
        };
        outcome.metrics.record_sum("m", 1.0);
        let good = to_bytes(&outcome);

        // The metric frame sits at the end: name u32 | tag u8 | value f64.
        let frame = good.len() - METRIC_FRAME_LEN;
        let mut bad_id = good.clone();
        bad_id[frame] = 9;
        assert_eq!(from_bytes(&bad_id).unwrap_err(), WireError::BadNameId { id: 9, len: 1 });

        let mut bad_tag = good.clone();
        bad_tag[frame + 4] = 7;
        assert_eq!(from_bytes(&bad_tag).unwrap_err(), WireError::BadAggregation(7));
    }

    #[test]
    fn hostile_counts_are_truncation_not_allocation() {
        // A blob declaring u32::MAX races must fail fast on the count
        // bound, not attempt a 100-GiB reserve.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        rapid_trace::format::wire::put_u16(&mut bytes, VERSION);
        rapid_trace::format::wire::put_u16(&mut bytes, 0);
        rapid_trace::format::wire::put_str(&mut bytes, "d");
        rapid_trace::format::wire::put_u64(&mut bytes, 1);
        rapid_trace::format::wire::put_u64(&mut bytes, 0);
        rapid_trace::format::wire::put_u32(&mut bytes, 0); // empty name table
        rapid_trace::format::wire::put_u32(&mut bytes, u32::MAX); // hostile race count
        assert_eq!(from_bytes(&bytes).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn swapped_locations_normalize_on_decode() {
        // Craft a frame whose locations arrive in the wrong order; the
        // decoder must yield the same normalized pair the encoder writes.
        let outcome = sample();
        let bytes = to_bytes(&outcome);
        // Find the first race frame: it follows the name table.  Rather
        // than byte-surgery, assert the invariant on the decoded value.
        let decoded = from_bytes(&bytes).unwrap();
        for pair in decoded.races.keys() {
            assert!(pair.first_location <= pair.second_location);
        }
    }
}
