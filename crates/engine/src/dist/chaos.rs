//! Deterministic, seeded fault injection for the RWP transport.
//!
//! A [`ChaosStream`] wraps a `TcpStream` with the same `Read`/`Write`
//! surface the proto layer uses and perturbs the byte flow according to a
//! [`FaultPlan`]: per-direction actions anchored at absolute byte offsets —
//! delay N milliseconds, bit-flip a byte, cut the connection (mid-frame
//! offsets model truncation), or stall forever.  Every plan is replayable
//! from a `u64` seed via [`FaultPlan::from_seed`], so any failing schedule
//! found by the chaos proptests reproduces exactly from the seed printed in
//! the failure.
//!
//! The hook into the production paths is [`ChaosConfig`], default **off**:
//! when off, connections stay plain `TcpStream`s wrapped in
//! [`RwpStream::Plain`] — one enum discriminant test per I/O call, no dyn
//! dispatch, no buffering, no extra copies on the hot path.
//!
//! Faults are modeled at the layer the hardening has to survive:
//!
//! - **`Delay`** sleeps before the anchored byte moves (slow links).
//! - **`Flip`** XORs one bit into the anchored byte (corruption in
//!   transit; the per-frame CRC-32 must turn this into
//!   [`ProtoError::Corrupt`](super::proto::ProtoError)).
//! - **`Cut`** shuts the socket down once the anchor is reached — an
//!   anchor inside a frame body is exactly a frame truncated mid-body.
//! - **`Stall`** stops the direction's progress forever: every operation
//!   from the anchor on reports a read/write timeout, which the existing
//!   patience plumbing (idle polls, bounded mid-frame stalls, lease
//!   expiry) must convert into a typed error in bounded time.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// One fault, applied when its direction's byte counter reaches the anchor
/// offset it is scheduled at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this many milliseconds before the anchored byte moves.
    Delay {
        /// Sleep length in milliseconds.
        millis: u64,
    },
    /// XOR bit `bit` (0–7) into the anchored byte.
    Flip {
        /// Which bit to flip.
        bit: u8,
    },
    /// Shut the whole connection down at the anchor.  An anchor inside a
    /// frame truncates that frame mid-body.
    Cut,
    /// Stop making progress forever: every call from the anchor on reports
    /// a timeout, exactly as a socket with a read/write timeout would.
    Stall,
}

/// One direction's fault schedule: `(anchor offset, action)` pairs, kept
/// sorted by offset.  Offsets count bytes moved in that direction since the
/// connection was wrapped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectionPlan {
    actions: Vec<(u64, FaultAction)>,
}

impl DirectionPlan {
    /// A schedule from `(offset, action)` pairs, in any order.
    pub fn new(mut actions: Vec<(u64, FaultAction)>) -> Self {
        actions.sort_by_key(|(at, _)| *at);
        DirectionPlan { actions }
    }

    /// True when the direction carries no faults.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A full fault schedule for one connection: independent read-direction and
/// write-direction plans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults on bytes this endpoint reads.
    pub read: DirectionPlan,
    /// Faults on bytes this endpoint writes.
    pub write: DirectionPlan,
}

/// Splitmix64: the standard 64-bit mixer, used both to derive
/// per-connection seeds and to draw a plan's actions.  Hand-rolled so the
/// engine crate needs no rand dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty schedule: a wrapped connection that behaves exactly like a
    /// plain one.
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// Adds a read-direction fault at byte offset `at`.
    #[must_use]
    pub fn with_read(mut self, at: u64, action: FaultAction) -> Self {
        self.read.actions.push((at, action));
        self.read.actions.sort_by_key(|(offset, _)| *offset);
        self
    }

    /// Adds a write-direction fault at byte offset `at`.
    #[must_use]
    pub fn with_write(mut self, at: u64, action: FaultAction) -> Self {
        self.write.actions.push((at, action));
        self.write.actions.sort_by_key(|(offset, _)| *offset);
        self
    }

    /// Draws a replayable schedule from a seed.
    ///
    /// The grammar (documented normatively in `docs/CHAOS.md`): each
    /// direction gets 0–2 actions at anchors that advance by 1–600 bytes
    /// each (small enough to land inside handshakes, grants and chunk
    /// streams of test-sized shards); each action is a delay of 1–40 ms
    /// (2 in 6), a bit flip (1 in 6), a cut (1 in 6), a stall (1 in 6) or
    /// nothing (1 in 6).  Cut and stall are terminal for their direction.
    /// The same seed always yields the same plan.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let direction = |state: &mut u64| {
            let mut actions = Vec::new();
            let mut anchor = 0u64;
            let count = splitmix64(state) % 3;
            for _ in 0..count {
                anchor += 1 + splitmix64(state) % 600;
                let action = match splitmix64(state) % 6 {
                    0 | 1 => FaultAction::Delay { millis: 1 + splitmix64(state) % 40 },
                    2 => FaultAction::Flip { bit: (splitmix64(state) % 8) as u8 },
                    3 => FaultAction::Cut,
                    4 => FaultAction::Stall,
                    _ => continue,
                };
                let terminal = matches!(action, FaultAction::Cut | FaultAction::Stall);
                actions.push((anchor, action));
                if terminal {
                    break;
                }
            }
            DirectionPlan::new(actions)
        };
        let read = direction(&mut state);
        let write = direction(&mut state);
        FaultPlan { read, write }
    }

    /// True when neither direction carries a fault.
    pub fn is_clean(&self) -> bool {
        self.read.is_empty() && self.write.is_empty()
    }
}

/// How a [`ChaosConfig`] assigns plans to connections.
#[derive(Debug, Clone, Default)]
enum Plans {
    /// No fault injection: every connection stays a plain stream.
    #[default]
    Off,
    /// Connection `n` gets `FaultPlan::from_seed(mix(seed, n))`.
    Seeded(u64),
    /// Connection `n` gets `plans[n]`; connections past the end are clean.
    Scripted(Vec<FaultPlan>),
}

/// The test/bench-only fault-injection hook threaded through
/// [`ServeConfig`](super::ServeConfig), [`WorkConfig`](super::WorkConfig)
/// and [`SubmitConfig`](super::SubmitConfig).
///
/// Default **off**: [`wrap`](Self::wrap) returns [`RwpStream::Plain`] and
/// the transport byte flow is untouched.  Production paths never construct
/// anything else.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    plans: Plans,
}

impl ChaosConfig {
    /// No fault injection (the default).
    pub fn off() -> Self {
        ChaosConfig::default()
    }

    /// Derive every connection's plan from one base seed: connection `n`
    /// (0-based, in accept/connect order per endpoint) gets
    /// `FaultPlan::from_seed(mix(seed, n))`.  Replayable: the same seed
    /// yields the same schedule on every connection.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig { plans: Plans::Seeded(seed) }
    }

    /// Hand-written schedules: connection `n` gets `plans[n]`; connections
    /// past the end of the list are clean.
    pub fn scripted(plans: Vec<FaultPlan>) -> Self {
        ChaosConfig { plans: Plans::Scripted(plans) }
    }

    /// True when no connection will ever see a fault.
    pub fn is_off(&self) -> bool {
        matches!(self.plans, Plans::Off)
    }

    /// The plan for the `connection`-th wrapped stream, if any.
    pub fn plan_for(&self, connection: u64) -> Option<FaultPlan> {
        match &self.plans {
            Plans::Off => None,
            Plans::Seeded(seed) => {
                let mut state = seed ^ connection.wrapping_mul(0xA076_1D64_78BD_642F);
                Some(FaultPlan::from_seed(splitmix64(&mut state)))
            }
            Plans::Scripted(plans) => {
                let plan = plans.get(connection as usize)?;
                if plan.is_clean() {
                    None
                } else {
                    Some(plan.clone())
                }
            }
        }
    }

    /// Wraps the `connection`-th stream: plain when off (zero overhead),
    /// chaotic when a plan applies.
    pub fn wrap(&self, stream: TcpStream, connection: u64) -> RwpStream {
        match self.plan_for(connection) {
            None => RwpStream::Plain(stream),
            Some(plan) => RwpStream::Chaos(ChaosStream::new(stream, plan)),
        }
    }
}

/// One direction's live fault state inside a [`ChaosStream`].
#[derive(Debug)]
struct DirectionState {
    /// Bytes moved in this direction so far.
    moved: u64,
    /// Remaining actions, front first (sorted by anchor).
    actions: VecDeque<(u64, FaultAction)>,
    /// A `Flip` whose anchor was reached but whose byte has not moved yet.
    flip: Option<u8>,
    /// The direction hit a `Stall` and reports timeouts forever.
    stalled: bool,
}

impl DirectionState {
    fn new(plan: DirectionPlan) -> Self {
        DirectionState { moved: 0, actions: plan.actions.into(), flip: None, stalled: false }
    }

    /// Bytes that may move before the next anchor is reached (always ≥ 1).
    fn until_next_anchor(&self) -> usize {
        match self.actions.front() {
            Some((at, _)) => (*at).saturating_sub(self.moved).max(1) as usize,
            None => usize::MAX,
        }
    }
}

/// The error a stalled direction reports: the same `TimedOut` a socket with
/// a read/write timeout produces, so every existing patience path engages.
/// The short sleep keeps stall loops from spinning.
fn stall_error() -> io::Error {
    std::thread::sleep(Duration::from_millis(15));
    io::Error::new(io::ErrorKind::TimedOut, "chaos: direction stalled")
}

/// A `TcpStream` perturbed by a [`FaultPlan`].  Implements the same
/// `Read`/`Write` surface the proto layer uses; see the module docs for the
/// fault semantics.
#[derive(Debug)]
pub struct ChaosStream {
    inner: TcpStream,
    read: DirectionState,
    write: DirectionState,
    cut: bool,
}

impl ChaosStream {
    /// Wraps a configured stream (timeouts, nodelay) with a fault plan.
    pub fn new(inner: TcpStream, plan: FaultPlan) -> Self {
        ChaosStream {
            inner,
            read: DirectionState::new(plan.read),
            write: DirectionState::new(plan.write),
            cut: false,
        }
    }

    fn cut_now(&mut self) {
        if !self.cut {
            self.cut = true;
            let _ = self.inner.shutdown(Shutdown::Both);
        }
    }

    /// Adjusts the wrapped socket's read timeout (chaos faults are applied
    /// per byte moved, so retiming the socket never desynchronizes a plan).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.read.stalled {
            return Err(stall_error());
        }
        if self.cut {
            return Ok(0);
        }
        // Apply every action whose anchor has been reached.
        while let Some(&(at, action)) = self.read.actions.front() {
            if at > self.read.moved {
                break;
            }
            self.read.actions.pop_front();
            match action {
                FaultAction::Delay { millis } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultAction::Flip { bit } => self.read.flip = Some(bit),
                FaultAction::Cut => {
                    self.cut_now();
                    return Ok(0);
                }
                FaultAction::Stall => {
                    self.read.stalled = true;
                    return Err(stall_error());
                }
            }
        }
        // Never read past the next anchor, so actions land on exact bytes.
        let limit = self.read.until_next_anchor().min(buf.len());
        let n = self.inner.read(&mut buf[..limit])?;
        if n > 0 {
            if let Some(bit) = self.read.flip.take() {
                buf[0] ^= 1 << bit;
            }
            self.read.moved += n as u64;
        }
        Ok(n)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.write.stalled {
            return Err(stall_error());
        }
        if self.cut {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection cut"));
        }
        while let Some(&(at, action)) = self.write.actions.front() {
            if at > self.write.moved {
                break;
            }
            self.write.actions.pop_front();
            match action {
                FaultAction::Delay { millis } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultAction::Flip { bit } => self.write.flip = Some(bit),
                FaultAction::Cut => {
                    self.cut_now();
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection cut"));
                }
                FaultAction::Stall => {
                    self.write.stalled = true;
                    return Err(stall_error());
                }
            }
        }
        if let Some(bit) = self.write.flip.take() {
            // Flip the anchored byte on its way out, one byte at a time so
            // the caller's buffer stays untouched.
            let flipped = [buf[0] ^ (1 << bit)];
            let n = self.inner.write(&flipped)?;
            if n == 0 {
                self.write.flip = Some(bit);
                return Ok(0);
            }
            self.write.moved += 1;
            return Ok(1);
        }
        let limit = self.write.until_next_anchor().min(buf.len());
        let n = self.inner.write(&buf[..limit])?;
        self.write.moved += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The transport every dist connection runs over: a plain `TcpStream` in
/// production (chaos off — one discriminant test per call, no dyn
/// dispatch), or a [`ChaosStream`] under an active fault plan.
#[derive(Debug)]
pub enum RwpStream {
    /// The production transport: bytes flow untouched.
    Plain(TcpStream),
    /// A fault-injected transport (tests and benches only).
    Chaos(ChaosStream),
}

impl RwpStream {
    /// Adjusts the underlying socket's read timeout — the coordinator's
    /// worker loop shortens it while a lease claim is pending so queued
    /// pipelined `OUTCOME`s drain between claim polls.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            RwpStream::Plain(stream) => stream.set_read_timeout(timeout),
            RwpStream::Chaos(stream) => stream.set_read_timeout(timeout),
        }
    }
}

impl Read for RwpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            RwpStream::Plain(stream) => stream.read(buf),
            RwpStream::Chaos(stream) => stream.read(buf),
        }
    }
}

impl Write for RwpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            RwpStream::Plain(stream) => stream.write(buf),
            RwpStream::Chaos(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            RwpStream::Plain(stream) => stream.flush(),
            RwpStream::Chaos(stream) => stream.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn seeded_plans_replay_exactly() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
            let config = ChaosConfig::seeded(seed);
            for connection in 0..4 {
                assert_eq!(config.plan_for(connection), config.plan_for(connection));
            }
        }
        // Different connections draw different schedules (with overwhelming
        // probability; pin one seed where they differ so a mixer regression
        // is caught).
        let config = ChaosConfig::seeded(7);
        let distinct = (0..16).map(|connection| config.plan_for(connection)).collect::<Vec<_>>();
        assert!(distinct.windows(2).any(|pair| pair[0] != pair[1]));
    }

    #[test]
    fn off_config_wraps_plain() {
        assert!(ChaosConfig::default().is_off());
        assert!(ChaosConfig::default().plan_for(0).is_none());
        assert!(ChaosConfig::scripted(vec![FaultPlan::clean()]).plan_for(0).is_none());
        assert!(ChaosConfig::scripted(Vec::new()).plan_for(5).is_none());
    }

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn flip_lands_on_the_exact_anchored_byte() {
        let (client, mut server) = socket_pair();
        let plan = FaultPlan::clean().with_read(3, FaultAction::Flip { bit: 0 });
        let mut chaotic = ChaosStream::new(client, plan);
        server.write_all(&[10, 20, 30, 40, 50]).unwrap();
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        while out.len() < 5 {
            let n = chaotic.read(&mut buf).unwrap();
            assert!(n > 0);
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, vec![10, 20, 30, 41, 50]);
    }

    #[test]
    fn cut_truncates_the_stream_at_the_anchor() {
        let (client, mut server) = socket_pair();
        let plan = FaultPlan::clean().with_read(2, FaultAction::Cut);
        let mut chaotic = ChaosStream::new(client, plan);
        server.write_all(&[1, 2, 3, 4]).unwrap();
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            let n = chaotic.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, vec![1, 2]);
        // The cut is bidirectional: writes fail afterwards.
        assert!(chaotic.write(&[9]).is_err());
    }

    #[test]
    fn stall_reports_timeouts_forever() {
        let (client, mut server) = socket_pair();
        let plan = FaultPlan::clean().with_write(1, FaultAction::Stall);
        let mut chaotic = ChaosStream::new(client, plan);
        assert_eq!(chaotic.write(&[1, 2, 3]).unwrap(), 1);
        for _ in 0..3 {
            let error = chaotic.write(&[4]).unwrap_err();
            assert_eq!(error.kind(), io::ErrorKind::TimedOut);
        }
        // The byte before the anchor still arrived.
        let mut buf = [0u8; 4];
        server.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(server.read(&mut buf).unwrap(), 1);
        assert_eq!(buf[0], 1);
    }
}
