//! The coordinator/worker message protocol (`RWP`): length-prefixed frames
//! over a byte stream.
//!
//! Every message is one frame — `tag u8 | length u32 LE | payload` — whose
//! payload is encoded with the same shared primitives as the `.rwf` and
//! `RWO` codecs ([`rapid_trace::format::wire`]).  The flow:
//!
//! ```text
//! worker  → HELLO(role=worker)      coordinator → WELCOME(spec, jobs hint)
//! worker  → LEASE                   coordinator → SHARD(id, name, bytes) | DONE
//! worker  → OUTCOME(id, runs) | FAILED(id, message)        (repeat LEASE…)
//!
//! submit  → HELLO(role=submit)      coordinator → WELCOME(spec, jobs hint)
//! submit  → SUBMIT                  coordinator → REPORT(merged) | ERROR(message)
//! ```
//!
//! `OUTCOME` and `REPORT` embed [`Outcome`] blobs in the `RWO` codec
//! ([`crate::outcome::wire`]); everything else is scalars and strings.  The
//! normative layout and the lease/requeue semantics live in
//! `docs/PROTOCOL.md`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use rapid_trace::format::{wire, TextFormat};

use crate::detector::DetectorSpec;
use crate::outcome::wire as outcome_wire;
use crate::outcome::Outcome;

/// The four magic bytes opening every `HELLO` payload: `"RWP"` plus a NUL.
pub const MAGIC: [u8; 4] = *b"RWP\0";

/// The protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Upper bound on one frame's payload (guards hostile length prefixes; a
/// shard bigger than this should be split, not shipped as one message).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Upper bound on one shard's byte size: [`MAX_FRAME_LEN`] minus generous
/// headroom for the `SHARD` frame's other fields (id, name, text tag,
/// length prefixes).  The coordinator enforces this at bind time — an
/// oversized shard must fail fast there, because a frame the receiver
/// rejects as [`ProtoError::Oversized`] would otherwise requeue and
/// re-send forever.
pub const MAX_SHARD_LEN: u64 = (MAX_FRAME_LEN as u64) - (1 << 16);

const TAG_HELLO: u8 = 0;
const TAG_WELCOME: u8 = 1;
const TAG_LEASE: u8 = 2;
const TAG_SHARD: u8 = 3;
const TAG_OUTCOME: u8 = 4;
const TAG_FAILED: u8 = 5;
const TAG_DONE: u8 = 6;
const TAG_SUBMIT: u8 = 7;
const TAG_REPORT: u8 = 8;
const TAG_ERROR: u8 = 9;

/// What a connecting client wants from the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Lease shards, return outcomes.
    Worker,
    /// Wait for completion, fetch the merged report.
    Submit,
}

/// One detector's result as shipped over the wire: its outcome plus the
/// wall-clock its detector slice consumed, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRun {
    /// Detector time in nanoseconds ([`DetectorRun::time`](crate::DetectorRun)).
    pub time_nanos: u64,
    /// The detector's mergeable outcome.
    pub outcome: Outcome,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → coordinator: open a session.
    Hello {
        /// What the client wants.
        role: Role,
    },
    /// Coordinator → client: session accepted; here is the detector
    /// configuration every worker must run, and a parallelism hint
    /// (0 = none) a worker may use when `--jobs` was not given.
    Welcome {
        /// Suggested worker thread count; 0 means "decide yourself".
        jobs_hint: u32,
        /// The detector set to build per shard.
        spec: DetectorSpec,
    },
    /// Worker → coordinator: give me a shard.
    Lease,
    /// Coordinator → worker: one shard to analyze.
    Shard {
        /// The shard's index in the coordinator's input order.
        id: u32,
        /// Display name (the coordinator-side path).
        name: String,
        /// Text flavour for non-binary content (binary is sniffed by magic).
        text: TextFormat,
        /// The raw trace bytes.
        bytes: Vec<u8>,
    },
    /// Worker → coordinator: a shard's finished analysis.
    Outcome {
        /// The shard id from the `SHARD` message.
        id: u32,
        /// Events the engine processed.
        events: u64,
        /// End-to-end shard wall-clock in nanoseconds.
        wall_nanos: u64,
        /// Per-detector results, in registration order.
        runs: Vec<WireRun>,
    },
    /// Worker → coordinator: a shard could not be analyzed (parse error).
    Failed {
        /// The shard id from the `SHARD` message.
        id: u32,
        /// The rendered error.
        message: String,
    },
    /// Coordinator → worker: the queue is drained; disconnect.
    Done,
    /// Submit client → coordinator: send the merged report when all shards
    /// are complete.
    Submit,
    /// Coordinator → submit client: the merged report.
    Report {
        /// Distinct workers that contributed at least one shard result.
        workers: u32,
        /// Shards folded into the report.
        shards: u64,
        /// Total events across all shards.
        events: u64,
        /// Coordinator wall-clock from bind to completion, in nanoseconds.
        wall_nanos: u64,
        /// Merged per-detector results, in registration order.
        runs: Vec<WireRun>,
    },
    /// Coordinator → submit client: the run failed (earliest failing shard
    /// in input order, exactly like the local driver).
    Error {
        /// The rendered error.
        message: String,
    },
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer's `HELLO` does not open with the protocol magic.
    BadMagic,
    /// The peer speaks a protocol version this build cannot.
    BadVersion(u16),
    /// A frame carries an unknown message tag.
    BadTag(u8),
    /// A frame's declared length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A payload ended before the structure its tag requires.
    Truncated,
    /// A payload field carries an invalid value.
    Malformed(&'static str),
    /// An embedded outcome blob failed to decode.
    Outcome(outcome_wire::WireError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(error) => write!(f, "connection error: {error}"),
            ProtoError::BadMagic => write!(f, "peer did not speak the RWP protocol (bad magic)"),
            ProtoError::BadVersion(version) => {
                write!(f, "unsupported protocol version {version} (this build speaks {VERSION})")
            }
            ProtoError::BadTag(tag) => write!(f, "unknown message tag {tag}"),
            ProtoError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            ProtoError::Truncated => write!(f, "truncated message payload"),
            ProtoError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtoError::Outcome(error) => write!(f, "embedded outcome: {error}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(error: io::Error) -> Self {
        ProtoError::Io(error)
    }
}

impl From<wire::Truncated> for ProtoError {
    fn from(_: wire::Truncated) -> Self {
        ProtoError::Truncated
    }
}

impl From<outcome_wire::WireError> for ProtoError {
    fn from(error: outcome_wire::WireError) -> Self {
        ProtoError::Outcome(error)
    }
}

fn put_runs(out: &mut Vec<u8>, runs: &[WireRun]) {
    wire::put_u32(out, runs.len() as u32);
    for run in runs {
        wire::put_u64(out, run.time_nanos);
        let blob = outcome_wire::to_bytes(&run.outcome);
        wire::put_u32(out, blob.len() as u32);
        out.extend_from_slice(&blob);
    }
}

fn get_runs(cursor: &mut wire::Cursor<'_>) -> Result<Vec<WireRun>, ProtoError> {
    let count = cursor.u32()?;
    // Each run needs at least its time and blob-length prefix.
    cursor.check_count(count, 12)?;
    let mut runs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let time_nanos = cursor.u64()?;
        let len = cursor.u32()? as usize;
        let blob = cursor.take(len)?;
        runs.push(WireRun { time_nanos, outcome: outcome_wire::from_bytes(blob)? });
    }
    Ok(runs)
}

fn text_tag(text: TextFormat) -> u8 {
    match text {
        TextFormat::Std => 0,
        TextFormat::Csv => 1,
    }
}

fn text_from_tag(tag: u8) -> Result<TextFormat, ProtoError> {
    match tag {
        0 => Ok(TextFormat::Std),
        1 => Ok(TextFormat::Csv),
        _ => Err(ProtoError::Malformed("unknown text-format tag")),
    }
}

fn encode(message: &Message) -> (u8, Vec<u8>) {
    let mut payload = Vec::new();
    let tag = match message {
        Message::Hello { role } => {
            payload.extend_from_slice(&MAGIC);
            wire::put_u16(&mut payload, VERSION);
            wire::put_u8(
                &mut payload,
                match role {
                    Role::Worker => 0,
                    Role::Submit => 1,
                },
            );
            TAG_HELLO
        }
        Message::Welcome { jobs_hint, spec } => {
            wire::put_u16(&mut payload, VERSION);
            wire::put_u32(&mut payload, *jobs_hint);
            wire::put_str(&mut payload, &spec.detectors.join(","));
            wire::put_u64(&mut payload, spec.window as u64);
            wire::put_u64(&mut payload, spec.timeout_secs);
            TAG_WELCOME
        }
        Message::Lease => TAG_LEASE,
        Message::Shard { id, name, text, bytes } => {
            wire::put_u32(&mut payload, *id);
            wire::put_str(&mut payload, name);
            wire::put_u8(&mut payload, text_tag(*text));
            wire::put_u32(&mut payload, bytes.len() as u32);
            payload.extend_from_slice(bytes);
            TAG_SHARD
        }
        Message::Outcome { id, events, wall_nanos, runs } => {
            wire::put_u32(&mut payload, *id);
            wire::put_u64(&mut payload, *events);
            wire::put_u64(&mut payload, *wall_nanos);
            put_runs(&mut payload, runs);
            TAG_OUTCOME
        }
        Message::Failed { id, message } => {
            wire::put_u32(&mut payload, *id);
            wire::put_str(&mut payload, message);
            TAG_FAILED
        }
        Message::Done => TAG_DONE,
        Message::Submit => TAG_SUBMIT,
        Message::Report { workers, shards, events, wall_nanos, runs } => {
            wire::put_u32(&mut payload, *workers);
            wire::put_u64(&mut payload, *shards);
            wire::put_u64(&mut payload, *events);
            wire::put_u64(&mut payload, *wall_nanos);
            put_runs(&mut payload, runs);
            TAG_REPORT
        }
        Message::Error { message } => {
            wire::put_str(&mut payload, message);
            TAG_ERROR
        }
    };
    (tag, payload)
}

fn decode(tag: u8, payload: &[u8]) -> Result<Message, ProtoError> {
    let mut cursor = wire::Cursor::new(payload);
    let message = match tag {
        TAG_HELLO => {
            if cursor.take(MAGIC.len())? != MAGIC {
                return Err(ProtoError::BadMagic);
            }
            let version = cursor.u16()?;
            if version != VERSION {
                return Err(ProtoError::BadVersion(version));
            }
            let role = match cursor.u8()? {
                0 => Role::Worker,
                1 => Role::Submit,
                _ => return Err(ProtoError::Malformed("unknown role")),
            };
            Message::Hello { role }
        }
        TAG_WELCOME => {
            let version = cursor.u16()?;
            if version != VERSION {
                return Err(ProtoError::BadVersion(version));
            }
            let jobs_hint = cursor.u32()?;
            let list = cursor.str()?;
            let detectors = if list.is_empty() {
                Vec::new()
            } else {
                list.split(',').map(str::to_owned).collect()
            };
            let window = cursor.u64()? as usize;
            let timeout_secs = cursor.u64()?;
            Message::Welcome { jobs_hint, spec: DetectorSpec { detectors, window, timeout_secs } }
        }
        TAG_LEASE => Message::Lease,
        TAG_SHARD => {
            let id = cursor.u32()?;
            let name = cursor.str()?;
            let text = text_from_tag(cursor.u8()?)?;
            let len = cursor.u32()? as usize;
            let bytes = cursor.take(len)?.to_vec();
            Message::Shard { id, name, text, bytes }
        }
        TAG_OUTCOME => {
            let id = cursor.u32()?;
            let events = cursor.u64()?;
            let wall_nanos = cursor.u64()?;
            let runs = get_runs(&mut cursor)?;
            Message::Outcome { id, events, wall_nanos, runs }
        }
        TAG_FAILED => {
            let id = cursor.u32()?;
            let message = cursor.str()?;
            Message::Failed { id, message }
        }
        TAG_DONE => Message::Done,
        TAG_SUBMIT => Message::Submit,
        TAG_REPORT => {
            let workers = cursor.u32()?;
            let shards = cursor.u64()?;
            let events = cursor.u64()?;
            let wall_nanos = cursor.u64()?;
            let runs = get_runs(&mut cursor)?;
            Message::Report { workers, shards, events, wall_nanos, runs }
        }
        TAG_ERROR => Message::Error { message: cursor.str()? },
        other => return Err(ProtoError::BadTag(other)),
    };
    if !cursor.at_end() {
        return Err(ProtoError::Malformed("trailing bytes in payload"));
    }
    Ok(message)
}

/// Writes one message as a single frame.
///
/// # Errors
///
/// The stream's I/O error.
pub fn write_message(stream: &mut impl Write, message: &Message) -> Result<(), ProtoError> {
    let (tag, payload) = encode(message);
    let mut frame = Vec::with_capacity(5 + payload.len());
    wire::put_u8(&mut frame, tag);
    wire::put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)?;
    stream.flush()?;
    Ok(())
}

/// Outcome of one read attempt.
#[derive(Debug)]
pub enum Incoming {
    /// A complete message arrived.
    Message(Message),
    /// The peer closed the connection cleanly (EOF before a tag byte).
    Eof,
    /// The socket's read timeout expired while *waiting* for the next tag
    /// byte — no message is in flight; the caller may check its shutdown
    /// flag and try again.
    Idle,
}

/// Retries a full-buffer read across `WouldBlock`/`TimedOut`/`Interrupted`.
/// A bounded number of consecutive timeouts is tolerated (a peer may
/// legitimately trickle a large `SHARD` frame), after which the connection
/// counts as dead.
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection mid-message",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                stalls += 1;
                if stalls >= 240 {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-message",
                    ));
                }
            }
            Err(error) => return Err(error),
        }
    }
    Ok(())
}

/// Reads one message frame.
///
/// With a read timeout configured on `stream`, a timeout while waiting for
/// the *first* byte of a frame returns [`Incoming::Idle`] (nothing was
/// consumed) — the coordinator uses this to poll its shutdown flag without
/// risking a desynchronized stream.  Timeouts *inside* a frame are retried
/// (bounded), since the rest of the frame is already in flight.
///
/// # Errors
///
/// I/O failures, oversized frames, and payload decode errors.
pub fn read_message(stream: &mut TcpStream) -> Result<Incoming, ProtoError> {
    let mut tag = [0u8; 1];
    loop {
        match stream.read(&mut tag) {
            Ok(0) => return Ok(Incoming::Eof),
            Ok(_) => break,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                return Ok(Incoming::Idle)
            }
            Err(error) => return Err(error.into()),
        }
    }
    let mut len_bytes = [0u8; 4];
    read_full(stream, &mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload)?;
    Ok(Incoming::Message(decode(tag[0], &payload)?))
}

/// Blocks until a full message arrives, treating idle timeouts as a dead
/// peer after `patience` — the client-side read, where every wait has a
/// definite expected reply.
///
/// # Errors
///
/// As [`read_message`], plus an `Io` timeout after `patience` of silence
/// and an `UnexpectedEof` if the peer closes instead of replying.
pub fn expect_message(stream: &mut TcpStream, patience: Duration) -> Result<Message, ProtoError> {
    let deadline = std::time::Instant::now() + patience;
    loop {
        match read_message(stream)? {
            Incoming::Message(message) => return Ok(message),
            Incoming::Eof => {
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection instead of replying",
                )))
            }
            Incoming::Idle => {
                if std::time::Instant::now() >= deadline {
                    return Err(ProtoError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no reply from peer",
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{Metrics, PairStats, RacePair};
    use std::collections::BTreeMap;
    use std::net::{TcpListener, TcpStream};

    fn sample_outcome() -> Outcome {
        let mut races = BTreeMap::new();
        races.insert(
            RacePair::new("x", "A:1", "B:2"),
            PairStats { race_events: 2, min_distance: 5 },
        );
        let mut metrics = Metrics::new();
        metrics.record_sum("race_events", 2.0);
        Outcome { detector: "wcp".to_owned(), shards: 1, events: 10, races, metrics }
    }

    fn round_trip(message: Message) {
        // Over a real socket pair, so framing and stream behavior are the
        // ones production uses.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        write_message(&mut client, &message).unwrap();
        match read_message(&mut server).unwrap() {
            Incoming::Message(received) => assert_eq!(received, message),
            other => panic!("expected a message, got {other:?}"),
        }
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello { role: Role::Worker });
        round_trip(Message::Hello { role: Role::Submit });
        round_trip(Message::Welcome { jobs_hint: 4, spec: DetectorSpec::default() });
        round_trip(Message::Lease);
        round_trip(Message::Shard {
            id: 3,
            name: "shards/a.rwf".to_owned(),
            text: TextFormat::Csv,
            bytes: vec![1, 2, 3, 255],
        });
        round_trip(Message::Outcome {
            id: 3,
            events: 10,
            wall_nanos: 123_456,
            runs: vec![WireRun { time_nanos: 99, outcome: sample_outcome() }],
        });
        round_trip(Message::Failed { id: 1, message: "line 2: bad".to_owned() });
        round_trip(Message::Done);
        round_trip(Message::Submit);
        round_trip(Message::Report {
            workers: 2,
            shards: 4,
            events: 40,
            wall_nanos: 7,
            runs: vec![WireRun { time_nanos: 5, outcome: sample_outcome() }],
        });
        round_trip(Message::Error { message: "shard x: truncated".to_owned() });
    }

    #[test]
    fn eof_and_bad_frames_are_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Clean EOF before any frame.
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        drop(client);
        assert!(matches!(read_message(&mut server).unwrap(), Incoming::Eof));

        // Unknown tag.
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        use std::io::Write as _;
        client.write_all(&[42, 0, 0, 0, 0]).unwrap();
        assert!(matches!(read_message(&mut server), Err(ProtoError::BadTag(42))));

        // Oversized frame declaration fails before any allocation.
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let mut frame = vec![TAG_LEASE];
        frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        client.write_all(&frame).unwrap();
        assert!(matches!(read_message(&mut server), Err(ProtoError::Oversized(_))));

        // EOF mid-frame is an error, not a clean close.
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        client.write_all(&[TAG_SHARD, 200, 0, 0, 0, 1, 2]).unwrap();
        drop(client);
        assert!(matches!(read_message(&mut server), Err(ProtoError::Io(_))));
    }

    #[test]
    fn hello_rejects_foreign_magic_and_future_versions() {
        let (tag, mut payload) = encode(&Message::Hello { role: Role::Worker });
        payload[0] = b'X';
        assert!(matches!(decode(tag, &payload), Err(ProtoError::BadMagic)));

        let (tag, mut payload) = encode(&Message::Hello { role: Role::Worker });
        payload[4] = 0xEE;
        assert!(matches!(decode(tag, &payload), Err(ProtoError::BadVersion(0xEE))));

        let (tag, payload) = encode(&Message::Lease);
        assert!(matches!(decode(tag, &[payload, vec![0]].concat()), Err(ProtoError::Malformed(_))));
    }
}
