//! The coordinator/worker message protocol (`RWP` v4): length-prefixed,
//! checksummed frames over a byte stream.
//!
//! Every message is one frame — `tag u8 | length u32 LE | crc u32 LE |
//! payload` — whose payload is encoded with the same shared primitives as
//! the `.rwf` and `RWO` codecs ([`rapid_trace::format::wire`]).  The CRC-32
//! covers the tag, the length and the payload, so a frame corrupted in
//! transit (a flipped bit anywhere, including inside a numeric field that
//! would otherwise still decode) is a typed [`ProtoError::Corrupt`] — never
//! a silently wrong verdict.  Version 2 made the coordinator a resident,
//! multi-tenant service: work is grouped into *named jobs* (each carrying
//! its own [`DetectorSpec`]), shard bytes move as `SHARD_CHUNK` streams in
//! both directions (lifting v1's one-frame shard cap), and reports are
//! answered per job without shutting the service down.  Version 3 is v2
//! plus the per-frame checksum.  Version 4 makes shard transfer
//! content-addressed: every `GRANT` carries the shard's [`ContentId`]
//! (length + CRC-32 over the bytes), the worker answers `HAVE` (the bytes
//! are already in its cache — skip the chunk stream) or `PULL` (stream
//! them), and `STALE` is the coordinator's non-fatal ack for a result that
//! arrived after its shard had already folded (a lost speculation race or
//! an expired lease).  The flow:
//!
//! ```text
//! worker  → HELLO(worker)          coordinator → WELCOME(jobs hint)
//! worker  → LEASE                  coordinator → GRANT(job, shard, spec, content) | DONE
//! worker  → HAVE | PULL            coordinator → chunks (after PULL only)
//! worker  → OUTCOME(job, shard, runs) | FAILED(job, shard, message)   (repeat LEASE…)
//!                                  coordinator → STALE(job, shard) if the shard already folded
//!
//! client  → HELLO(client)          coordinator → WELCOME(jobs hint)
//! client  → JOB_OPEN(name, spec)   coordinator → JOB_ACCEPT(job) | ERROR
//! client  → SHARD_OPEN(job, shard) + chunks                    (per shard)
//! client  → JOB_CLOSE(job)         coordinator → (blocks) REPORT | ERROR
//! client  → FETCH(name)            coordinator → (blocks) REPORT | ERROR
//! client  → SHUTDOWN               coordinator → DONE (graceful drain begins)
//! ```
//!
//! `OUTCOME` and `REPORT` embed [`Outcome`] blobs in the `RWO` codec
//! ([`crate::outcome::wire`]); everything else is scalars and strings.  The
//! normative layout, the job lifecycle and the lease/requeue semantics live
//! in `docs/PROTOCOL.md`; the scheduling model the v4 additions serve is
//! described in `docs/PLACEMENT.md`.

use std::io::{self, Read, Write};
use std::time::Duration;

use rapid_trace::format::{wire, TextFormat};

use crate::detector::DetectorSpec;
use crate::outcome::wire as outcome_wire;
use crate::outcome::{Aggregation, Metric, Metrics, Outcome};

/// The four magic bytes opening every `HELLO` payload: `"RWP"` plus a NUL.
pub const MAGIC: [u8; 4] = *b"RWP\0";

/// The protocol version this build speaks.
pub const VERSION: u16 = 4;

/// Upper bound on one frame's payload (guards hostile length prefixes; a
/// shard bigger than this is split into `SHARD_CHUNK` frames, never shipped
/// as one message).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Default payload size of one `SHARD_CHUNK` frame.  Shards of any size
/// stream through chunks — there is no per-shard cap in v2, only the
/// per-frame [`MAX_FRAME_LEN`] bound every chunk trivially satisfies.
pub const CHUNK_LEN: usize = 4 << 20;

/// Consecutive mid-frame read or write timeouts tolerated before the peer
/// counts as dead.  A peer may legitimately trickle a large chunk stream,
/// but a receiver that stops draining forever must not pin a connection
/// thread (and the shard bytes it holds) indefinitely — this bound is what
/// turns a stalled peer into a typed error on both directions.
const MAX_STALLS: u32 = 240;

const TAG_HELLO: u8 = 0;
const TAG_WELCOME: u8 = 1;
const TAG_LEASE: u8 = 2;
const TAG_GRANT: u8 = 3;
const TAG_SHARD_OPEN: u8 = 4;
const TAG_SHARD_CHUNK: u8 = 5;
const TAG_OUTCOME: u8 = 6;
const TAG_FAILED: u8 = 7;
const TAG_DONE: u8 = 8;
const TAG_JOB_OPEN: u8 = 9;
const TAG_JOB_ACCEPT: u8 = 10;
const TAG_JOB_CLOSE: u8 = 11;
const TAG_REPORT: u8 = 12;
const TAG_ERROR: u8 = 13;
const TAG_FETCH: u8 = 14;
const TAG_SHUTDOWN: u8 = 15;
const TAG_HAVE: u8 = 16;
const TAG_PULL: u8 = 17;
const TAG_STALE: u8 = 18;

/// A shard's stable content identity: its byte length plus the CRC-32
/// (IEEE) of its bytes — the key the v4 scheduling layer addresses shard
/// *contents* by, independent of job names and shard indices.
///
/// The coordinator computes it once per shard (a streaming read at bind
/// for file-backed shards, at `SHARD_OPEN` for streamed ones) and ships it
/// with every `GRANT`; the worker keys its byte cache by it (so a
/// re-opened job whose bytes changed can never hit a stale entry) and the
/// coordinator's rendezvous-hash placement scores it against connected
/// workers.  Not a cryptographic identity — it guards against confusion
/// and transport damage, not adversaries, exactly like the per-frame CRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentId {
    /// The shard's byte length.
    pub len: u64,
    /// CRC-32 (IEEE) over the shard's bytes.
    pub crc: u32,
}

impl ContentId {
    /// The identity of an in-memory byte slice.
    pub fn of(bytes: &[u8]) -> Self {
        let mut crc = Crc32::new();
        crc.update(bytes);
        ContentId { len: bytes.len() as u64, crc: crc.finish() }
    }

    /// The identity of a file's contents, via a streaming read (64 KiB
    /// buffer) — the whole file is never resident.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn of_file(path: &std::path::Path) -> io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let mut crc = Crc32::new();
        let mut len = 0u64;
        let mut buf = [0u8; 64 << 10];
        loop {
            match file.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    crc.update(&buf[..n]);
                    len += n as u64;
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
        Ok(ContentId { len, crc: crc.finish() })
    }

    /// A 64-bit mixing key for hash-based placement (rendezvous scoring).
    pub fn mix_key(&self) -> u64 {
        self.len.rotate_left(32) ^ self.crc as u64
    }
}

impl std::fmt::Display for ContentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b/{:08x}", self.len, self.crc)
    }
}

/// What a connecting client wants from the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Lease shards, return outcomes.
    Worker,
    /// Open jobs, stream shards, fetch reports.
    Submit,
}

/// One detector's result as shipped over the wire: its outcome plus the
/// wall-clock its detector slice consumed, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRun {
    /// Detector time in nanoseconds ([`DetectorRun::time`](crate::DetectorRun)).
    pub time_nanos: u64,
    /// The detector's mergeable outcome.
    pub outcome: Outcome,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → coordinator: open a session.
    Hello {
        /// What the client wants.
        role: Role,
    },
    /// Coordinator → client: session accepted; here is a parallelism hint
    /// (0 = none) a worker may use when `--jobs` was not given.  Detector
    /// configuration is per job (`GRANT` carries it), not per session.
    Welcome {
        /// Suggested worker thread count; 0 means "decide yourself".
        jobs_hint: u32,
    },
    /// Worker → coordinator: give me a shard from any open job.
    Lease,
    /// Coordinator → worker: one shard to analyze, from the named job.
    /// The worker answers `HAVE` (its content-addressed cache already
    /// holds the bytes) or `PULL`; only after `PULL` do the `chunks`
    /// `SHARD_CHUNK` frames stream.
    Grant {
        /// The granting job's id (scopes `shard`).
        job: u32,
        /// The shard's index in the job's input order.
        shard: u32,
        /// Display name (the submitting side's path).
        name: String,
        /// Text flavour for non-binary content (binary is sniffed by magic).
        text: TextFormat,
        /// The detector set to build for this shard (the job's spec).
        spec: DetectorSpec,
        /// How many `SHARD_CHUNK` frames a `PULL` streams (≥ 1; an empty
        /// shard is one empty last chunk).
        chunks: u32,
        /// The shard's content identity — the worker's cache key and the
        /// integrity check over the reassembled chunk stream.
        content: ContentId,
    },
    /// Worker → coordinator: the granted shard's bytes are already in this
    /// worker's cache (matched by [`ContentId`]) — skip the chunk stream.
    Have {
        /// The job id from the `GRANT` message.
        job: u32,
        /// The shard id from the `GRANT` message.
        shard: u32,
    },
    /// Worker → coordinator: stream the granted shard's chunks.
    Pull {
        /// The job id from the `GRANT` message.
        job: u32,
        /// The shard id from the `GRANT` message.
        shard: u32,
    },
    /// Coordinator → worker: non-fatal ack for an `OUTCOME`/`FAILED` whose
    /// shard had already folded (the other side of a speculation race, or
    /// a lease that expired and was re-run elsewhere).  The worker drops
    /// the loss and keeps leasing; nothing about the job changed.
    Stale {
        /// The job the late result addressed.
        job: u32,
        /// The shard the late result addressed.
        shard: u32,
    },
    /// Client → coordinator: a shard's bytes follow as `chunks` chunk
    /// frames.  Only the connection that opened `job` may stream into it.
    ShardOpen {
        /// The target job's id (from `JOB_ACCEPT`).
        job: u32,
        /// The shard's index in the job's input order.
        shard: u32,
        /// Display name carried through to reports and errors.
        name: String,
        /// Text flavour for non-binary content.
        text: TextFormat,
        /// How many `SHARD_CHUNK` frames follow (≥ 1).
        chunks: u32,
    },
    /// One slice of a shard's bytes; flows coordinator → worker after
    /// `GRANT` and client → coordinator after `SHARD_OPEN`.  Sequence
    /// numbers start at 0 and the receiver reassembles with
    /// [`ChunkAssembler`] — out-of-order or duplicated chunks are typed
    /// errors, and `last` marks the final chunk.
    ShardChunk {
        /// The job the shard belongs to.
        job: u32,
        /// The shard the chunk belongs to.
        shard: u32,
        /// 0-based position of this chunk in the shard's byte stream.
        seq: u32,
        /// True on the shard's final chunk.
        last: bool,
        /// The chunk's bytes (empty only for an empty shard's single chunk).
        bytes: Vec<u8>,
    },
    /// Worker → coordinator: a shard's finished analysis.
    Outcome {
        /// The job id from the `GRANT` message.
        job: u32,
        /// The shard id from the `GRANT` message.
        shard: u32,
        /// Events the engine processed.
        events: u64,
        /// End-to-end shard wall-clock in nanoseconds.
        wall_nanos: u64,
        /// Per-detector results, in registration order.
        runs: Vec<WireRun>,
    },
    /// Worker → coordinator: a shard could not be analyzed (parse error).
    Failed {
        /// The job id from the `GRANT` message.
        job: u32,
        /// The shard id from the `GRANT` message.
        shard: u32,
        /// The rendered error.
        message: String,
    },
    /// Coordinator → worker: the service is draining and all work is done;
    /// disconnect.  Also the coordinator's ack to `SHUTDOWN`.
    Done,
    /// Client → coordinator: open a named job with its own detector spec.
    JobOpen {
        /// The job's unique name.
        name: String,
        /// The detector set every shard of this job runs.
        spec: DetectorSpec,
        /// How many shards the client will stream (`SHARD_OPEN`s expected).
        shards: u32,
    },
    /// Coordinator → client: the job is open; stream shards under this id.
    JobAccept {
        /// The id assigned to the job just opened.
        job: u32,
    },
    /// Client → coordinator: all shards are streamed; block until the job
    /// completes and answer `REPORT` or `ERROR`.
    JobClose {
        /// The job to close (must be this connection's).
        job: u32,
    },
    /// Coordinator → client: a job's merged report.
    Report {
        /// Distinct workers that contributed at least one shard result.
        workers: u32,
        /// Shards folded into the report.
        shards: u64,
        /// Total events across all shards.
        events: u64,
        /// Job wall-clock from open to completion, in nanoseconds.
        wall_nanos: u64,
        /// Merged per-detector results, in registration order.
        runs: Vec<WireRun>,
        /// Job-level scheduling telemetry (`bytes_transferred`,
        /// `cache_hits`, `leases_stolen`) — kept *outside* the per-detector
        /// outcomes so distributed and local merged outcomes stay
        /// `PartialEq`-identical.
        scheduling: Metrics,
    },
    /// Coordinator → client: the request failed (for a closed job: the
    /// earliest failing shard in input order, exactly like the local
    /// driver).
    Error {
        /// The rendered error.
        message: String,
    },
    /// Client → coordinator: block until the named job completes, then
    /// answer its `REPORT` or `ERROR` (report-only submit; `engine serve`
    /// registers its file-backed shards as job `"default"`).
    Fetch {
        /// The job name to report on.
        name: String,
    },
    /// Client → coordinator: begin a graceful drain — finish closed jobs,
    /// reject new ones, then exit.  Acked with `DONE`.
    Shutdown,
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The peer's `HELLO` does not open with the protocol magic.
    BadMagic,
    /// The peer speaks a protocol version this build cannot.
    BadVersion(u16),
    /// A frame carries an unknown message tag.
    BadTag(u8),
    /// A frame's declared length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A frame's CRC-32 does not match its bytes: corruption in transit.
    Corrupt {
        /// The checksum the frame header declared.
        declared: u32,
        /// The checksum of the bytes that actually arrived.
        actual: u32,
    },
    /// A payload ended before the structure its tag requires.
    Truncated,
    /// A payload field carries an invalid value.
    Malformed(&'static str),
    /// An embedded outcome blob failed to decode.
    Outcome(outcome_wire::WireError),
    /// A chunk stream arrived out of order or duplicated.
    Chunk(ChunkError),
}

/// Why a `SHARD_CHUNK` could not be appended to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkError {
    /// The chunk's sequence number was already consumed.
    Duplicate {
        /// The repeated sequence number.
        seq: u32,
    },
    /// The chunk skipped ahead of the next expected sequence number.
    Gap {
        /// The sequence number the assembler expected.
        expected: u32,
        /// The sequence number that arrived.
        got: u32,
    },
    /// A chunk arrived after the shard's `last` chunk completed it.
    AfterLast {
        /// The sequence number that arrived late.
        seq: u32,
    },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::Duplicate { seq } => write!(f, "duplicate chunk {seq}"),
            ChunkError::Gap { expected, got } => {
                write!(f, "chunk {got} arrived out of order (expected {expected})")
            }
            ChunkError::AfterLast { seq } => {
                write!(f, "chunk {seq} arrived after the shard's last chunk")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// Reassembles one shard's byte stream from its `SHARD_CHUNK` frames.
///
/// Chunks must arrive in sequence (0, 1, 2, …); anything else is a typed
/// [`ChunkError`].  [`push`](Self::push) returns the complete bytes once
/// the `last` chunk lands.
#[derive(Debug, Default)]
pub struct ChunkAssembler {
    bytes: Vec<u8>,
    next_seq: u32,
    done: bool,
}

impl ChunkAssembler {
    /// Starts an empty assembly.
    pub fn new() -> Self {
        ChunkAssembler::default()
    }

    /// Appends one chunk; returns the shard's complete bytes when `last`.
    ///
    /// # Errors
    ///
    /// [`ChunkError::Duplicate`] for an already-consumed sequence number,
    /// [`ChunkError::Gap`] for a skipped one, [`ChunkError::AfterLast`] for
    /// any chunk after completion.
    pub fn push(
        &mut self,
        seq: u32,
        last: bool,
        chunk: &[u8],
    ) -> Result<Option<Vec<u8>>, ChunkError> {
        if self.done {
            return Err(ChunkError::AfterLast { seq });
        }
        match seq.cmp(&self.next_seq) {
            std::cmp::Ordering::Less => Err(ChunkError::Duplicate { seq }),
            std::cmp::Ordering::Greater => {
                Err(ChunkError::Gap { expected: self.next_seq, got: seq })
            }
            std::cmp::Ordering::Equal => {
                self.bytes.extend_from_slice(chunk);
                self.next_seq += 1;
                if last {
                    self.done = true;
                    Ok(Some(std::mem::take(&mut self.bytes)))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// Number of `SHARD_CHUNK` frames a shard of `len` bytes occupies at the
/// given chunk payload size — at least 1 (an empty shard is one empty last
/// chunk).
pub fn chunk_count(len: u64, chunk_len: usize) -> u32 {
    let per = chunk_len.max(1) as u64;
    len.div_ceil(per).max(1) as u32
}

/// Streams `bytes` as the (job, shard) chunk sequence — exactly
/// [`chunk_count`]`(bytes.len(), chunk_len)` frames, the count the preceding
/// `GRANT`/`SHARD_OPEN` must declare.
///
/// # Errors
///
/// The stream's I/O error.
pub fn write_chunks(
    stream: &mut impl Write,
    job: u32,
    shard: u32,
    bytes: &[u8],
    chunk_len: usize,
) -> Result<(), ProtoError> {
    let chunk_len = chunk_len.max(1);
    let mut seq = 0u32;
    let mut offset = 0usize;
    loop {
        let end = (offset + chunk_len).min(bytes.len());
        let last = end == bytes.len();
        let chunk =
            Message::ShardChunk { job, shard, seq, last, bytes: bytes[offset..end].to_vec() };
        write_message(stream, &chunk)?;
        if last {
            return Ok(());
        }
        seq += 1;
        offset = end;
    }
}

/// Reads exactly `chunks` chunk frames for (job, shard) and reassembles the
/// shard's bytes.
///
/// # Errors
///
/// As [`expect_message`], plus [`ProtoError::Chunk`] for a broken sequence
/// and [`ProtoError::Malformed`] for a chunk addressed to a different
/// shard, a non-chunk message, or a count/`last` disagreement.
pub fn read_chunks(
    stream: &mut impl Read,
    job: u32,
    shard: u32,
    chunks: u32,
    patience: Duration,
) -> Result<Vec<u8>, ProtoError> {
    let mut assembler = ChunkAssembler::new();
    for index in 0..chunks {
        match expect_message(stream, patience)? {
            Message::ShardChunk { job: chunk_job, shard: chunk_shard, seq, last, bytes } => {
                if chunk_job != job || chunk_shard != shard {
                    return Err(ProtoError::Malformed("chunk addressed to a different shard"));
                }
                if last != (index + 1 == chunks) {
                    return Err(ProtoError::Malformed("chunk count disagrees with last flag"));
                }
                if let Some(complete) =
                    assembler.push(seq, last, &bytes).map_err(ProtoError::Chunk)?
                {
                    return Ok(complete);
                }
            }
            _ => return Err(ProtoError::Malformed("expected a shard chunk")),
        }
    }
    Err(ProtoError::Malformed("chunk stream ended without a last chunk"))
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(error) => write!(f, "connection error: {error}"),
            ProtoError::BadMagic => write!(f, "peer did not speak the RWP protocol (bad magic)"),
            ProtoError::BadVersion(version) => {
                write!(f, "unsupported protocol version {version} (this build speaks {VERSION})")
            }
            ProtoError::BadTag(tag) => write!(f, "unknown message tag {tag}"),
            ProtoError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            ProtoError::Corrupt { declared, actual } => {
                write!(
                    f,
                    "corrupt frame: declared checksum {declared:#010x}, bytes hash to {actual:#010x}"
                )
            }
            ProtoError::Truncated => write!(f, "truncated message payload"),
            ProtoError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtoError::Outcome(error) => write!(f, "embedded outcome: {error}"),
            ProtoError::Chunk(error) => write!(f, "shard chunk stream: {error}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(error: io::Error) -> Self {
        ProtoError::Io(error)
    }
}

impl From<wire::Truncated> for ProtoError {
    fn from(_: wire::Truncated) -> Self {
        ProtoError::Truncated
    }
}

impl From<outcome_wire::WireError> for ProtoError {
    fn from(error: outcome_wire::WireError) -> Self {
        ProtoError::Outcome(error)
    }
}

fn put_runs(out: &mut Vec<u8>, runs: &[WireRun]) {
    wire::put_u32(out, runs.len() as u32);
    for run in runs {
        wire::put_u64(out, run.time_nanos);
        let blob = outcome_wire::to_bytes(&run.outcome);
        wire::put_u32(out, blob.len() as u32);
        out.extend_from_slice(&blob);
    }
}

fn get_runs(cursor: &mut wire::Cursor<'_>) -> Result<Vec<WireRun>, ProtoError> {
    let count = cursor.u32()?;
    // Each run needs at least its time and blob-length prefix.
    cursor.check_count(count, 12)?;
    let mut runs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let time_nanos = cursor.u64()?;
        let len = cursor.u32()? as usize;
        let blob = cursor.take(len)?;
        runs.push(WireRun { time_nanos, outcome: outcome_wire::from_bytes(blob)? });
    }
    Ok(runs)
}

fn put_metrics(out: &mut Vec<u8>, metrics: &Metrics) {
    wire::put_u32(out, metrics.len() as u32);
    for (name, metric) in metrics.iter() {
        wire::put_str(out, name);
        wire::put_u8(
            out,
            match metric.aggregation {
                Aggregation::Sum => 0,
                Aggregation::Max => 1,
            },
        );
        wire::put_u64(out, metric.value.to_bits());
    }
}

fn get_metrics(cursor: &mut wire::Cursor<'_>) -> Result<Metrics, ProtoError> {
    let count = cursor.u32()?;
    // Each entry needs at least its name-length prefix, rule and value.
    cursor.check_count(count, 11)?;
    let mut metrics = Metrics::new();
    for _ in 0..count {
        let name = cursor.str()?;
        let aggregation = match cursor.u8()? {
            0 => Aggregation::Sum,
            1 => Aggregation::Max,
            _ => return Err(ProtoError::Malformed("unknown metric aggregation")),
        };
        let value = f64::from_bits(cursor.u64()?);
        metrics.record(name, Metric { aggregation, value });
    }
    Ok(metrics)
}

fn put_content(out: &mut Vec<u8>, content: ContentId) {
    wire::put_u64(out, content.len);
    wire::put_u32(out, content.crc);
}

fn get_content(cursor: &mut wire::Cursor<'_>) -> Result<ContentId, ProtoError> {
    let len = cursor.u64()?;
    let crc = cursor.u32()?;
    Ok(ContentId { len, crc })
}

fn put_spec(out: &mut Vec<u8>, spec: &DetectorSpec) {
    wire::put_str(out, &spec.detectors.join(","));
    wire::put_u64(out, spec.window as u64);
    wire::put_u64(out, spec.timeout_secs);
}

fn get_spec(cursor: &mut wire::Cursor<'_>) -> Result<DetectorSpec, ProtoError> {
    let list = cursor.str()?;
    let detectors =
        if list.is_empty() { Vec::new() } else { list.split(',').map(str::to_owned).collect() };
    let window = cursor.u64()? as usize;
    let timeout_secs = cursor.u64()?;
    Ok(DetectorSpec { detectors, window, timeout_secs })
}

fn text_tag(text: TextFormat) -> u8 {
    match text {
        TextFormat::Std => 0,
        TextFormat::Csv => 1,
    }
}

fn text_from_tag(tag: u8) -> Result<TextFormat, ProtoError> {
    match tag {
        0 => Ok(TextFormat::Std),
        1 => Ok(TextFormat::Csv),
        _ => Err(ProtoError::Malformed("unknown text-format tag")),
    }
}

fn encode(message: &Message) -> (u8, Vec<u8>) {
    let mut payload = Vec::new();
    let tag = match message {
        Message::Hello { role } => {
            payload.extend_from_slice(&MAGIC);
            wire::put_u16(&mut payload, VERSION);
            wire::put_u8(
                &mut payload,
                match role {
                    Role::Worker => 0,
                    Role::Submit => 1,
                },
            );
            TAG_HELLO
        }
        Message::Welcome { jobs_hint } => {
            wire::put_u16(&mut payload, VERSION);
            wire::put_u32(&mut payload, *jobs_hint);
            TAG_WELCOME
        }
        Message::Lease => TAG_LEASE,
        Message::Grant { job, shard, name, text, spec, chunks, content } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            wire::put_str(&mut payload, name);
            wire::put_u8(&mut payload, text_tag(*text));
            put_spec(&mut payload, spec);
            wire::put_u32(&mut payload, *chunks);
            put_content(&mut payload, *content);
            TAG_GRANT
        }
        Message::Have { job, shard } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            TAG_HAVE
        }
        Message::Pull { job, shard } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            TAG_PULL
        }
        Message::Stale { job, shard } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            TAG_STALE
        }
        Message::ShardOpen { job, shard, name, text, chunks } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            wire::put_str(&mut payload, name);
            wire::put_u8(&mut payload, text_tag(*text));
            wire::put_u32(&mut payload, *chunks);
            TAG_SHARD_OPEN
        }
        Message::ShardChunk { job, shard, seq, last, bytes } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            wire::put_u32(&mut payload, *seq);
            wire::put_u8(&mut payload, u8::from(*last));
            wire::put_u32(&mut payload, bytes.len() as u32);
            payload.extend_from_slice(bytes);
            TAG_SHARD_CHUNK
        }
        Message::Outcome { job, shard, events, wall_nanos, runs } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            wire::put_u64(&mut payload, *events);
            wire::put_u64(&mut payload, *wall_nanos);
            put_runs(&mut payload, runs);
            TAG_OUTCOME
        }
        Message::Failed { job, shard, message } => {
            wire::put_u32(&mut payload, *job);
            wire::put_u32(&mut payload, *shard);
            wire::put_str(&mut payload, message);
            TAG_FAILED
        }
        Message::Done => TAG_DONE,
        Message::JobOpen { name, spec, shards } => {
            wire::put_str(&mut payload, name);
            put_spec(&mut payload, spec);
            wire::put_u32(&mut payload, *shards);
            TAG_JOB_OPEN
        }
        Message::JobAccept { job } => {
            wire::put_u32(&mut payload, *job);
            TAG_JOB_ACCEPT
        }
        Message::JobClose { job } => {
            wire::put_u32(&mut payload, *job);
            TAG_JOB_CLOSE
        }
        Message::Fetch { name } => {
            wire::put_str(&mut payload, name);
            TAG_FETCH
        }
        Message::Shutdown => TAG_SHUTDOWN,
        Message::Report { workers, shards, events, wall_nanos, runs, scheduling } => {
            wire::put_u32(&mut payload, *workers);
            wire::put_u64(&mut payload, *shards);
            wire::put_u64(&mut payload, *events);
            wire::put_u64(&mut payload, *wall_nanos);
            put_runs(&mut payload, runs);
            put_metrics(&mut payload, scheduling);
            TAG_REPORT
        }
        Message::Error { message } => {
            wire::put_str(&mut payload, message);
            TAG_ERROR
        }
    };
    (tag, payload)
}

fn decode(tag: u8, payload: &[u8]) -> Result<Message, ProtoError> {
    let mut cursor = wire::Cursor::new(payload);
    let message = match tag {
        TAG_HELLO => {
            if cursor.take(MAGIC.len())? != MAGIC {
                return Err(ProtoError::BadMagic);
            }
            let version = cursor.u16()?;
            if version != VERSION {
                return Err(ProtoError::BadVersion(version));
            }
            let role = match cursor.u8()? {
                0 => Role::Worker,
                1 => Role::Submit,
                _ => return Err(ProtoError::Malformed("unknown role")),
            };
            Message::Hello { role }
        }
        TAG_WELCOME => {
            let version = cursor.u16()?;
            if version != VERSION {
                return Err(ProtoError::BadVersion(version));
            }
            let jobs_hint = cursor.u32()?;
            Message::Welcome { jobs_hint }
        }
        TAG_LEASE => Message::Lease,
        TAG_GRANT => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            let name = cursor.str()?;
            let text = text_from_tag(cursor.u8()?)?;
            let spec = get_spec(&mut cursor)?;
            let chunks = cursor.u32()?;
            let content = get_content(&mut cursor)?;
            Message::Grant { job, shard, name, text, spec, chunks, content }
        }
        TAG_HAVE => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            Message::Have { job, shard }
        }
        TAG_PULL => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            Message::Pull { job, shard }
        }
        TAG_STALE => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            Message::Stale { job, shard }
        }
        TAG_SHARD_OPEN => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            let name = cursor.str()?;
            let text = text_from_tag(cursor.u8()?)?;
            let chunks = cursor.u32()?;
            Message::ShardOpen { job, shard, name, text, chunks }
        }
        TAG_SHARD_CHUNK => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            let seq = cursor.u32()?;
            let last = match cursor.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtoError::Malformed("unknown last-chunk flag")),
            };
            let len = cursor.u32()? as usize;
            let bytes = cursor.take(len)?.to_vec();
            Message::ShardChunk { job, shard, seq, last, bytes }
        }
        TAG_OUTCOME => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            let events = cursor.u64()?;
            let wall_nanos = cursor.u64()?;
            let runs = get_runs(&mut cursor)?;
            Message::Outcome { job, shard, events, wall_nanos, runs }
        }
        TAG_FAILED => {
            let job = cursor.u32()?;
            let shard = cursor.u32()?;
            let message = cursor.str()?;
            Message::Failed { job, shard, message }
        }
        TAG_DONE => Message::Done,
        TAG_JOB_OPEN => {
            let name = cursor.str()?;
            let spec = get_spec(&mut cursor)?;
            let shards = cursor.u32()?;
            Message::JobOpen { name, spec, shards }
        }
        TAG_JOB_ACCEPT => Message::JobAccept { job: cursor.u32()? },
        TAG_JOB_CLOSE => Message::JobClose { job: cursor.u32()? },
        TAG_FETCH => Message::Fetch { name: cursor.str()? },
        TAG_SHUTDOWN => Message::Shutdown,
        TAG_REPORT => {
            let workers = cursor.u32()?;
            let shards = cursor.u64()?;
            let events = cursor.u64()?;
            let wall_nanos = cursor.u64()?;
            let runs = get_runs(&mut cursor)?;
            let scheduling = get_metrics(&mut cursor)?;
            Message::Report { workers, shards, events, wall_nanos, runs, scheduling }
        }
        TAG_ERROR => Message::Error { message: cursor.str()? },
        other => return Err(ProtoError::BadTag(other)),
    };
    if !cursor.at_end() {
        return Err(ProtoError::Malformed("trailing bytes in payload"));
    }
    Ok(message)
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
}

struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = CRC_TABLE[((self.0 ^ byte as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// The CRC-32 (IEEE) a frame's header must declare: over the tag byte, the
/// little-endian length and the payload bytes.
fn frame_crc(tag: u8, len: u32, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[tag]);
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// Retries a write across `WouldBlock`/`TimedOut`/`Interrupted`, with the
/// same bounded-stall policy as [`read_full`].  `std`'s `write_all` errors
/// out on the *first* timeout, so a connection with a write timeout
/// configured needs this loop — and the [`MAX_STALLS`] bound is the
/// `SHARD_CHUNK` backpressure valve: a receiver that stops draining kills
/// the connection with a typed timeout instead of pinning the sender (and
/// the shard bytes it holds) forever.
fn write_full(stream: &mut impl Write, buf: &[u8]) -> io::Result<()> {
    let mut written = 0;
    let mut stalls = 0u32;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-message",
                ))
            }
            Ok(n) => {
                written += n;
                stalls = 0;
            }
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                stalls += 1;
                if stalls >= MAX_STALLS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-message (stopped draining)",
                    ));
                }
            }
            Err(error) => return Err(error),
        }
    }
    Ok(())
}

/// Writes one message as a single checksummed frame.
///
/// # Errors
///
/// The stream's I/O error, including a typed timeout when the peer stops
/// draining for [`MAX_STALLS`] consecutive write timeouts (backpressure).
pub fn write_message(stream: &mut impl Write, message: &Message) -> Result<(), ProtoError> {
    let (tag, payload) = encode(message);
    let mut frame = Vec::with_capacity(9 + payload.len());
    wire::put_u8(&mut frame, tag);
    wire::put_u32(&mut frame, payload.len() as u32);
    wire::put_u32(&mut frame, frame_crc(tag, payload.len() as u32, &payload));
    frame.extend_from_slice(&payload);
    write_full(stream, &frame)?;
    stream.flush()?;
    Ok(())
}

/// Outcome of one read attempt.
#[derive(Debug)]
pub enum Incoming {
    /// A complete message arrived.
    Message(Message),
    /// The peer closed the connection cleanly (EOF before a tag byte).
    Eof,
    /// The socket's read timeout expired while *waiting* for the next tag
    /// byte — no message is in flight; the caller may check its shutdown
    /// flag and try again.
    Idle,
}

/// Retries a full-buffer read across `WouldBlock`/`TimedOut`/`Interrupted`.
/// A bounded number of consecutive timeouts is tolerated (a peer may
/// legitimately trickle a large `SHARD` frame), after which the connection
/// counts as dead.
fn read_full(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection mid-message",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                stalls += 1;
                if stalls >= MAX_STALLS {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-message",
                    ));
                }
            }
            Err(error) => return Err(error),
        }
    }
    Ok(())
}

/// Reads one message frame.
///
/// With a read timeout configured on `stream`, a timeout while waiting for
/// the *first* byte of a frame returns [`Incoming::Idle`] (nothing was
/// consumed) — the coordinator uses this to poll its shutdown flag without
/// risking a desynchronized stream.  Timeouts *inside* a frame are retried
/// (bounded), since the rest of the frame is already in flight.
///
/// # Errors
///
/// I/O failures, oversized frames, corrupt checksums, and payload decode
/// errors.
pub fn read_message(stream: &mut impl Read) -> Result<Incoming, ProtoError> {
    let mut tag = [0u8; 1];
    loop {
        match stream.read(&mut tag) {
            Ok(0) => return Ok(Incoming::Eof),
            Ok(_) => break,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error)
                if matches!(error.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                return Ok(Incoming::Idle)
            }
            Err(error) => return Err(error.into()),
        }
    }
    let mut header = [0u8; 8];
    read_full(stream, &mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
    let declared = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload)?;
    let actual = frame_crc(tag[0], len, &payload);
    if actual != declared {
        return Err(ProtoError::Corrupt { declared, actual });
    }
    Ok(Incoming::Message(decode(tag[0], &payload)?))
}

/// Blocks until a full message arrives, treating idle timeouts as a dead
/// peer after `patience` — the client-side read, where every wait has a
/// definite expected reply.
///
/// # Errors
///
/// As [`read_message`], plus an `Io` timeout after `patience` of silence
/// and an `UnexpectedEof` if the peer closes instead of replying.
pub fn expect_message(stream: &mut impl Read, patience: Duration) -> Result<Message, ProtoError> {
    let deadline = std::time::Instant::now() + patience;
    loop {
        match read_message(stream)? {
            Incoming::Message(message) => return Ok(message),
            Incoming::Eof => {
                return Err(ProtoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the connection instead of replying",
                )))
            }
            Incoming::Idle => {
                if std::time::Instant::now() >= deadline {
                    return Err(ProtoError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no reply from peer",
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{Metrics, PairStats, RacePair};
    use std::collections::BTreeMap;
    use std::net::{TcpListener, TcpStream};

    fn sample_outcome() -> Outcome {
        let mut races = BTreeMap::new();
        races.insert(
            RacePair::new("x", "A:1", "B:2"),
            PairStats { race_events: 2, min_distance: 5 },
        );
        let mut metrics = Metrics::new();
        metrics.record_sum("race_events", 2.0);
        Outcome { detector: "wcp".to_owned(), shards: 1, events: 10, races, metrics }
    }

    fn round_trip(message: Message) {
        // Over a real socket pair, so framing and stream behavior are the
        // ones production uses.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        write_message(&mut client, &message).unwrap();
        match read_message(&mut server).unwrap() {
            Incoming::Message(received) => assert_eq!(received, message),
            other => panic!("expected a message, got {other:?}"),
        }
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello { role: Role::Worker });
        round_trip(Message::Hello { role: Role::Submit });
        round_trip(Message::Welcome { jobs_hint: 4 });
        round_trip(Message::Lease);
        round_trip(Message::Grant {
            job: 7,
            shard: 3,
            name: "shards/a.rwf".to_owned(),
            text: TextFormat::Csv,
            spec: DetectorSpec::default(),
            chunks: 2,
            content: ContentId { len: 4096, crc: 0xDEAD_BEEF },
        });
        round_trip(Message::Have { job: 7, shard: 3 });
        round_trip(Message::Pull { job: 7, shard: 3 });
        round_trip(Message::Stale { job: 7, shard: 3 });
        round_trip(Message::ShardOpen {
            job: 7,
            shard: 3,
            name: "shards/a.rwf".to_owned(),
            text: TextFormat::Std,
            chunks: 1,
        });
        round_trip(Message::ShardChunk {
            job: 7,
            shard: 3,
            seq: 0,
            last: false,
            bytes: vec![1, 2, 3, 255],
        });
        round_trip(Message::ShardChunk { job: 7, shard: 3, seq: 1, last: true, bytes: Vec::new() });
        round_trip(Message::Outcome {
            job: 7,
            shard: 3,
            events: 10,
            wall_nanos: 123_456,
            runs: vec![WireRun { time_nanos: 99, outcome: sample_outcome() }],
        });
        round_trip(Message::Failed { job: 7, shard: 1, message: "line 2: bad".to_owned() });
        round_trip(Message::Done);
        round_trip(Message::JobOpen {
            name: "nightly".to_owned(),
            spec: DetectorSpec::default(),
            shards: 4,
        });
        round_trip(Message::JobAccept { job: 7 });
        round_trip(Message::JobClose { job: 7 });
        round_trip(Message::Fetch { name: "default".to_owned() });
        round_trip(Message::Shutdown);
        let mut scheduling = Metrics::new();
        scheduling.record_sum("bytes_transferred", 8192.0);
        scheduling.record_sum("cache_hits", 3.0);
        scheduling.record_sum("leases_stolen", 1.0);
        round_trip(Message::Report {
            workers: 2,
            shards: 4,
            events: 40,
            wall_nanos: 7,
            runs: vec![WireRun { time_nanos: 5, outcome: sample_outcome() }],
            scheduling,
        });
        round_trip(Message::Report {
            workers: 1,
            shards: 1,
            events: 2,
            wall_nanos: 9,
            runs: Vec::new(),
            scheduling: Metrics::new(),
        });
        round_trip(Message::Error { message: "shard x: truncated".to_owned() });
    }

    #[test]
    fn content_ids_are_stable_and_collision_averse() {
        // The identity is a pure function of the bytes…
        let bytes = b"t1|w(x)\nt2|w(x)\n".to_vec();
        let id = ContentId::of(&bytes);
        assert_eq!(id, ContentId::of(&bytes));
        assert_eq!(id.len, bytes.len() as u64);
        // …and any change to them (content or length) changes it.
        let mut flipped = bytes.clone();
        flipped[3] ^= 1;
        assert_ne!(id, ContentId::of(&flipped));
        assert_ne!(id, ContentId::of(&bytes[..bytes.len() - 1]));
        // The file path agrees byte for byte with the in-memory path.
        let path =
            std::env::temp_dir().join(format!("rapid-content-id-{}.std", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(ContentId::of_file(&path).unwrap(), id);
        std::fs::remove_file(&path).ok();
        // Display is compact (it lands in log lines and error messages).
        assert_eq!(format!("{}", ContentId { len: 10, crc: 0xAB }), "10b/000000ab");
    }

    #[test]
    fn chunk_assembler_rejects_broken_sequences_with_typed_errors() {
        let mut assembler = ChunkAssembler::new();
        assert_eq!(assembler.push(0, false, b"ab").unwrap(), None);

        // Duplicate of a consumed chunk.
        assert_eq!(assembler.push(0, false, b"ab").unwrap_err(), ChunkError::Duplicate { seq: 0 });

        // A skipped sequence number.
        assert_eq!(
            assembler.push(2, false, b"zz").unwrap_err(),
            ChunkError::Gap { expected: 1, got: 2 }
        );

        // Errors do not corrupt the assembly: the right chunk still lands.
        assert_eq!(assembler.push(1, true, b"c").unwrap(), Some(b"abc".to_vec()));

        // Anything after `last` is typed, too.
        assert_eq!(assembler.push(2, true, b"d").unwrap_err(), ChunkError::AfterLast { seq: 2 });
    }

    #[test]
    fn chunked_shards_stream_over_sockets_byte_exact() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(Duration::from_millis(100))).unwrap();

        // 10 bytes in 3-byte chunks: 4 frames, the last a 1-byte tail.
        let bytes: Vec<u8> = (0u8..10).collect();
        assert_eq!(chunk_count(bytes.len() as u64, 3), 4);
        write_chunks(&mut client, 1, 2, &bytes, 3).unwrap();
        let rebuilt = read_chunks(&mut server, 1, 2, 4, Duration::from_secs(5)).unwrap();
        assert_eq!(rebuilt, bytes);

        // An empty shard is exactly one empty last chunk.
        assert_eq!(chunk_count(0, 3), 1);
        write_chunks(&mut client, 1, 3, &[], 3).unwrap();
        let rebuilt = read_chunks(&mut server, 1, 3, 1, Duration::from_secs(5)).unwrap();
        assert_eq!(rebuilt, Vec::<u8>::new());

        // A chunk for the wrong shard is Malformed, not silently merged.
        write_chunks(&mut client, 1, 9, b"xy", 3).unwrap();
        assert!(matches!(
            read_chunks(&mut server, 1, 4, 1, Duration::from_secs(5)),
            Err(ProtoError::Malformed(_))
        ));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64, ..proptest::prelude::ProptestConfig::default()
        })]

        /// Every split of a shard's bytes reassembles byte-exact.
        #[test]
        fn every_chunk_split_reassembles_byte_exact(
            bytes in proptest::collection::vec(
                proptest::strategy::Strategy::prop_map(0u16..256, |byte| byte as u8),
                0..256,
            ),
            chunk_len in 1usize..64,
        ) {
            let total = chunk_count(bytes.len() as u64, chunk_len);
            let mut assembler = ChunkAssembler::new();
            let mut rebuilt = None;
            for seq in 0..total {
                let start = seq as usize * chunk_len;
                let end = (start + chunk_len).min(bytes.len());
                let last = seq + 1 == total;
                let pushed = assembler.push(seq, last, &bytes[start..end]).unwrap();
                proptest::prop_assert_eq!(pushed.is_some(), last);
                if last {
                    rebuilt = pushed;
                }
            }
            proptest::prop_assert_eq!(rebuilt.as_deref(), Some(bytes.as_slice()));
        }

        /// Adversarial chunk streams: any truncation, duplication, reorder
        /// or bit-flip of a framed `SHARD_CHUNK` stream yields a typed
        /// error or the byte-exact shard — never a panic, never wrong
        /// bytes.
        #[test]
        fn mutated_chunk_streams_are_typed_errors_or_byte_exact(
            bytes in proptest::collection::vec(
                proptest::strategy::Strategy::prop_map(0u16..256, |byte| byte as u8),
                0..160,
            ),
            chunk_len in 1usize..48,
            mutation in 0usize..4,
            position in 0usize..4096,
            bit in 0u32..8,
        ) {
            // Encode the stream frame by frame so mutations can address
            // whole frames (duplicate/reorder) as well as raw bytes.
            let chunks = chunk_count(bytes.len() as u64, chunk_len);
            let mut frames = Vec::new();
            for seq in 0..chunks {
                let start = seq as usize * chunk_len;
                let end = (start + chunk_len).min(bytes.len());
                let last = seq + 1 == chunks;
                frames.push(frame_bytes(&Message::ShardChunk {
                    job: 1,
                    shard: 2,
                    seq,
                    last,
                    bytes: bytes[start..end].to_vec(),
                }));
            }

            let mut flipped = false;
            match mutation {
                // Truncate the raw byte stream.
                0 => {
                    let total: usize = frames.iter().map(Vec::len).sum();
                    let cut = position % (total + 1);
                    let mut flat: Vec<u8> = frames.concat();
                    flat.truncate(cut);
                    frames = vec![flat];
                }
                // Duplicate one frame in place.
                1 => {
                    let index = position % frames.len();
                    let copy = frames[index].clone();
                    frames.insert(index, copy);
                }
                // Swap two adjacent frames (no-op on 1-frame streams).
                2 => {
                    if frames.len() >= 2 {
                        let index = position % (frames.len() - 1);
                        frames.swap(index, index + 1);
                    }
                }
                // Flip one bit somewhere in the stream.
                _ => {
                    let mut flat: Vec<u8> = frames.concat();
                    let index = position % flat.len().max(1);
                    if !flat.is_empty() {
                        flat[index] ^= 1 << bit;
                        flipped = true;
                    }
                    frames = vec![flat];
                }
            }

            let stream: Vec<u8> = frames.concat();
            let result =
                read_chunks(&mut stream.as_slice(), 1, 2, chunks, Duration::from_secs(5));
            match result {
                // Only harmless mutations may succeed — and then the shard
                // must be byte-exact.
                Ok(rebuilt) => {
                    proptest::prop_assert!(!flipped, "a flipped stream must not reassemble");
                    proptest::prop_assert_eq!(rebuilt, bytes);
                }
                // Everything else must be one of the typed proto errors.
                Err(error) => {
                    proptest::prop_assert!(matches!(
                        error,
                        ProtoError::Io(_)
                            | ProtoError::Corrupt { .. }
                            | ProtoError::Chunk(_)
                            | ProtoError::Malformed(_)
                            | ProtoError::Oversized(_)
                            | ProtoError::BadTag(_)
                    ));
                }
            }
        }
    }

    #[test]
    fn eof_and_bad_frames_are_typed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Clean EOF before any frame.
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        drop(client);
        assert!(matches!(read_message(&mut server).unwrap(), Incoming::Eof));

        // Unknown tag (with a valid checksum, so the tag check is what fires).
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        use std::io::Write as _;
        let mut frame = vec![42u8, 0, 0, 0, 0];
        frame.extend_from_slice(&frame_crc(42, 0, &[]).to_le_bytes());
        client.write_all(&frame).unwrap();
        assert!(matches!(read_message(&mut server), Err(ProtoError::BadTag(42))));

        // Oversized frame declaration fails before any allocation.
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let mut frame = vec![TAG_LEASE];
        frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        frame.extend_from_slice(&[0, 0, 0, 0]);
        client.write_all(&frame).unwrap();
        assert!(matches!(read_message(&mut server), Err(ProtoError::Oversized(_))));

        // EOF mid-frame is an error, not a clean close.
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        client.write_all(&[TAG_SHARD_CHUNK, 200, 0, 0, 0, 1, 2]).unwrap();
        drop(client);
        assert!(matches!(read_message(&mut server), Err(ProtoError::Io(_))));
    }

    /// Encodes one message to its raw frame bytes (what a socket would see).
    fn frame_bytes(message: &Message) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_message(&mut bytes, message).unwrap();
        bytes
    }

    #[test]
    fn bit_flipped_frames_are_typed_corrupt_errors() {
        // Satellite regression: a SHARD_CHUNK whose body was flipped in
        // transit must surface as the typed `Corrupt` error, never as
        // silently wrong shard bytes (the chunk would otherwise decode —
        // the length prefix and flags still parse).
        let chunk =
            Message::ShardChunk { job: 1, shard: 2, seq: 0, last: true, bytes: vec![7; 64] };
        let clean = frame_bytes(&chunk);
        for position in [9, 20, clean.len() - 1] {
            for bit in [0, 3, 7] {
                let mut corrupted = clean.clone();
                corrupted[position] ^= 1 << bit;
                let result = read_message(&mut corrupted.as_slice());
                assert!(
                    matches!(result, Err(ProtoError::Corrupt { .. })),
                    "flip at byte {position} bit {bit}: {result:?}"
                );
            }
        }

        // Flips in the header (tag or length) are typed too — Corrupt or,
        // for a length flipped far upward, a bounded I/O error; never Ok.
        for position in 0..9 {
            let mut corrupted = clean.clone();
            corrupted[position] ^= 1;
            assert!(
                read_message(&mut corrupted.as_slice()).is_err(),
                "header flip at byte {position} must not decode"
            );
        }
    }

    /// A sink that never accepts a byte, as a stalled receiver looks to a
    /// sender with a write timeout configured.
    struct StalledSink;

    impl Write for StalledSink {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::WouldBlock, "full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_to_a_stalled_receiver_fail_bounded_not_forever() {
        // Backpressure: a receiver that stops draining kills the write with
        // a typed timeout after MAX_STALLS attempts instead of pinning the
        // sender (and the shard bytes it holds) forever.
        let error = write_message(&mut StalledSink, &Message::Lease).unwrap_err();
        match error {
            ProtoError::Io(io) => assert_eq!(io.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected a typed I/O timeout, got {other:?}"),
        }
    }

    #[test]
    fn hello_rejects_foreign_magic_and_future_versions() {
        let (tag, mut payload) = encode(&Message::Hello { role: Role::Worker });
        payload[0] = b'X';
        assert!(matches!(decode(tag, &payload), Err(ProtoError::BadMagic)));

        let (tag, mut payload) = encode(&Message::Hello { role: Role::Worker });
        payload[4] = 0xEE;
        assert!(matches!(decode(tag, &payload), Err(ProtoError::BadVersion(0xEE))));

        let (tag, payload) = encode(&Message::Lease);
        assert!(matches!(decode(tag, &[payload, vec![0]].concat()), Err(ProtoError::Malformed(_))));
    }
}
