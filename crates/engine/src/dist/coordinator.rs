//! The coordinator: a resident, multi-tenant detection service.  It owns a
//! registry of named jobs, leases their shards to TCP workers, requeues
//! work from dead workers, and folds each job's incoming outcomes through
//! the same merge path as a local `jobs = N` run — answering `REPORT` per
//! job without shutting the service down.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rapid_trace::format::TextFormat;

use crate::detector::DetectorSpec;
use crate::driver::{fold_runs, DriverError, MultiReport, ShardRun};
use crate::engine::DetectorRun;

use super::chaos::{ChaosConfig, RwpStream};
use super::proto::{self, Incoming, Message, Role, WireRun};

/// The name under which `engine serve FILES…` registers its file-backed
/// shards, and the job a bare `engine submit` (no `--job`) fetches.
pub const DEFAULT_JOB: &str = "default";

/// Upper bound on one job's declared shard count (guards a hostile
/// `JOB_OPEN` against pre-allocating unbounded slot vectors).
pub const MAX_JOB_SHARDS: u32 = 1 << 20;

/// How long the coordinator waits between chunks of a shard a client is
/// actively streaming before declaring the connection dead.
const STREAM_PATIENCE: Duration = Duration::from_secs(60);

/// Configuration of one [`Coordinator`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on (e.g. `127.0.0.1:7471`; port 0 picks a free
    /// port, exposed via [`Coordinator::local_addr`]).
    pub bind: String,
    /// The detector set of the pre-registered [`DEFAULT_JOB`] (the shard
    /// files passed to [`Coordinator::bind`]).  Jobs opened over the wire
    /// carry their own spec.
    pub spec: DetectorSpec,
    /// Text flavour override for the default job's shards; `None` decides
    /// per shard by file extension.
    pub text: Option<TextFormat>,
    /// Parallelism hint advertised to workers (0 = let workers decide).
    pub jobs_hint: u32,
    /// How long a leased shard may stay unacknowledged before it is
    /// requeued for another worker.
    pub lease_timeout: Duration,
    /// Payload size of the `SHARD_CHUNK` frames the coordinator sends to
    /// workers (tests use tiny values to force multi-chunk transfers).
    pub chunk_len: usize,
    /// One-shot mode: begin a graceful drain after the first report is
    /// answered — the v1 `serve` semantics.
    pub once: bool,
    /// Test/bench-only fault injection on accepted connections (default
    /// off: every connection is a plain stream with zero overhead).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    /// Bind an ephemeral localhost port, WCP + HB, 60-second leases,
    /// resident (not one-shot).
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            spec: DetectorSpec::default(),
            text: None,
            jobs_hint: 0,
            lease_timeout: Duration::from_secs(60),
            chunk_len: proto::CHUNK_LEN,
            once: false,
            chaos: ChaosConfig::default(),
        }
    }
}

/// What one completed (or aborted) job produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The merged report, shaped exactly like a local [`run_shards`]
    /// result (`jobs` carries the number of distinct workers that
    /// contributed), or the job's failure: the earliest failing shard in
    /// input order, or an abort message if the service drained before the
    /// job was closed.
    ///
    /// [`run_shards`]: crate::driver::run_shards
    pub result: Result<MultiReport, String>,
}

/// What a full serve run produced: every job the service answered, in the
/// order they were opened.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Per-job outcomes, in job-open order.
    pub jobs: Vec<JobOutcome>,
}

/// Where a shard's bytes come from.  File-backed shards (the default job)
/// are read per *lease*, not held for the whole run; streamed shards hold
/// the client's bytes until the job completes.
enum ShardSource {
    Path(PathBuf),
    Bytes(Arc<Vec<u8>>),
}

/// One shard as the coordinator stores it.
struct ShardMeta {
    name: String,
    text: TextFormat,
    source: ShardSource,
}

/// An outstanding lease.
struct Lease {
    worker: u64,
    deadline: Instant,
}

/// One named job: its spec, its shard slots, and its queue bookkeeping.
struct Job {
    name: String,
    spec: DetectorSpec,
    /// How many shards the job declared at open; shard ids are `0..declared`.
    declared: u32,
    /// Shard slots, filled as `SHARD_OPEN` streams arrive (the default job
    /// is fully filled at bind).
    shards: Vec<Option<ShardMeta>>,
    /// Filled shard slots (`== declared` before the job may close).
    streamed: u32,
    /// Still accepting `SHARD_OPEN`s; a job folds only once closed.
    open: bool,
    /// Set when a drain kills the job before its client closed it.
    aborted: Option<String>,
    /// Shard indices awaiting a lease.
    pending: VecDeque<usize>,
    /// Outstanding leases by shard index.
    leases: HashMap<usize, Lease>,
    /// Workers that already failed (or timed out on) a shard — keeps a
    /// shard from bouncing straight back to the worker it was reclaimed
    /// from.
    excluded: HashMap<usize, HashSet<u64>>,
    /// Completed results, slotted by shard index.
    results: Vec<Option<Result<ShardRun, DriverError>>>,
    completed: u32,
    /// Workers that contributed at least one accepted result.
    contributors: HashSet<u64>,
    started: Instant,
    finished: Option<Instant>,
}

impl Job {
    fn new(name: String, spec: DetectorSpec, declared: u32) -> Self {
        Job {
            name,
            spec,
            declared,
            shards: (0..declared).map(|_| None).collect(),
            streamed: 0,
            open: true,
            aborted: None,
            pending: VecDeque::new(),
            leases: HashMap::new(),
            excluded: HashMap::new(),
            results: (0..declared).map(|_| None).collect(),
            completed: 0,
            contributors: HashSet::new(),
            started: Instant::now(),
            finished: None,
        }
    }

    /// A job is complete once it can never produce more results: aborted,
    /// or closed with every shard accounted for.
    fn is_complete(&self) -> bool {
        self.aborted.is_some() || (!self.open && self.completed == self.declared)
    }

    /// The display name of a shard, for error paths (falls back to the
    /// index if the slot was never streamed — which a granted lease rules
    /// out).
    fn shard_name(&self, shard: usize) -> String {
        match self.shards.get(shard).and_then(Option::as_ref) {
            Some(meta) => meta.name.clone(),
            None => format!("shard {shard}"),
        }
    }

    /// Folds the job's results exactly like the local driver: earliest
    /// failing shard in input order wins; otherwise [`fold_runs`] merges
    /// in input order.
    fn fold(&self) -> Result<MultiReport, String> {
        if let Some(message) = &self.aborted {
            return Err(message.clone());
        }
        if !self.is_complete() {
            return Err(format!("job {} did not complete", self.name));
        }
        let mut shards = Vec::with_capacity(self.declared as usize);
        for slot in &self.results {
            match slot.as_ref().expect("fold runs only after completion") {
                Ok(run) => shards.push(run.clone()),
                Err(error) => return Err(format!("cannot analyze {error}")),
            }
        }
        let merged = fold_runs(&shards);
        let wall = match self.finished {
            Some(finished) => finished.duration_since(self.started),
            None => self.started.elapsed(),
        };
        Ok(MultiReport { jobs: self.contributors.len(), shards, merged, wall })
    }
}

/// The job registry plus the service-level lifecycle flags.
#[derive(Default)]
struct Registry {
    /// Jobs by id.  A `BTreeMap` so worker claims scan jobs in open order —
    /// deterministic, and earlier jobs drain first under contention.
    jobs: BTreeMap<u32, Job>,
    by_name: HashMap<String, u32>,
    next_id: u32,
    /// No new jobs; finish closed ones, abort open ones, then exit.
    draining: bool,
    /// The accept loop should stop.
    shutdown: bool,
    /// Workers whose lease expired while their connection stayed silent —
    /// the half-open suspects.  A connection in this set that is *still*
    /// silent at its next idle poll is closed; any message from it clears
    /// the suspicion (it was merely slow, not half-open).
    stale_workers: HashSet<u64>,
}

impl Registry {
    fn all_complete(&self) -> bool {
        self.jobs.values().all(Job::is_complete)
    }
}

struct Shared {
    jobs_hint: u32,
    lease_timeout: Duration,
    chunk_len: usize,
    once: bool,
    chaos: ChaosConfig,
    local_addr: SocketAddr,
    state: Mutex<Registry>,
    cond: Condvar,
}

impl Shared {
    /// Requeues every lease whose deadline has passed, across all jobs,
    /// and marks each forfeiting worker as a half-open suspect: its
    /// connection may be dead without a FIN ever arriving, so its idle
    /// poll closes it unless a message clears the suspicion first.
    /// Called with the state lock held.
    fn reclaim_expired(&self, reg: &mut Registry, now: Instant) {
        let mut forfeited = Vec::new();
        for job in reg.jobs.values_mut() {
            let expired: Vec<usize> = job
                .leases
                .iter()
                .filter(|(_, lease)| lease.deadline <= now)
                .map(|(&shard, _)| shard)
                .collect();
            for shard in expired {
                let lease = job.leases.remove(&shard).expect("collected above");
                job.excluded.entry(shard).or_default().insert(lease.worker);
                job.pending.push_front(shard);
                forfeited.push(lease.worker);
            }
        }
        reg.stale_workers.extend(forfeited);
    }

    /// True when `worker`'s lease expired and nothing has been heard from
    /// it since — the half-open-connection verdict its idle poll acts on.
    fn is_stale(&self, worker: u64) -> bool {
        self.state.lock().expect("coordinator state poisoned").stale_workers.contains(&worker)
    }

    /// Clears a worker's half-open suspicion: it sent a message, so the
    /// connection is alive (it was slow, not dead).
    fn mark_active(&self, worker: u64) {
        self.state.lock().expect("coordinator state poisoned").stale_workers.remove(&worker);
    }

    /// Requeues any shard leased to `worker` — the dead-worker path, taken
    /// the moment a worker connection drops with a lease outstanding.
    fn requeue_worker(&self, worker: u64) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        reg.stale_workers.remove(&worker);
        let mut requeued = false;
        for job in reg.jobs.values_mut() {
            let held: Vec<usize> = job
                .leases
                .iter()
                .filter(|(_, lease)| lease.worker == worker)
                .map(|(&shard, _)| shard)
                .collect();
            for shard in held {
                job.leases.remove(&shard);
                job.excluded.entry(shard).or_default().insert(worker);
                job.pending.push_front(shard);
                requeued = true;
            }
        }
        if requeued {
            self.cond.notify_all();
        }
    }

    /// Blocks until a shard can be leased to `worker` from *any* job, or
    /// the service is done (`None`).  Jobs are scanned in open order;
    /// within the scan, shards the worker has not already failed are
    /// preferred, falling back to any pending shard rather than
    /// deadlocking when only "excluded" work remains.
    fn claim(&self, worker: u64) -> Option<(u32, usize)> {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        loop {
            self.reclaim_expired(&mut reg, Instant::now());
            if reg.shutdown || (reg.draining && reg.all_complete()) {
                return None;
            }
            let preferred = reg
                .jobs
                .iter()
                .find_map(|(&id, job)| {
                    job.pending
                        .iter()
                        .position(|shard| {
                            !job.excluded.get(shard).is_some_and(|set| set.contains(&worker))
                        })
                        .map(|position| (id, position))
                })
                .or_else(|| {
                    reg.jobs.iter().find(|(_, job)| !job.pending.is_empty()).map(|(&id, _)| (id, 0))
                });
            if let Some((id, position)) = preferred {
                let job = reg.jobs.get_mut(&id).expect("id found above");
                let shard = job.pending.remove(position).expect("position is in range");
                job.leases
                    .insert(shard, Lease { worker, deadline: Instant::now() + self.lease_timeout });
                return Some((id, shard));
            }
            // Nothing pending anywhere: work is leased out elsewhere, or
            // the service is idle waiting for the next job.  Wake
            // periodically to reclaim expired leases.
            let (next, _) = self
                .cond
                .wait_timeout(reg, Duration::from_millis(250))
                .expect("coordinator state poisoned");
            reg = next;
        }
    }

    /// Records one shard result.  Late duplicates (a slow worker whose
    /// lease expired and whose shard was re-run elsewhere) are ignored, so
    /// no shard is ever counted twice.
    fn complete(
        &self,
        worker: u64,
        job_id: u32,
        shard: usize,
        result: Result<ShardRun, DriverError>,
    ) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        let Some(job) = reg.jobs.get_mut(&job_id) else { return };
        if shard >= job.results.len() || job.results[shard].is_some() {
            return;
        }
        job.results[shard] = Some(result);
        job.completed += 1;
        job.contributors.insert(worker);
        job.leases.remove(&shard);
        // The shard may sit requeued in `pending` (expired lease) while the
        // original worker's late result arrives — drop the duplicate work.
        job.pending.retain(|&queued| queued != shard);
        if job.is_complete() {
            job.finished = Some(Instant::now());
        }
        self.finish_or_notify(reg);
    }

    /// Notifies waiters and, when a drain has run dry, flips to shutdown.
    /// Consumes the guard so the listener poke happens outside the lock.
    fn finish_or_notify(&self, mut reg: std::sync::MutexGuard<'_, Registry>) {
        let finished = reg.draining && !reg.shutdown && reg.all_complete();
        if finished {
            reg.shutdown = true;
        }
        self.cond.notify_all();
        drop(reg);
        if finished {
            // Wake the accept loop.
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    /// Blocks until `job_id` is complete (or the service shuts down).
    fn wait_job(&self, job_id: u32) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        while !reg.shutdown && reg.jobs.get(&job_id).is_some_and(|job| !job.is_complete()) {
            let (next, _) = self
                .cond
                .wait_timeout(reg, Duration::from_millis(250))
                .expect("coordinator state poisoned");
            reg = next;
        }
    }

    /// Begins a graceful drain: no new jobs, open jobs are aborted (their
    /// clients get `ERROR` on close), closed jobs run to completion, and
    /// the service exits once the registry runs dry.
    fn drain(&self) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        reg.draining = true;
        for job in reg.jobs.values_mut() {
            if job.open && job.aborted.is_none() {
                job.aborted =
                    Some(format!("job {} aborted: the coordinator is draining", job.name));
                job.pending.clear();
                job.leases.clear();
                job.finished = Some(Instant::now());
            }
        }
        self.finish_or_notify(reg);
    }

    /// Called after a `REPORT`/`ERROR` answer; in `--once` mode the first
    /// answered report begins the drain.
    fn report_answered(&self) {
        if self.once {
            self.drain();
        }
    }

    fn is_shutdown(&self) -> bool {
        self.state.lock().expect("coordinator state poisoned").shutdown
    }
}

/// A handle that can ask a running [`Coordinator`] to drain gracefully —
/// the hook `engine serve` wires to SIGINT.
#[derive(Clone)]
pub struct ServeControl {
    shared: Arc<Shared>,
}

impl ServeControl {
    /// Begins a graceful drain: finish closed jobs, abort open ones,
    /// reject new ones, then exit the accept loop.
    pub fn drain(&self) {
        self.shared.drain();
    }
}

/// A bound coordinator, ready to [`run`](Coordinator::run).
///
/// Binding is split from running so callers (tests, the bench harness) can
/// bind port 0, learn the chosen address, and hand it to workers before
/// entering the accept loop.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listen socket and, if `paths` is non-empty, pre-registers
    /// them as the closed [`DEFAULT_JOB`] under `config.spec` — a bare
    /// `engine submit` fetches its report.  With no paths the service
    /// starts empty and lives entirely off wire-opened jobs.
    ///
    /// Files are stat'd (not read) here so a missing shard fails fast,
    /// before any worker connects; the bytes themselves are read per
    /// lease, outside the registry lock, and there is no size cap — shards
    /// of any length stream to workers as `SHARD_CHUNK` frames.
    ///
    /// # Errors
    ///
    /// A missing shard file, an invalid detector spec, or a bind failure.
    pub fn bind(paths: &[PathBuf], config: &ServeConfig) -> Result<Self, String> {
        config.spec.validate()?;
        let listener = TcpListener::bind(&config.bind)
            .map_err(|error| format!("cannot bind {}: {error}", config.bind))?;
        let local_addr =
            listener.local_addr().map_err(|error| format!("cannot resolve bind: {error}"))?;
        let mut reg = Registry::default();
        if !paths.is_empty() {
            let mut job = Job::new(DEFAULT_JOB.to_owned(), config.spec.clone(), paths.len() as u32);
            for (index, path) in paths.iter().enumerate() {
                std::fs::metadata(path)
                    .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
                job.shards[index] = Some(ShardMeta {
                    name: path.display().to_string(),
                    text: config.text.unwrap_or_else(|| TextFormat::from_path(path)),
                    source: ShardSource::Path(path.clone()),
                });
                job.pending.push_back(index);
            }
            job.streamed = job.declared;
            job.open = false;
            reg.by_name.insert(DEFAULT_JOB.to_owned(), 0);
            reg.jobs.insert(0, job);
            reg.next_id = 1;
        }
        let shared = Arc::new(Shared {
            jobs_hint: config.jobs_hint,
            lease_timeout: config.lease_timeout,
            chunk_len: config.chunk_len.max(1),
            once: config.once,
            chaos: config.chaos.clone(),
            local_addr,
            state: Mutex::new(reg),
            cond: Condvar::new(),
        });
        Ok(Coordinator { listener, shared })
    }

    /// The address the coordinator listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A drain handle, safe to trigger from a signal-watcher thread.
    pub fn control(&self) -> ServeControl {
        ServeControl { shared: Arc::clone(&self.shared) }
    }

    /// Accepts connections until the service drains (a `SHUTDOWN` message,
    /// a [`ServeControl::drain`], or — in `--once` mode — the first
    /// answered report), then returns every job's outcome.  Worker and
    /// client connections are each served on their own thread; a worker
    /// that disconnects with a lease outstanding has its shard requeued
    /// for the next `LEASE`.
    ///
    /// # Errors
    ///
    /// A listener failure.  Per-job failures (the earliest failing shard,
    /// exactly like the local driver) are values in the summary, not
    /// errors of the run.
    pub fn run(self) -> Result<ServeSummary, String> {
        let conn_ids = AtomicU64::new(1);
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.is_shutdown() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
            handles.push(std::thread::spawn(move || handle_connection(&shared, stream, conn)));
        }
        for handle in handles {
            let _ = handle.join();
        }
        let reg = self.shared.state.lock().expect("coordinator state poisoned");
        let jobs = reg
            .jobs
            .values()
            .map(|job| JobOutcome { name: job.name.clone(), result: job.fold() })
            .collect();
        Ok(ServeSummary { jobs })
    }
}

/// Turns a worker's `OUTCOME` message into the coordinator-side
/// [`ShardRun`], validating the run count against the job's spec.
fn shard_run_from_wire(
    job: &Job,
    shard: usize,
    events: u64,
    wall_nanos: u64,
    runs: Vec<WireRun>,
) -> Result<ShardRun, DriverError> {
    let name = job.shard_name(shard);
    if runs.len() != job.spec.detectors.len() {
        return Err(DriverError {
            path: PathBuf::from(&name),
            message: format!(
                "worker returned {} detector run(s), expected {}",
                runs.len(),
                job.spec.detectors.len()
            ),
        });
    }
    Ok(ShardRun {
        path: PathBuf::from(name),
        source: "remote",
        events: events as usize,
        wall: Duration::from_nanos(wall_nanos),
        runs: runs
            .into_iter()
            .map(|run| DetectorRun {
                outcome: run.outcome,
                time: Duration::from_nanos(run.time_nanos),
            })
            .collect(),
    })
}

fn handle_connection(shared: &Shared, stream: TcpStream, conn: u64) {
    // Short read timeouts let the handler poll the shutdown flag between
    // messages without ever splitting a frame.  The write timeout is the
    // SHARD_CHUNK backpressure clock: a receiver that stops draining turns
    // each blocked write into a bounded stall, and the proto layer's stall
    // budget kills the connection instead of pinning this thread (and the
    // shard bytes it holds) forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Chaos (when configured — default off) wraps the configured socket;
    // connection ids start at 1, plans are indexed from 0.
    let mut stream = shared.chaos.wrap(stream, conn - 1);

    // Handshake: HELLO in, WELCOME out.
    let role = loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Hello { role })) => break role,
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    return;
                }
            }
            _ => return, // EOF (e.g. the shutdown self-poke), garbage, or I/O error
        }
    };
    let welcome = Message::Welcome { jobs_hint: shared.jobs_hint };
    if proto::write_message(&mut stream, &welcome).is_err() {
        return;
    }

    match role {
        Role::Worker => serve_worker(shared, stream, conn),
        Role::Submit => serve_client(shared, stream, conn),
    }
}

/// Answers one `LEASE`: claims shards until one *loads* (file-backed
/// bytes are read here, outside the registry lock), recording unreadable
/// ones as failed results — the same "shard cannot be opened" semantics as
/// the local driver — and returns `None` when the service drains dry.
/// A granted shard ships as `GRANT` followed by its chunk stream.
fn lease_reply(shared: &Shared, conn: u64) -> Option<(Message, Arc<Vec<u8>>)> {
    loop {
        let (job_id, shard) = shared.claim(conn)?;
        let reg = shared.state.lock().expect("coordinator state poisoned");
        let Some(job) = reg.jobs.get(&job_id) else { continue };
        let Some(meta) = job.shards.get(shard).and_then(Option::as_ref) else { continue };
        let name = meta.name.clone();
        let text = meta.text;
        let spec = job.spec.clone();
        let loaded = match &meta.source {
            ShardSource::Bytes(bytes) => Ok(Arc::clone(bytes)),
            ShardSource::Path(path) => {
                let path = path.clone();
                drop(reg); // file I/O happens outside the registry lock
                std::fs::read(&path)
                    .map(Arc::new)
                    .map_err(|error| DriverError { path, message: error.to_string() })
            }
        };
        match loaded {
            Ok(bytes) => {
                let grant = Message::Grant {
                    job: job_id,
                    shard: shard as u32,
                    name,
                    text,
                    spec,
                    chunks: proto::chunk_count(bytes.len() as u64, shared.chunk_len),
                };
                return Some((grant, bytes));
            }
            Err(error) => shared.complete(conn, job_id, shard, Err(error)),
        }
    }
}

fn serve_worker(shared: &Shared, mut stream: RwpStream, conn: u64) {
    loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Lease)) => {
                shared.mark_active(conn);
                match lease_reply(shared, conn) {
                    Some((grant, bytes)) => {
                        let (job, shard) = match &grant {
                            Message::Grant { job, shard, .. } => (*job, *shard),
                            _ => unreachable!("lease_reply only grants"),
                        };
                        if proto::write_message(&mut stream, &grant).is_err()
                            || proto::write_chunks(
                                &mut stream,
                                job,
                                shard,
                                &bytes,
                                shared.chunk_len,
                            )
                            .is_err()
                        {
                            break; // post-loop requeue covers a failed send
                        }
                    }
                    None => {
                        let _ = proto::write_message(&mut stream, &Message::Done);
                        break;
                    }
                }
            }
            Ok(Incoming::Message(Message::Outcome { job, shard, events, wall_nanos, runs })) => {
                shared.mark_active(conn);
                let shard = shard as usize;
                let result = {
                    let reg = shared.state.lock().expect("coordinator state poisoned");
                    reg.jobs
                        .get(&job)
                        .map(|meta| shard_run_from_wire(meta, shard, events, wall_nanos, runs))
                };
                if let Some(result) = result {
                    shared.complete(conn, job, shard, result);
                }
            }
            Ok(Incoming::Message(Message::Failed { job, shard, message })) => {
                shared.mark_active(conn);
                let shard = shard as usize;
                let path = {
                    let reg = shared.state.lock().expect("coordinator state poisoned");
                    reg.jobs.get(&job).map(|meta| PathBuf::from(meta.shard_name(shard)))
                };
                if let Some(path) = path {
                    shared.complete(conn, job, shard, Err(DriverError { path, message }));
                }
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    break;
                }
                // Half-open detection: this worker's lease expired and it
                // has stayed silent since — a connection whose peer died
                // without a FIN never produces EOF, so the idle poll is
                // where it gets closed (the lease itself was already
                // requeued by the expiry).
                if shared.is_stale(conn) {
                    break;
                }
            }
            Ok(Incoming::Message(_)) | Ok(Incoming::Eof) | Err(_) => break,
        }
    }
    // Whatever ended this connection — disconnect, protocol error, or
    // shutdown — any outstanding lease goes back to the queue.
    shared.requeue_worker(conn);
}

/// Opens a job in the registry; the `Err` carries the `ERROR` reply text.
fn open_job(shared: &Shared, name: String, spec: DetectorSpec, shards: u32) -> Result<u32, String> {
    if shards == 0 {
        return Err(format!("job {name} declares no shards"));
    }
    if shards > MAX_JOB_SHARDS {
        return Err(format!("job {name} declares {shards} shards (limit {MAX_JOB_SHARDS})"));
    }
    if spec.detectors.is_empty() {
        return Err(format!("job {name} lists no detectors"));
    }
    spec.validate().map_err(|error| format!("job {name}: {error}"))?;
    let mut reg = shared.state.lock().expect("coordinator state poisoned");
    if reg.draining {
        return Err("the coordinator is draining and accepts no new jobs".to_owned());
    }
    if reg.by_name.contains_key(&name) {
        return Err(format!("a job named {name} already exists"));
    }
    let id = reg.next_id;
    reg.next_id += 1;
    reg.by_name.insert(name.clone(), id);
    reg.jobs.insert(id, Job::new(name, spec, shards));
    Ok(id)
}

/// Stores one fully-streamed shard into its job slot and queues it for
/// lease; the `Err` carries the `ERROR` reply text.
fn accept_shard(shared: &Shared, job_id: u32, shard: usize, meta: ShardMeta) -> Result<(), String> {
    let mut reg = shared.state.lock().expect("coordinator state poisoned");
    let Some(job) = reg.jobs.get_mut(&job_id) else {
        return Err(format!("no job with id {job_id}"));
    };
    if !job.open {
        return Err(format!("job {} is closed", job.name));
    }
    if shard >= job.declared as usize {
        return Err(format!(
            "shard {shard} is out of range for job {} ({} shards declared)",
            job.name, job.declared
        ));
    }
    if job.shards[shard].is_some() {
        return Err(format!("shard {shard} of job {} was already streamed", job.name));
    }
    job.shards[shard] = Some(meta);
    job.streamed += 1;
    job.pending.push_back(shard);
    drop(reg);
    shared.cond.notify_all();
    Ok(())
}

/// Marks a job closed so it can fold; the `Err` carries the `ERROR` reply
/// text and leaves the job open.
fn close_job(shared: &Shared, job_id: u32) -> Result<(), String> {
    let mut reg = shared.state.lock().expect("coordinator state poisoned");
    let Some(job) = reg.jobs.get_mut(&job_id) else {
        return Err(format!("no job with id {job_id}"));
    };
    if let Some(message) = &job.aborted {
        return Err(message.clone());
    }
    if !job.open {
        return Err(format!("job {} is already closed", job.name));
    }
    if job.streamed < job.declared {
        return Err(format!(
            "job {} declared {} shards but streamed only {}",
            job.name, job.declared, job.streamed
        ));
    }
    job.open = false;
    if job.is_complete() {
        job.finished = Some(Instant::now());
    }
    drop(reg);
    shared.cond.notify_all();
    Ok(())
}

/// Renders a completed job's fold as its wire reply.
fn report_reply(shared: &Shared, job_id: u32) -> Message {
    let reg = shared.state.lock().expect("coordinator state poisoned");
    let Some(job) = reg.jobs.get(&job_id) else {
        return Message::Error { message: format!("no job with id {job_id}") };
    };
    match job.fold() {
        Ok(report) => Message::Report {
            workers: report.jobs as u32,
            shards: report.shards.len() as u64,
            events: report.shards.iter().map(|shard| shard.events as u64).sum(),
            wall_nanos: report.wall.as_nanos() as u64,
            runs: report
                .merged
                .into_iter()
                .map(|run| WireRun { time_nanos: run.time.as_nanos() as u64, outcome: run.outcome })
                .collect(),
        },
        Err(message) => Message::Error { message },
    }
}

fn serve_client(shared: &Shared, mut stream: RwpStream, _conn: u64) {
    // Jobs this connection opened — only their opener may stream shards
    // into them or close them.
    let mut opened: HashSet<u32> = HashSet::new();
    loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::JobOpen { name, spec, shards })) => {
                let reply = match open_job(shared, name, spec, shards) {
                    Ok(job) => {
                        opened.insert(job);
                        Message::JobAccept { job }
                    }
                    Err(message) => Message::Error { message },
                };
                if proto::write_message(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Ok(Incoming::Message(Message::ShardOpen { job, shard, name, text, chunks })) => {
                if !opened.contains(&job) {
                    let message = format!("this connection did not open job id {job}");
                    let _ = proto::write_message(&mut stream, &Message::Error { message });
                    break; // the chunk stream behind the header is undrained
                }
                // The chunk stream rides directly behind the header;
                // reassemble it before touching the registry so a slow
                // client never holds the lock.
                let bytes =
                    match proto::read_chunks(&mut stream, job, shard, chunks, STREAM_PATIENCE) {
                        Ok(bytes) => bytes,
                        Err(_) => break,
                    };
                let meta = ShardMeta { name, text, source: ShardSource::Bytes(Arc::new(bytes)) };
                if let Err(message) = accept_shard(shared, job, shard as usize, meta) {
                    let _ = proto::write_message(&mut stream, &Message::Error { message });
                    break;
                }
            }
            Ok(Incoming::Message(Message::JobClose { job })) => {
                if !opened.contains(&job) {
                    let message = format!("this connection did not open job id {job}");
                    if proto::write_message(&mut stream, &Message::Error { message }).is_err() {
                        break;
                    }
                    continue;
                }
                let reply = match close_job(shared, job) {
                    Ok(()) => {
                        shared.wait_job(job);
                        report_reply(shared, job)
                    }
                    Err(message) => Message::Error { message },
                };
                let sent = proto::write_message(&mut stream, &reply).is_ok();
                shared.report_answered();
                if !sent {
                    break;
                }
            }
            Ok(Incoming::Message(Message::Fetch { name })) => {
                let job = {
                    let reg = shared.state.lock().expect("coordinator state poisoned");
                    reg.by_name.get(&name).copied()
                };
                let reply = match job {
                    Some(job) => {
                        shared.wait_job(job);
                        report_reply(shared, job)
                    }
                    None => Message::Error { message: format!("no job named {name}") },
                };
                let sent = proto::write_message(&mut stream, &reply).is_ok();
                shared.report_answered();
                if !sent {
                    break;
                }
            }
            Ok(Incoming::Message(Message::Shutdown)) => {
                let _ = proto::write_message(&mut stream, &Message::Done);
                shared.drain();
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    break;
                }
            }
            Ok(Incoming::Message(_)) | Ok(Incoming::Eof) | Err(_) => break,
        }
    }
}
