//! The coordinator: a resident, multi-tenant detection service.  It owns a
//! registry of named jobs, leases their shards to TCP workers, requeues
//! work from dead workers, and folds each job's incoming outcomes through
//! the same merge path as a local `jobs = N` run — answering `REPORT` per
//! job without shutting the service down.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rapid_trace::format::TextFormat;

use crate::detector::DetectorSpec;
use crate::driver::{fold_runs, DriverError, MultiReport, ShardRun};
use crate::engine::DetectorRun;

use super::chaos::{ChaosConfig, RwpStream};
use super::proto::{self, ContentId, Incoming, Message, Role, WireRun};

use crate::outcome::Metrics;

/// The name under which `engine serve FILES…` registers its file-backed
/// shards, and the job a bare `engine submit` (no `--job`) fetches.
pub const DEFAULT_JOB: &str = "default";

/// Upper bound on one job's declared shard count (guards a hostile
/// `JOB_OPEN` against pre-allocating unbounded slot vectors).
pub const MAX_JOB_SHARDS: u32 = 1 << 20;

/// How long the coordinator waits between chunks of a shard a client is
/// actively streaming before declaring the connection dead.
const STREAM_PATIENCE: Duration = Duration::from_secs(60);

/// Configuration of one [`Coordinator`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on (e.g. `127.0.0.1:7471`; port 0 picks a free
    /// port, exposed via [`Coordinator::local_addr`]).
    pub bind: String,
    /// The detector set of the pre-registered [`DEFAULT_JOB`] (the shard
    /// files passed to [`Coordinator::bind`]).  Jobs opened over the wire
    /// carry their own spec.
    pub spec: DetectorSpec,
    /// Text flavour override for the default job's shards; `None` decides
    /// per shard by file extension.
    pub text: Option<TextFormat>,
    /// Parallelism hint advertised to workers (0 = let workers decide).
    pub jobs_hint: u32,
    /// How long a leased shard may stay unacknowledged before it is
    /// requeued for another worker.
    pub lease_timeout: Duration,
    /// Payload size of the `SHARD_CHUNK` frames the coordinator sends to
    /// workers (tests use tiny values to force multi-chunk transfers).
    pub chunk_len: usize,
    /// One-shot mode: begin a graceful drain after the first report is
    /// answered — the v1 `serve` semantics.
    pub once: bool,
    /// Straggler re-leasing: when the queue is dry and a worker goes idle,
    /// an in-flight lease older than this is speculatively re-granted to
    /// the idle worker (MapReduce-style backup task) — first result wins,
    /// the loser gets a non-fatal `STALE` ack, and the stolen shard is
    /// excluded from bouncing back to its straggler.  `None` (the
    /// default) disables speculation.
    pub speculate_after: Option<Duration>,
    /// Test/bench-only fault injection on accepted connections (default
    /// off: every connection is a plain stream with zero overhead).
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    /// Bind an ephemeral localhost port, WCP + HB, 60-second leases,
    /// resident (not one-shot).
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            spec: DetectorSpec::default(),
            text: None,
            jobs_hint: 0,
            lease_timeout: Duration::from_secs(60),
            chunk_len: proto::CHUNK_LEN,
            once: false,
            speculate_after: None,
            chaos: ChaosConfig::default(),
        }
    }
}

/// What one completed (or aborted) job produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// The merged report, shaped exactly like a local [`run_shards`]
    /// result (`jobs` carries the number of distinct workers that
    /// contributed), or the job's failure: the earliest failing shard in
    /// input order, or an abort message if the service drained before the
    /// job was closed.
    ///
    /// [`run_shards`]: crate::driver::run_shards
    pub result: Result<MultiReport, String>,
}

/// What a full serve run produced: every job the service answered, in the
/// order they were opened.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Per-job outcomes, in job-open order.
    pub jobs: Vec<JobOutcome>,
}

/// Where a shard's bytes come from.  File-backed shards (the default job)
/// are read per *lease*, not held for the whole run; streamed shards hold
/// the client's bytes until the job completes.
enum ShardSource {
    Path(PathBuf),
    Bytes(Arc<Vec<u8>>),
}

/// One shard as the coordinator stores it.
struct ShardMeta {
    name: String,
    text: TextFormat,
    source: ShardSource,
    /// Content identity (length + CRC-32), computed once — at bind for
    /// file-backed shards, at `SHARD_OPEN` for streamed ones.  Drives
    /// rendezvous placement, LPT ordering and the worker-side cache key.
    content: ContentId,
}

/// An outstanding lease.
struct Lease {
    worker: u64,
    deadline: Instant,
    /// When the lease was granted — the straggler clock speculation reads.
    granted: Instant,
}

/// Per-job scheduling telemetry, folded into the job's report.
#[derive(Debug, Clone, Copy, Default)]
struct SchedStats {
    /// Shard bytes actually shipped to workers (`PULL`ed chunk streams;
    /// `HAVE` answers move nothing and count as cache hits instead).
    bytes_transferred: u64,
    /// Grants answered with `HAVE` — transfers the worker cache saved.
    cache_hits: u64,
    /// Speculative re-leases of in-flight shards to idle workers.
    leases_stolen: u64,
}

impl SchedStats {
    fn to_metrics(self) -> Metrics {
        let mut metrics = Metrics::new();
        metrics.record_sum("bytes_transferred", self.bytes_transferred as f64);
        metrics.record_sum("cache_hits", self.cache_hits as f64);
        metrics.record_sum("leases_stolen", self.leases_stolen as f64);
        metrics
    }
}

/// One named job: its spec, its shard slots, and its queue bookkeeping.
struct Job {
    name: String,
    spec: DetectorSpec,
    /// How many shards the job declared at open; shard ids are `0..declared`.
    declared: u32,
    /// Shard slots, filled as `SHARD_OPEN` streams arrive (the default job
    /// is fully filled at bind).
    shards: Vec<Option<ShardMeta>>,
    /// Filled shard slots (`== declared` before the job may close).
    streamed: u32,
    /// Still accepting `SHARD_OPEN`s; a job folds only once closed.
    open: bool,
    /// Set when a drain kills the job before its client closed it.
    aborted: Option<String>,
    /// Shard indices awaiting a lease.
    pending: VecDeque<usize>,
    /// Outstanding leases by shard index.
    leases: HashMap<usize, Lease>,
    /// Workers that already failed (or timed out on) a shard — keeps a
    /// shard from bouncing straight back to the worker it was reclaimed
    /// from.
    excluded: HashMap<usize, HashSet<u64>>,
    /// Completed results, slotted by shard index.
    results: Vec<Option<Result<ShardRun, DriverError>>>,
    completed: u32,
    /// Workers that contributed at least one accepted result.
    contributors: HashSet<u64>,
    /// Scheduling telemetry, reported with the job's fold.
    stats: SchedStats,
    started: Instant,
    finished: Option<Instant>,
}

impl Job {
    fn new(name: String, spec: DetectorSpec, declared: u32) -> Self {
        Job {
            name,
            spec,
            declared,
            shards: (0..declared).map(|_| None).collect(),
            streamed: 0,
            open: true,
            aborted: None,
            pending: VecDeque::new(),
            leases: HashMap::new(),
            excluded: HashMap::new(),
            results: (0..declared).map(|_| None).collect(),
            completed: 0,
            contributors: HashSet::new(),
            stats: SchedStats::default(),
            started: Instant::now(),
            finished: None,
        }
    }

    /// A job is complete once it can never produce more results: aborted,
    /// or closed with every shard accounted for.
    fn is_complete(&self) -> bool {
        self.aborted.is_some() || (!self.open && self.completed == self.declared)
    }

    /// The display name of a shard, for error paths (falls back to the
    /// index if the slot was never streamed — which a granted lease rules
    /// out).
    fn shard_name(&self, shard: usize) -> String {
        match self.shards.get(shard).and_then(Option::as_ref) {
            Some(meta) => meta.name.clone(),
            None => format!("shard {shard}"),
        }
    }

    /// Folds the job's results exactly like the local driver: earliest
    /// failing shard in input order wins; otherwise [`fold_runs`] merges
    /// in input order.
    fn fold(&self) -> Result<MultiReport, String> {
        if let Some(message) = &self.aborted {
            return Err(message.clone());
        }
        if !self.is_complete() {
            return Err(format!("job {} did not complete", self.name));
        }
        let mut shards = Vec::with_capacity(self.declared as usize);
        for slot in &self.results {
            match slot.as_ref().expect("fold runs only after completion") {
                Ok(run) => shards.push(run.clone()),
                Err(error) => return Err(format!("cannot analyze {error}")),
            }
        }
        let merged = fold_runs(&shards);
        let wall = match self.finished {
            Some(finished) => finished.duration_since(self.started),
            None => self.started.elapsed(),
        };
        Ok(MultiReport {
            jobs: self.contributors.len(),
            shards,
            merged,
            wall,
            scheduling: self.stats.to_metrics(),
        })
    }
}

/// The job registry plus the service-level lifecycle flags.
#[derive(Default)]
struct Registry {
    /// Jobs by id.  A `BTreeMap` so worker claims scan jobs in open order —
    /// deterministic, and earlier jobs drain first under contention.
    jobs: BTreeMap<u32, Job>,
    by_name: HashMap<String, u32>,
    next_id: u32,
    /// No new jobs; finish closed ones, abort open ones, then exit.
    draining: bool,
    /// The accept loop should stop.
    shutdown: bool,
    /// Workers whose lease expired while their connection stayed silent —
    /// the half-open suspects.  A connection in this set that is *still*
    /// silent at its next idle poll is closed; any message from it clears
    /// the suspicion (it was merely slow, not half-open).
    stale_workers: HashSet<u64>,
    /// Connected worker connections — the rendezvous-hash ring placement
    /// scores shards against.
    workers: HashSet<u64>,
}

impl Registry {
    fn all_complete(&self) -> bool {
        self.jobs.values().all(Job::is_complete)
    }
}

/// Splitmix64's finalizer: the mixer behind the rendezvous scores.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The highest-random-weight score of `(shard content, worker)` — each
/// worker independently hashes every shard, and a shard "belongs" to the
/// worker scoring highest.  Adding or removing one worker reassigns only
/// the shards that hashed to it (the rendezvous property), so a fleet
/// change never invalidates every worker's cache at once.
fn hrw_score(content: ContentId, worker: u64) -> u64 {
    mix64(content.mix_key() ^ worker.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The worker the ring places `content` on, if any are connected (ties
/// break toward the lower connection id, so the choice is deterministic).
fn hrw_owner(content: ContentId, workers: &HashSet<u64>) -> Option<u64> {
    workers
        .iter()
        .copied()
        .max_by_key(|&worker| (hrw_score(content, worker), std::cmp::Reverse(worker)))
}

/// Pass 1 of shard selection: the first job (in open order) with pending
/// work `worker` has not already failed; rendezvous-placed shards first,
/// then the largest remaining content (LPT), ties toward the smallest
/// shard index.
fn pick_pending(reg: &Registry, worker: u64) -> Option<(u32, usize)> {
    for (&job_id, job) in &reg.jobs {
        let candidates: Vec<(usize, ContentId)> = job
            .pending
            .iter()
            .filter(|shard| !job.excluded.get(shard).is_some_and(|set| set.contains(&worker)))
            .filter_map(|&shard| {
                job.shards.get(shard).and_then(Option::as_ref).map(|meta| (shard, meta.content))
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let placed: Vec<(usize, ContentId)> = candidates
            .iter()
            .copied()
            .filter(|&(_, content)| hrw_owner(content, &reg.workers) == Some(worker))
            .collect();
        let pool = if placed.is_empty() { &candidates } else { &placed };
        let best = pool
            .iter()
            .max_by_key(|&&(shard, content)| (content.len, std::cmp::Reverse(shard)))
            .map(|&(shard, _)| shard);
        if let Some(shard) = best {
            return Some((job_id, shard));
        }
    }
    None
}

/// Pass 2 of shard selection: progress beats placement — any pending
/// shard at all, rather than deadlocking when only "excluded" work
/// remains.
fn pick_any_pending(reg: &Registry) -> Option<(u32, usize)> {
    reg.jobs.iter().find_map(|(&id, job)| job.pending.front().map(|&shard| (id, shard)))
}

/// What one claim poll produced.
enum ClaimWait {
    /// A shard was leased to the claiming worker.
    Granted {
        /// The granting job.
        job: u32,
        /// The leased shard's index.
        shard: usize,
    },
    /// The service is drained (or shutting down): answer `DONE`.
    Drained,
    /// Nothing to lease right now; poll the socket and try again.
    Empty,
}

struct Shared {
    jobs_hint: u32,
    lease_timeout: Duration,
    chunk_len: usize,
    once: bool,
    speculate_after: Option<Duration>,
    chaos: ChaosConfig,
    local_addr: SocketAddr,
    state: Mutex<Registry>,
    cond: Condvar,
}

impl Shared {
    /// Requeues every lease whose deadline has passed, across all jobs,
    /// and marks each forfeiting worker as a half-open suspect: its
    /// connection may be dead without a FIN ever arriving, so its idle
    /// poll closes it unless a message clears the suspicion first.
    /// Called with the state lock held.
    fn reclaim_expired(&self, reg: &mut Registry, now: Instant) {
        let mut forfeited = Vec::new();
        for job in reg.jobs.values_mut() {
            let expired: Vec<usize> = job
                .leases
                .iter()
                .filter(|(_, lease)| lease.deadline <= now)
                .map(|(&shard, _)| shard)
                .collect();
            for shard in expired {
                let lease = job.leases.remove(&shard).expect("collected above");
                job.excluded.entry(shard).or_default().insert(lease.worker);
                job.pending.push_front(shard);
                forfeited.push(lease.worker);
            }
        }
        reg.stale_workers.extend(forfeited);
    }

    /// True when `worker`'s lease expired and nothing has been heard from
    /// it since — the half-open-connection verdict its idle poll acts on.
    fn is_stale(&self, worker: u64) -> bool {
        self.state.lock().expect("coordinator state poisoned").stale_workers.contains(&worker)
    }

    /// Adds a worker connection to the rendezvous ring.
    fn register_worker(&self, worker: u64) {
        self.state.lock().expect("coordinator state poisoned").workers.insert(worker);
    }

    /// Drops a worker connection from the rendezvous ring.
    fn unregister_worker(&self, worker: u64) {
        self.state.lock().expect("coordinator state poisoned").workers.remove(&worker);
    }

    /// Records shard bytes actually streamed to a worker for `job_id`.
    fn note_transfer(&self, job_id: u32, bytes: u64) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        if let Some(job) = reg.jobs.get_mut(&job_id) {
            job.stats.bytes_transferred += bytes;
        }
    }

    /// Records one `HAVE` answer — a transfer the worker cache saved.
    fn note_cache_hit(&self, job_id: u32) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        if let Some(job) = reg.jobs.get_mut(&job_id) {
            job.stats.cache_hits += 1;
        }
    }

    /// Clears a worker's half-open suspicion: it sent a message, so the
    /// connection is alive (it was slow, not dead).
    fn mark_active(&self, worker: u64) {
        self.state.lock().expect("coordinator state poisoned").stale_workers.remove(&worker);
    }

    /// Requeues any shard leased to `worker` — the dead-worker path, taken
    /// the moment a worker connection drops with a lease outstanding.
    fn requeue_worker(&self, worker: u64) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        reg.stale_workers.remove(&worker);
        let mut requeued = false;
        for job in reg.jobs.values_mut() {
            let held: Vec<usize> = job
                .leases
                .iter()
                .filter(|(_, lease)| lease.worker == worker)
                .map(|(&shard, _)| shard)
                .collect();
            for shard in held {
                job.leases.remove(&shard);
                job.excluded.entry(shard).or_default().insert(worker);
                job.pending.push_front(shard);
                requeued = true;
            }
        }
        if requeued {
            self.cond.notify_all();
        }
    }

    /// One non-blocking claim attempt for `worker`: reclaims expired
    /// leases, then picks a shard — rendezvous-preferred, LPT-ordered —
    /// or, when the queue is dry and speculation is enabled, steals the
    /// oldest in-flight lease as a backup task.  Never blocks: `Empty`
    /// tells the caller to poll its own socket and retry, which is what
    /// keeps a pipelined worker's queued `OUTCOME` frames draining while
    /// its next `LEASE` waits for work.
    fn try_claim(&self, worker: u64) -> ClaimWait {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        let now = Instant::now();
        self.reclaim_expired(&mut reg, now);
        if reg.shutdown || (reg.draining && reg.all_complete()) {
            return ClaimWait::Drained;
        }
        match self.select_shard(&mut reg, worker, now) {
            Some((job, shard)) => ClaimWait::Granted { job, shard },
            None => ClaimWait::Empty,
        }
    }

    /// Picks the shard to lease to `worker`, with the state lock held.
    ///
    /// Pass 1 — placement: the first job (in open order) with pending
    /// work this worker has not already failed; within it, shards the
    /// rendezvous ring places *on this worker* are preferred, and the
    /// pool resolves to its largest remaining shard (LPT) so the makespan
    /// never tail-stalls on a big shard served last.  Pass 2 — progress
    /// beats placement: any pending shard at all, even an "excluded" one,
    /// rather than deadlocking when only failed-here work remains.
    /// Pass 3 — speculation: the queue is dry and this worker is idle, so
    /// the oldest in-flight lease past `speculate_after` is re-granted
    /// here as a backup task.
    fn select_shard(&self, reg: &mut Registry, worker: u64, now: Instant) -> Option<(u32, usize)> {
        let choice = pick_pending(reg, worker).or_else(|| pick_any_pending(reg));
        if let Some((job_id, shard)) = choice {
            let job = reg.jobs.get_mut(&job_id).expect("picked from the registry above");
            job.pending.retain(|&queued| queued != shard);
            job.leases
                .insert(shard, Lease { worker, deadline: now + self.lease_timeout, granted: now });
            return Some((job_id, shard));
        }
        self.pick_speculative(reg, worker, now)
    }

    /// Pass 3: steals the oldest in-flight lease past the speculation age
    /// and grants its shard to the idle `worker` (first result wins; the
    /// straggler keeps running but is excluded from re-claiming the
    /// shard, so a stolen shard never bounces back to it).
    fn pick_speculative(
        &self,
        reg: &mut Registry,
        worker: u64,
        now: Instant,
    ) -> Option<(u32, usize)> {
        let after = self.speculate_after?;
        let mut oldest: Option<(u32, usize, Instant)> = None;
        for (&job_id, job) in &reg.jobs {
            for (&shard, lease) in &job.leases {
                if lease.worker == worker
                    || now.duration_since(lease.granted) < after
                    || job.excluded.get(&shard).is_some_and(|set| set.contains(&worker))
                {
                    continue;
                }
                let older = match oldest {
                    Some((_, _, granted)) => lease.granted < granted,
                    None => true,
                };
                if older {
                    oldest = Some((job_id, shard, lease.granted));
                }
            }
        }
        let (job_id, shard, _) = oldest?;
        let job = reg.jobs.get_mut(&job_id).expect("lease found above");
        // The fresh `granted` stamp keeps the stolen lease from being
        // immediately re-stolen by the next idle worker.
        let straggler = job
            .leases
            .insert(shard, Lease { worker, deadline: now + self.lease_timeout, granted: now })
            .expect("lease found above")
            .worker;
        job.excluded.entry(shard).or_default().insert(straggler);
        job.stats.leases_stolen += 1;
        Some((job_id, shard))
    }

    /// Records one shard result.  Returns whether it was folded: late
    /// duplicates (a slow worker whose lease expired, or the losing side
    /// of a speculation race) are rejected so no shard is ever counted
    /// twice — the caller answers a rejected sender with a non-fatal
    /// `STALE` ack.  In particular a stale `FAILED` cannot abort a job
    /// whose winner already completed the shard: the filled slot wins.
    fn complete(
        &self,
        worker: u64,
        job_id: u32,
        shard: usize,
        result: Result<ShardRun, DriverError>,
    ) -> bool {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        let Some(job) = reg.jobs.get_mut(&job_id) else { return false };
        if shard >= job.results.len() || job.results[shard].is_some() {
            return false;
        }
        job.results[shard] = Some(result);
        job.completed += 1;
        job.contributors.insert(worker);
        job.leases.remove(&shard);
        // The shard may sit requeued in `pending` (expired lease) while the
        // original worker's late result arrives — drop the duplicate work.
        job.pending.retain(|&queued| queued != shard);
        if job.is_complete() {
            job.finished = Some(Instant::now());
        }
        self.finish_or_notify(reg);
        true
    }

    /// Notifies waiters and, when a drain has run dry, flips to shutdown.
    /// Consumes the guard so the listener poke happens outside the lock.
    fn finish_or_notify(&self, mut reg: std::sync::MutexGuard<'_, Registry>) {
        let finished = reg.draining && !reg.shutdown && reg.all_complete();
        if finished {
            reg.shutdown = true;
        }
        self.cond.notify_all();
        drop(reg);
        if finished {
            // Wake the accept loop.
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    /// Blocks until `job_id` is complete (or the service shuts down).
    fn wait_job(&self, job_id: u32) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        while !reg.shutdown && reg.jobs.get(&job_id).is_some_and(|job| !job.is_complete()) {
            let (next, _) = self
                .cond
                .wait_timeout(reg, Duration::from_millis(250))
                .expect("coordinator state poisoned");
            reg = next;
        }
    }

    /// Begins a graceful drain: no new jobs, open jobs are aborted (their
    /// clients get `ERROR` on close), closed jobs run to completion, and
    /// the service exits once the registry runs dry.
    fn drain(&self) {
        let mut reg = self.state.lock().expect("coordinator state poisoned");
        reg.draining = true;
        for job in reg.jobs.values_mut() {
            if job.open && job.aborted.is_none() {
                job.aborted =
                    Some(format!("job {} aborted: the coordinator is draining", job.name));
                job.pending.clear();
                job.leases.clear();
                job.finished = Some(Instant::now());
            }
        }
        self.finish_or_notify(reg);
    }

    /// Called after a `REPORT`/`ERROR` answer; in `--once` mode the first
    /// answered report begins the drain.
    fn report_answered(&self) {
        if self.once {
            self.drain();
        }
    }

    fn is_shutdown(&self) -> bool {
        self.state.lock().expect("coordinator state poisoned").shutdown
    }
}

/// A handle that can ask a running [`Coordinator`] to drain gracefully —
/// the hook `engine serve` wires to SIGINT.
#[derive(Clone)]
pub struct ServeControl {
    shared: Arc<Shared>,
}

impl ServeControl {
    /// Begins a graceful drain: finish closed jobs, abort open ones,
    /// reject new ones, then exit the accept loop.
    pub fn drain(&self) {
        self.shared.drain();
    }
}

/// A bound coordinator, ready to [`run`](Coordinator::run).
///
/// Binding is split from running so callers (tests, the bench harness) can
/// bind port 0, learn the chosen address, and hand it to workers before
/// entering the accept loop.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the listen socket and, if `paths` is non-empty, pre-registers
    /// them as the closed [`DEFAULT_JOB`] under `config.spec` — a bare
    /// `engine submit` fetches its report.  With no paths the service
    /// starts empty and lives entirely off wire-opened jobs.
    ///
    /// Files are read once here — streamed through the CRC, not held — so
    /// a missing shard fails fast before any worker connects and every
    /// shard gets its content identity for placement and caching; the
    /// bytes themselves are (re-)read per lease, outside the registry
    /// lock, and there is no size cap — shards of any length stream to
    /// workers as `SHARD_CHUNK` frames.
    ///
    /// # Errors
    ///
    /// A missing shard file, an invalid detector spec, or a bind failure.
    pub fn bind(paths: &[PathBuf], config: &ServeConfig) -> Result<Self, String> {
        config.spec.validate()?;
        let listener = TcpListener::bind(&config.bind)
            .map_err(|error| format!("cannot bind {}: {error}", config.bind))?;
        let local_addr =
            listener.local_addr().map_err(|error| format!("cannot resolve bind: {error}"))?;
        let mut reg = Registry::default();
        if !paths.is_empty() {
            let mut job = Job::new(DEFAULT_JOB.to_owned(), config.spec.clone(), paths.len() as u32);
            for (index, path) in paths.iter().enumerate() {
                let content = ContentId::of_file(path)
                    .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
                job.shards[index] = Some(ShardMeta {
                    name: path.display().to_string(),
                    text: config.text.unwrap_or_else(|| TextFormat::from_path(path)),
                    source: ShardSource::Path(path.clone()),
                    content,
                });
                job.pending.push_back(index);
            }
            job.streamed = job.declared;
            job.open = false;
            reg.by_name.insert(DEFAULT_JOB.to_owned(), 0);
            reg.jobs.insert(0, job);
            reg.next_id = 1;
        }
        let shared = Arc::new(Shared {
            jobs_hint: config.jobs_hint,
            lease_timeout: config.lease_timeout,
            chunk_len: config.chunk_len.max(1),
            once: config.once,
            speculate_after: config.speculate_after,
            chaos: config.chaos.clone(),
            local_addr,
            state: Mutex::new(reg),
            cond: Condvar::new(),
        });
        Ok(Coordinator { listener, shared })
    }

    /// The address the coordinator listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A drain handle, safe to trigger from a signal-watcher thread.
    pub fn control(&self) -> ServeControl {
        ServeControl { shared: Arc::clone(&self.shared) }
    }

    /// Accepts connections until the service drains (a `SHUTDOWN` message,
    /// a [`ServeControl::drain`], or — in `--once` mode — the first
    /// answered report), then returns every job's outcome.  Worker and
    /// client connections are each served on their own thread; a worker
    /// that disconnects with a lease outstanding has its shard requeued
    /// for the next `LEASE`.
    ///
    /// # Errors
    ///
    /// A listener failure.  Per-job failures (the earliest failing shard,
    /// exactly like the local driver) are values in the summary, not
    /// errors of the run.
    pub fn run(self) -> Result<ServeSummary, String> {
        let conn_ids = AtomicU64::new(1);
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.is_shutdown() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
            handles.push(std::thread::spawn(move || handle_connection(&shared, stream, conn)));
        }
        for handle in handles {
            let _ = handle.join();
        }
        let reg = self.shared.state.lock().expect("coordinator state poisoned");
        let jobs = reg
            .jobs
            .values()
            .map(|job| JobOutcome { name: job.name.clone(), result: job.fold() })
            .collect();
        Ok(ServeSummary { jobs })
    }
}

/// Turns a worker's `OUTCOME` message into the coordinator-side
/// [`ShardRun`], validating the run count against the job's spec.
fn shard_run_from_wire(
    job: &Job,
    shard: usize,
    events: u64,
    wall_nanos: u64,
    runs: Vec<WireRun>,
) -> Result<ShardRun, DriverError> {
    let name = job.shard_name(shard);
    if runs.len() != job.spec.detectors.len() {
        return Err(DriverError {
            path: PathBuf::from(&name),
            message: format!(
                "worker returned {} detector run(s), expected {}",
                runs.len(),
                job.spec.detectors.len()
            ),
        });
    }
    Ok(ShardRun {
        path: PathBuf::from(name),
        source: "remote",
        events: events as usize,
        wall: Duration::from_nanos(wall_nanos),
        runs: runs
            .into_iter()
            .map(|run| DetectorRun {
                outcome: run.outcome,
                time: Duration::from_nanos(run.time_nanos),
            })
            .collect(),
    })
}

fn handle_connection(shared: &Shared, stream: TcpStream, conn: u64) {
    // Short read timeouts let the handler poll the shutdown flag between
    // messages without ever splitting a frame.  The write timeout is the
    // SHARD_CHUNK backpressure clock: a receiver that stops draining turns
    // each blocked write into a bounded stall, and the proto layer's stall
    // budget kills the connection instead of pinning this thread (and the
    // shard bytes it holds) forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Chaos (when configured — default off) wraps the configured socket;
    // connection ids start at 1, plans are indexed from 0.
    let mut stream = shared.chaos.wrap(stream, conn - 1);

    // Handshake: HELLO in, WELCOME out.
    let role = loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Hello { role })) => break role,
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    return;
                }
            }
            _ => return, // EOF (e.g. the shutdown self-poke), garbage, or I/O error
        }
    };
    let welcome = Message::Welcome { jobs_hint: shared.jobs_hint };
    if proto::write_message(&mut stream, &welcome).is_err() {
        return;
    }

    match role {
        Role::Worker => serve_worker(shared, stream, conn),
        Role::Submit => serve_client(shared, stream, conn),
    }
}

/// Loads a granted shard's bytes and builds its `GRANT`.  File-backed
/// bytes are read here, outside the registry lock, and their content id
/// is recomputed from the bytes actually read — so a file that changed
/// since bind still reaches the worker's cache under its true identity.
/// An unreadable shard is recorded as a failed result — the same "shard
/// cannot be opened" semantics as the local driver — and `None` tells the
/// caller to claim again.
fn load_shard(
    shared: &Shared,
    conn: u64,
    job_id: u32,
    shard: usize,
) -> Option<(Message, Arc<Vec<u8>>)> {
    let reg = shared.state.lock().expect("coordinator state poisoned");
    let job = reg.jobs.get(&job_id)?;
    let meta = job.shards.get(shard).and_then(Option::as_ref)?;
    let name = meta.name.clone();
    let text = meta.text;
    let spec = job.spec.clone();
    let loaded = match &meta.source {
        ShardSource::Bytes(bytes) => Ok((Arc::clone(bytes), meta.content)),
        ShardSource::Path(path) => {
            let path = path.clone();
            drop(reg); // file I/O happens outside the registry lock
            std::fs::read(&path)
                .map(|bytes| {
                    let content = ContentId::of(&bytes);
                    (Arc::new(bytes), content)
                })
                .map_err(|error| DriverError { path, message: error.to_string() })
        }
    };
    match loaded {
        Ok((bytes, content)) => {
            let grant = Message::Grant {
                job: job_id,
                shard: shard as u32,
                name,
                text,
                spec,
                chunks: proto::chunk_count(bytes.len() as u64, shared.chunk_len),
                content,
            };
            Some((grant, bytes))
        }
        Err(error) => {
            shared.complete(conn, job_id, shard, Err(error));
            None
        }
    }
}

/// Ships one granted shard: `GRANT` out, then the worker's `HAVE` (cache
/// hit — nothing moves) or `PULL` (stream the chunk train) decides
/// whether bytes cross the wire.  The worker holds its stream for the
/// whole LEASE→GRANT→HAVE/PULL exchange, so the next frame from it is
/// the transfer decision.  Returns `false` when the connection broke
/// (the caller's post-loop requeue covers the lease).
fn send_grant(
    shared: &Shared,
    stream: &mut RwpStream,
    job: u32,
    shard: u32,
    grant: &Message,
    bytes: &Arc<Vec<u8>>,
) -> bool {
    if proto::write_message(stream, grant).is_err() {
        return false;
    }
    // Cap the wait for the transfer decision at the lease clock: a worker
    // that never answers its own grant forfeits the lease anyway.
    let deadline = Instant::now() + shared.lease_timeout.max(Duration::from_secs(5));
    loop {
        match proto::read_message(stream) {
            Ok(Incoming::Message(Message::Pull { job: got_job, shard: got_shard }))
                if got_job == job && got_shard == shard =>
            {
                if proto::write_chunks(stream, job, shard, bytes, shared.chunk_len).is_err() {
                    return false;
                }
                shared.note_transfer(job, bytes.len() as u64);
                return true;
            }
            Ok(Incoming::Message(Message::Have { job: got_job, shard: got_shard }))
                if got_job == job && got_shard == shard =>
            {
                shared.note_cache_hit(job);
                return true;
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() || Instant::now() >= deadline {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// The poll cadence of a `LEASE` waiting on an empty queue: short enough
/// that a freshly-opened job, a requeued shard, or a ripening speculation
/// target reaches the idle worker within ~5ms, and doubling as the pacing
/// sleep between claim attempts (each poll drains any `OUTCOME` the
/// pipelined worker queued meanwhile).
const CLAIM_POLL: Duration = Duration::from_millis(5);

/// The read timeout of a worker connection with no claim outstanding —
/// the idle heartbeat the shutdown and half-open checks ride on.
const WORKER_IDLE_POLL: Duration = Duration::from_millis(500);

fn serve_worker(shared: &Shared, mut stream: RwpStream, conn: u64) {
    shared.register_worker(conn);
    // One claim may be outstanding at a time (the worker's transfer
    // thread pipelines lease N+1 while lease N analyzes).  While it
    // waits, the socket is polled on a short timeout so queued
    // OUTCOME/FAILED frames keep folding — the old blocking claim would
    // deadlock here: the coordinator waiting for the queue, the queue
    // waiting for the outcome sitting unread in this very socket.
    let mut pending_lease = false;
    let mut fast_poll = false;
    'conn: loop {
        if pending_lease {
            match shared.try_claim(conn) {
                ClaimWait::Granted { job, shard } => match load_shard(shared, conn, job, shard) {
                    Some((grant, bytes)) => {
                        pending_lease = false;
                        if fast_poll {
                            fast_poll = false;
                            let _ = stream.set_read_timeout(Some(WORKER_IDLE_POLL));
                        }
                        if !send_grant(shared, &mut stream, job, shard as u32, &grant, &bytes) {
                            break 'conn;
                        }
                        continue 'conn;
                    }
                    // The shard failed to load and was recorded as a
                    // failed result; claim again for this LEASE.
                    None => continue 'conn,
                },
                ClaimWait::Drained => {
                    let _ = proto::write_message(&mut stream, &Message::Done);
                    break 'conn;
                }
                ClaimWait::Empty => {
                    if !fast_poll {
                        fast_poll = true;
                        let _ = stream.set_read_timeout(Some(CLAIM_POLL));
                    }
                }
            }
        }
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Lease)) => {
                shared.mark_active(conn);
                pending_lease = true;
            }
            Ok(Incoming::Message(Message::Outcome { job, shard, events, wall_nanos, runs })) => {
                shared.mark_active(conn);
                let shard = shard as usize;
                let result = {
                    let reg = shared.state.lock().expect("coordinator state poisoned");
                    reg.jobs
                        .get(&job)
                        .map(|meta| shard_run_from_wire(meta, shard, events, wall_nanos, runs))
                };
                let accepted = match result {
                    Some(result) => shared.complete(conn, job, shard, result),
                    None => false,
                };
                if !accepted
                    && proto::write_message(
                        &mut stream,
                        &Message::Stale { job, shard: shard as u32 },
                    )
                    .is_err()
                {
                    break 'conn;
                }
            }
            Ok(Incoming::Message(Message::Failed { job, shard, message })) => {
                shared.mark_active(conn);
                let shard = shard as usize;
                let path = {
                    let reg = shared.state.lock().expect("coordinator state poisoned");
                    reg.jobs.get(&job).map(|meta| PathBuf::from(meta.shard_name(shard)))
                };
                let accepted = match path {
                    Some(path) => {
                        shared.complete(conn, job, shard, Err(DriverError { path, message }))
                    }
                    None => false,
                };
                if !accepted
                    && proto::write_message(
                        &mut stream,
                        &Message::Stale { job, shard: shard as u32 },
                    )
                    .is_err()
                {
                    break 'conn;
                }
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() && !pending_lease {
                    // With a claim outstanding the break is deferred to the
                    // next try_claim, which answers `Drained` — the worker
                    // gets a clean DONE instead of a torn connection.
                    break 'conn;
                }
                // Half-open detection: this worker's lease expired and it
                // has stayed silent since — a connection whose peer died
                // without a FIN never produces EOF, so the idle poll is
                // where it gets closed (the lease itself was already
                // requeued by the expiry).  A pending LEASE vouches for
                // the connection instead: the worker proved itself alive
                // by claiming, and a dead one fails at the GRANT write.
                if !pending_lease && shared.is_stale(conn) {
                    break 'conn;
                }
            }
            Ok(Incoming::Message(_)) | Ok(Incoming::Eof) | Err(_) => break 'conn,
        }
    }
    // Whatever ended this connection — disconnect, protocol error, or
    // shutdown — it leaves the ring, and any outstanding lease goes back
    // to the queue.
    shared.unregister_worker(conn);
    shared.requeue_worker(conn);
}

/// Opens a job in the registry; the `Err` carries the `ERROR` reply text.
fn open_job(shared: &Shared, name: String, spec: DetectorSpec, shards: u32) -> Result<u32, String> {
    if shards == 0 {
        return Err(format!("job {name} declares no shards"));
    }
    if shards > MAX_JOB_SHARDS {
        return Err(format!("job {name} declares {shards} shards (limit {MAX_JOB_SHARDS})"));
    }
    if spec.detectors.is_empty() {
        return Err(format!("job {name} lists no detectors"));
    }
    spec.validate().map_err(|error| format!("job {name}: {error}"))?;
    let mut reg = shared.state.lock().expect("coordinator state poisoned");
    if reg.draining {
        return Err("the coordinator is draining and accepts no new jobs".to_owned());
    }
    if let Some(&existing) = reg.by_name.get(&name) {
        // A *live* job's name is taken; a completed job's name may be
        // reused (repeat submissions of the same workload are the
        // warm-cache path).  The old job keeps its id and its outcome in
        // the serve summary — the name just remaps to the newest run.
        if !reg.jobs.get(&existing).is_some_and(Job::is_complete) {
            return Err(format!("a job named {name} already exists"));
        }
    }
    let id = reg.next_id;
    reg.next_id += 1;
    reg.by_name.insert(name.clone(), id);
    reg.jobs.insert(id, Job::new(name, spec, shards));
    Ok(id)
}

/// Stores one fully-streamed shard into its job slot and queues it for
/// lease; the `Err` carries the `ERROR` reply text.
fn accept_shard(shared: &Shared, job_id: u32, shard: usize, meta: ShardMeta) -> Result<(), String> {
    let mut reg = shared.state.lock().expect("coordinator state poisoned");
    let Some(job) = reg.jobs.get_mut(&job_id) else {
        return Err(format!("no job with id {job_id}"));
    };
    if !job.open {
        return Err(format!("job {} is closed", job.name));
    }
    if shard >= job.declared as usize {
        return Err(format!(
            "shard {shard} is out of range for job {} ({} shards declared)",
            job.name, job.declared
        ));
    }
    if job.shards[shard].is_some() {
        return Err(format!("shard {shard} of job {} was already streamed", job.name));
    }
    job.shards[shard] = Some(meta);
    job.streamed += 1;
    job.pending.push_back(shard);
    drop(reg);
    shared.cond.notify_all();
    Ok(())
}

/// Marks a job closed so it can fold; the `Err` carries the `ERROR` reply
/// text and leaves the job open.
fn close_job(shared: &Shared, job_id: u32) -> Result<(), String> {
    let mut reg = shared.state.lock().expect("coordinator state poisoned");
    let Some(job) = reg.jobs.get_mut(&job_id) else {
        return Err(format!("no job with id {job_id}"));
    };
    if let Some(message) = &job.aborted {
        return Err(message.clone());
    }
    if !job.open {
        return Err(format!("job {} is already closed", job.name));
    }
    if job.streamed < job.declared {
        return Err(format!(
            "job {} declared {} shards but streamed only {}",
            job.name, job.declared, job.streamed
        ));
    }
    job.open = false;
    if job.is_complete() {
        job.finished = Some(Instant::now());
    }
    drop(reg);
    shared.cond.notify_all();
    Ok(())
}

/// Renders a completed job's fold as its wire reply.
fn report_reply(shared: &Shared, job_id: u32) -> Message {
    let reg = shared.state.lock().expect("coordinator state poisoned");
    let Some(job) = reg.jobs.get(&job_id) else {
        return Message::Error { message: format!("no job with id {job_id}") };
    };
    match job.fold() {
        Ok(report) => Message::Report {
            workers: report.jobs as u32,
            shards: report.shards.len() as u64,
            events: report.shards.iter().map(|shard| shard.events as u64).sum(),
            wall_nanos: report.wall.as_nanos() as u64,
            runs: report
                .merged
                .into_iter()
                .map(|run| WireRun { time_nanos: run.time.as_nanos() as u64, outcome: run.outcome })
                .collect(),
            scheduling: report.scheduling,
        },
        Err(message) => Message::Error { message },
    }
}

fn serve_client(shared: &Shared, mut stream: RwpStream, _conn: u64) {
    // Jobs this connection opened — only their opener may stream shards
    // into them or close them.
    let mut opened: HashSet<u32> = HashSet::new();
    loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::JobOpen { name, spec, shards })) => {
                let reply = match open_job(shared, name, spec, shards) {
                    Ok(job) => {
                        opened.insert(job);
                        Message::JobAccept { job }
                    }
                    Err(message) => Message::Error { message },
                };
                if proto::write_message(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Ok(Incoming::Message(Message::ShardOpen { job, shard, name, text, chunks })) => {
                if !opened.contains(&job) {
                    let message = format!("this connection did not open job id {job}");
                    let _ = proto::write_message(&mut stream, &Message::Error { message });
                    break; // the chunk stream behind the header is undrained
                }
                // The chunk stream rides directly behind the header;
                // reassemble it before touching the registry so a slow
                // client never holds the lock.
                let bytes =
                    match proto::read_chunks(&mut stream, job, shard, chunks, STREAM_PATIENCE) {
                        Ok(bytes) => bytes,
                        Err(_) => break,
                    };
                let content = ContentId::of(&bytes);
                let meta =
                    ShardMeta { name, text, source: ShardSource::Bytes(Arc::new(bytes)), content };
                if let Err(message) = accept_shard(shared, job, shard as usize, meta) {
                    let _ = proto::write_message(&mut stream, &Message::Error { message });
                    break;
                }
            }
            Ok(Incoming::Message(Message::JobClose { job })) => {
                if !opened.contains(&job) {
                    let message = format!("this connection did not open job id {job}");
                    if proto::write_message(&mut stream, &Message::Error { message }).is_err() {
                        break;
                    }
                    continue;
                }
                let reply = match close_job(shared, job) {
                    Ok(()) => {
                        shared.wait_job(job);
                        report_reply(shared, job)
                    }
                    Err(message) => Message::Error { message },
                };
                let sent = proto::write_message(&mut stream, &reply).is_ok();
                shared.report_answered();
                if !sent {
                    break;
                }
            }
            Ok(Incoming::Message(Message::Fetch { name })) => {
                let job = {
                    let reg = shared.state.lock().expect("coordinator state poisoned");
                    reg.by_name.get(&name).copied()
                };
                let reply = match job {
                    Some(job) => {
                        shared.wait_job(job);
                        report_reply(shared, job)
                    }
                    None => Message::Error { message: format!("no job named {name}") },
                };
                let sent = proto::write_message(&mut stream, &reply).is_ok();
                shared.report_answered();
                if !sent {
                    break;
                }
            }
            Ok(Incoming::Message(Message::Shutdown)) => {
                let _ = proto::write_message(&mut stream, &Message::Done);
                shared.drain();
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    break;
                }
            }
            Ok(Incoming::Message(_)) | Ok(Incoming::Eof) | Err(_) => break,
        }
    }
}
