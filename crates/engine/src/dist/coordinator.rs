//! The coordinator: owns the shard list, leases shards to TCP workers,
//! requeues work from dead workers, and folds incoming outcomes through
//! the same merge path as a local `jobs = N` run.

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rapid_trace::format::TextFormat;

use crate::detector::DetectorSpec;
use crate::driver::{fold_runs, DriverError, MultiReport, ShardRun};
use crate::engine::DetectorRun;

use super::proto::{self, Incoming, Message, Role, WireRun};

/// Configuration of one [`Coordinator`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on (e.g. `127.0.0.1:7471`; port 0 picks a free
    /// port, exposed via [`Coordinator::local_addr`]).
    pub bind: String,
    /// The detector set every worker must run (shipped in `WELCOME`).
    pub spec: DetectorSpec,
    /// Text flavour override; `None` decides per shard by file extension.
    pub text: Option<TextFormat>,
    /// Parallelism hint advertised to workers (0 = let workers decide).
    pub jobs_hint: u32,
    /// How long a leased shard may stay unacknowledged before it is
    /// requeued for another worker.
    pub lease_timeout: Duration,
}

impl Default for ServeConfig {
    /// Bind an ephemeral localhost port, WCP + HB, 60-second leases.
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1:0".to_owned(),
            spec: DetectorSpec::default(),
            text: None,
            jobs_hint: 0,
            lease_timeout: Duration::from_secs(60),
        }
    }
}

/// What a completed serve run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The merged report, shaped exactly like a local [`run_shards`]
    /// result: per-shard runs in input order, merged per-detector
    /// aggregates, coordinator wall-clock.  `jobs` carries the number of
    /// distinct workers that contributed results.
    ///
    /// [`run_shards`]: crate::driver::run_shards
    pub report: MultiReport,
}

/// One shard as the coordinator stores it.  Bytes are read per *lease*
/// (outside the queue lock), not held for the whole run — coordinator
/// memory stays proportional to in-flight leases, not to the workload.
struct ShardMeta {
    name: String,
    text: TextFormat,
    path: PathBuf,
}

/// An outstanding lease.
struct Lease {
    worker: u64,
    deadline: Instant,
}

#[derive(Default)]
struct QueueState {
    /// Shard indices awaiting a lease.
    pending: VecDeque<usize>,
    /// Outstanding leases by shard index.
    leases: HashMap<usize, Lease>,
    /// Workers that already failed (or timed out on) a shard — the
    /// requeue bookkeeping that keeps a shard from bouncing straight back
    /// to the worker it was reclaimed from.
    excluded: HashMap<usize, HashSet<u64>>,
    /// Completed results, slotted by shard index.
    results: Vec<Option<Result<ShardRun, DriverError>>>,
    completed: usize,
    /// Workers that contributed at least one accepted result.
    contributors: HashSet<u64>,
    shutdown: bool,
}

struct Shared {
    shards: Vec<ShardMeta>,
    spec: DetectorSpec,
    jobs_hint: u32,
    lease_timeout: Duration,
    local_addr: SocketAddr,
    started: Instant,
    state: Mutex<QueueState>,
    cond: Condvar,
}

impl Shared {
    /// Requeues every lease whose deadline has passed.  Called with the
    /// state lock held.
    fn reclaim_expired(&self, state: &mut QueueState, now: Instant) {
        let expired: Vec<usize> = state
            .leases
            .iter()
            .filter(|(_, lease)| lease.deadline <= now)
            .map(|(&shard, _)| shard)
            .collect();
        for shard in expired {
            let lease = state.leases.remove(&shard).expect("collected above");
            state.excluded.entry(shard).or_default().insert(lease.worker);
            state.pending.push_front(shard);
        }
    }

    /// Requeues any shard leased to `worker` — the dead-worker path, taken
    /// the moment a worker connection drops with a lease outstanding.
    fn requeue_worker(&self, worker: u64) {
        let mut state = self.state.lock().expect("coordinator state poisoned");
        let held: Vec<usize> = state
            .leases
            .iter()
            .filter(|(_, lease)| lease.worker == worker)
            .map(|(&shard, _)| shard)
            .collect();
        for shard in held {
            state.leases.remove(&shard);
            state.excluded.entry(shard).or_default().insert(worker);
            state.pending.push_front(shard);
        }
        if !state.pending.is_empty() {
            self.cond.notify_all();
        }
    }

    /// Blocks until a shard can be leased to `worker`, or all work is
    /// complete (`None`).  Prefers shards the worker has not already
    /// failed; falls back to any pending shard rather than deadlocking
    /// when only "excluded" work remains.
    fn claim(&self, worker: u64) -> Option<usize> {
        let mut state = self.state.lock().expect("coordinator state poisoned");
        loop {
            self.reclaim_expired(&mut state, Instant::now());
            if state.completed == self.shards.len() || state.shutdown {
                return None;
            }
            let preferred = state
                .pending
                .iter()
                .position(|shard| {
                    !state.excluded.get(shard).is_some_and(|set| set.contains(&worker))
                })
                .or_else(|| if state.pending.is_empty() { None } else { Some(0) });
            if let Some(position) = preferred {
                let shard = state.pending.remove(position).expect("position is in range");
                state
                    .leases
                    .insert(shard, Lease { worker, deadline: Instant::now() + self.lease_timeout });
                return Some(shard);
            }
            // Nothing pending: work is leased out elsewhere.  Wake
            // periodically to reclaim expired leases.
            let (next, _) = self
                .cond
                .wait_timeout(state, Duration::from_millis(250))
                .expect("coordinator state poisoned");
            state = next;
        }
    }

    /// Records one shard result.  Late duplicates (a slow worker whose
    /// lease expired and whose shard was re-run elsewhere) are ignored, so
    /// no shard is ever counted twice.
    fn complete(&self, worker: u64, shard: usize, result: Result<ShardRun, DriverError>) {
        let mut state = self.state.lock().expect("coordinator state poisoned");
        if shard >= self.shards.len() || state.results[shard].is_some() {
            return;
        }
        state.results[shard] = Some(result);
        state.completed += 1;
        state.contributors.insert(worker);
        state.leases.remove(&shard);
        // The shard may sit requeued in `pending` (expired lease) while the
        // original worker's late result arrives — drop the duplicate work.
        state.pending.retain(|&queued| queued != shard);
        self.cond.notify_all();
    }

    /// Blocks until every shard has a result (or shutdown).
    fn wait_complete(&self) {
        let mut state = self.state.lock().expect("coordinator state poisoned");
        while state.completed < self.shards.len() && !state.shutdown {
            let (next, _) = self
                .cond
                .wait_timeout(state, Duration::from_millis(250))
                .expect("coordinator state poisoned");
            state = next;
        }
    }

    fn shutdown_now(&self) {
        self.state.lock().expect("coordinator state poisoned").shutdown = true;
        self.cond.notify_all();
        // Wake the accept loop.
        let _ = TcpStream::connect(self.local_addr);
    }

    fn is_shutdown(&self) -> bool {
        self.state.lock().expect("coordinator state poisoned").shutdown
    }

    /// Folds the completed results exactly like the local driver: earliest
    /// failing shard in input order wins; otherwise [`fold_runs`] merges in
    /// input order.
    fn fold(&self) -> Result<(Vec<ShardRun>, Vec<DetectorRun>, usize), DriverError> {
        let state = self.state.lock().expect("coordinator state poisoned");
        let mut shards = Vec::with_capacity(self.shards.len());
        for slot in &state.results {
            match slot.as_ref().expect("fold runs only after completion") {
                Ok(run) => shards.push(run.clone()),
                Err(error) => {
                    return Err(DriverError {
                        path: error.path.clone(),
                        message: error.message.clone(),
                    })
                }
            }
        }
        let merged = fold_runs(&shards);
        Ok((shards, merged, state.contributors.len()))
    }
}

/// A bound coordinator, ready to [`run`](Coordinator::run).
///
/// Binding is split from running so callers (tests, the bench harness) can
/// bind port 0, learn the chosen address, and hand it to workers before
/// entering the accept loop.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Checks every shard file and binds the listen socket.  Files are
    /// stat'd (not read) here, so a missing shard or one too large for a
    /// `SHARD` frame fails fast — before any worker connects — while
    /// coordinator memory stays independent of the workload size; the
    /// bytes themselves are read per lease, outside the queue lock.
    ///
    /// # Errors
    ///
    /// Missing or oversized shard files, an empty shard list, an invalid
    /// detector spec, or a bind failure.
    pub fn bind(paths: &[PathBuf], config: &ServeConfig) -> Result<Self, String> {
        if paths.is_empty() {
            return Err("no shards to serve".to_owned());
        }
        config.spec.validate()?;
        let mut shards = Vec::with_capacity(paths.len());
        for path in paths {
            let meta = std::fs::metadata(path)
                .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
            if meta.len() > proto::MAX_SHARD_LEN {
                return Err(format!(
                    "shard {} is {} bytes, exceeding the {}-byte SHARD frame budget — \
split it into smaller shards",
                    path.display(),
                    meta.len(),
                    proto::MAX_SHARD_LEN
                ));
            }
            shards.push(ShardMeta {
                name: path.display().to_string(),
                text: config.text.unwrap_or_else(|| TextFormat::from_path(path)),
                path: path.clone(),
            });
        }
        let listener = TcpListener::bind(&config.bind)
            .map_err(|error| format!("cannot bind {}: {error}", config.bind))?;
        let local_addr =
            listener.local_addr().map_err(|error| format!("cannot resolve bind: {error}"))?;
        let state = QueueState {
            pending: (0..shards.len()).collect(),
            results: (0..shards.len()).map(|_| None).collect(),
            ..QueueState::default()
        };
        let shared = Arc::new(Shared {
            shards,
            spec: config.spec.clone(),
            jobs_hint: config.jobs_hint,
            lease_timeout: config.lease_timeout,
            local_addr,
            started: Instant::now(),
            state: Mutex::new(state),
            cond: Condvar::new(),
        });
        Ok(Coordinator { listener, shared })
    }

    /// The address the coordinator listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Accepts connections until a submit client has been answered, then
    /// returns the merged report.  Worker connections are each served on
    /// their own thread; a worker that disconnects with a lease outstanding
    /// has its shard requeued for the next `LEASE`.
    ///
    /// # Errors
    ///
    /// The earliest failing shard (in input order), exactly like the local
    /// driver, or a listener failure.
    pub fn run(self) -> Result<ServeReport, String> {
        let conn_ids = AtomicU64::new(1);
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.is_shutdown() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
            handles.push(std::thread::spawn(move || handle_connection(&shared, stream, conn)));
        }
        for handle in handles {
            let _ = handle.join();
        }
        let (shards, merged, workers) =
            self.shared.fold().map_err(|error| format!("cannot analyze {error}"))?;
        Ok(ServeReport {
            report: MultiReport {
                jobs: workers,
                shards,
                merged,
                wall: self.shared.started.elapsed(),
            },
        })
    }
}

/// Turns a worker's `OUTCOME` message into the coordinator-side
/// [`ShardRun`], validating the run count against the spec.
fn shard_run_from_wire(
    shared: &Shared,
    shard: usize,
    events: u64,
    wall_nanos: u64,
    runs: Vec<WireRun>,
) -> Result<ShardRun, DriverError> {
    let name = &shared.shards[shard].name;
    if runs.len() != shared.spec.detectors.len() {
        return Err(DriverError {
            path: PathBuf::from(name),
            message: format!(
                "worker returned {} detector run(s), expected {}",
                runs.len(),
                shared.spec.detectors.len()
            ),
        });
    }
    Ok(ShardRun {
        path: PathBuf::from(name),
        source: "remote",
        events: events as usize,
        wall: Duration::from_nanos(wall_nanos),
        runs: runs
            .into_iter()
            .map(|run| DetectorRun {
                outcome: run.outcome,
                time: Duration::from_nanos(run.time_nanos),
            })
            .collect(),
    })
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, conn: u64) {
    // Short read timeouts let the handler poll the shutdown flag between
    // messages without ever splitting a frame.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);

    // Handshake: HELLO in, WELCOME out.
    let role = loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Hello { role })) => break role,
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    return;
                }
            }
            _ => return, // EOF (e.g. the shutdown self-poke), garbage, or I/O error
        }
    };
    let welcome = Message::Welcome { jobs_hint: shared.jobs_hint, spec: shared.spec.clone() };
    if proto::write_message(&mut stream, &welcome).is_err() {
        return;
    }

    match role {
        Role::Worker => serve_worker(shared, stream, conn),
        Role::Submit => serve_submit(shared, stream),
    }
}

/// Answers one `LEASE`: claims shards until one *loads* (reading its bytes
/// here, outside the queue lock), recording unreadable or oversized ones
/// as failed results — the same "shard cannot be opened" semantics as the
/// local driver — and returns `DONE` when the queue drains.
fn lease_reply(shared: &Shared, conn: u64) -> Message {
    loop {
        let Some(shard) = shared.claim(conn) else { return Message::Done };
        let meta = &shared.shards[shard];
        let fail = |message: String| DriverError { path: meta.path.clone(), message };
        match std::fs::read(&meta.path) {
            // Re-checked at read time: the file may have grown since bind,
            // and an oversized frame must never reach the wire (the
            // receiver would reject it and the shard would requeue forever).
            Ok(bytes) if bytes.len() as u64 <= proto::MAX_SHARD_LEN => {
                return Message::Shard {
                    id: shard as u32,
                    name: meta.name.clone(),
                    text: meta.text,
                    bytes,
                };
            }
            Ok(bytes) => shared.complete(
                conn,
                shard,
                Err(fail(format!(
                    "shard grew to {} bytes, exceeding the {}-byte SHARD frame budget",
                    bytes.len(),
                    proto::MAX_SHARD_LEN
                ))),
            ),
            Err(error) => shared.complete(conn, shard, Err(fail(error.to_string()))),
        }
    }
}

fn serve_worker(shared: &Shared, mut stream: TcpStream, conn: u64) {
    loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Lease)) => {
                let reply = lease_reply(shared, conn);
                let done = matches!(reply, Message::Done);
                if proto::write_message(&mut stream, &reply).is_err() || done {
                    break; // post-loop requeue covers a failed SHARD send
                }
            }
            Ok(Incoming::Message(Message::Outcome { id, events, wall_nanos, runs })) => {
                let shard = id as usize;
                if shard < shared.shards.len() {
                    let result = shard_run_from_wire(shared, shard, events, wall_nanos, runs);
                    shared.complete(conn, shard, result);
                }
            }
            Ok(Incoming::Message(Message::Failed { id, message })) => {
                let shard = id as usize;
                if shard < shared.shards.len() {
                    let path = PathBuf::from(&shared.shards[shard].name);
                    shared.complete(conn, shard, Err(DriverError { path, message }));
                }
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    break;
                }
            }
            Ok(Incoming::Message(_)) | Ok(Incoming::Eof) | Err(_) => break,
        }
    }
    // Whatever ended this connection — disconnect, protocol error, or
    // shutdown — any outstanding lease goes back to the queue.
    shared.requeue_worker(conn);
}

fn serve_submit(shared: &Shared, mut stream: TcpStream) {
    loop {
        match proto::read_message(&mut stream) {
            Ok(Incoming::Message(Message::Submit)) => {
                shared.wait_complete();
                let reply = match shared.fold() {
                    Ok((shards, merged, workers)) => Message::Report {
                        workers: workers as u32,
                        shards: shards.len() as u64,
                        events: shards.iter().map(|shard| shard.events as u64).sum(),
                        wall_nanos: shared.started.elapsed().as_nanos() as u64,
                        runs: merged
                            .into_iter()
                            .map(|run| WireRun {
                                time_nanos: run.time.as_nanos() as u64,
                                outcome: run.outcome,
                            })
                            .collect(),
                    },
                    Err(error) => Message::Error { message: format!("cannot analyze {error}") },
                };
                let _ = proto::write_message(&mut stream, &reply);
                shared.shutdown_now();
                return;
            }
            Ok(Incoming::Idle) => {
                if shared.is_shutdown() {
                    return;
                }
            }
            _ => return,
        }
    }
}
