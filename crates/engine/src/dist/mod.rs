//! The distributed front-end for the shard driver: a coordinator/worker
//! protocol over TCP, folding remote outcomes with the exact same merge
//! path as a local `jobs = N` run.
//!
//! # Architecture
//!
//! Three pieces, one per submodule:
//!
//! * [`proto`] — the `RWP` message protocol: length-prefixed frames
//!   (`HELLO`/`WELCOME`/`LEASE`/`SHARD`/`OUTCOME`/`FAILED`/`DONE`/
//!   `SUBMIT`/`REPORT`/`ERROR`) whose payloads use the same shared wire
//!   primitives as the `.rwf` trace codec, and whose results embed
//!   [`Outcome`](crate::Outcome) blobs in the `RWO` codec
//!   ([`crate::outcome::wire`]).
//! * [`coordinator`] — `engine serve`: owns the shard list, leases shards
//!   to workers (shipping the shard *bytes*, so workers need no shared
//!   filesystem), requeues shards whose worker disconnected or whose lease
//!   expired, and folds completed outcomes through
//!   [`fold_runs`](crate::driver::fold_runs) in input order.
//! * [`worker`] — `engine work` and `engine submit`: a TCP
//!   [`WorkSource`](crate::driver::WorkSource)/[`ResultSink`](crate::driver::ResultSink)
//!   pair pumping the same [`drive_queue`](crate::driver::drive_queue)
//!   loop as the local pool, and the submit client that fetches the final
//!   merged report (which also shuts the coordinator down).
//!
//! # Distributed ≡ local
//!
//! Determinism carries over from the local driver wholesale: results are
//! slotted by shard index, folded in *input* order only after every shard
//! completes, and each shard is analyzed by a fresh engine + detector set
//! (prescribed by the coordinator's `WELCOME`, so a fleet cannot run
//! mismatched configurations).  A coordinator + N workers therefore
//! produces a merged [`Outcome`](crate::Outcome) equal — `PartialEq`,
//! metrics included — to `run_shards` at any local job count, and
//! byte-identical rendered race pairs.  Lease bookkeeping guarantees each
//! shard folds exactly once: a dead worker's shard is requeued, and a late
//! duplicate result (expired lease, slow worker) is ignored.
//!
//! The wire layouts, message flow and lease/requeue semantics are
//! specified normatively in `docs/PROTOCOL.md`.

pub mod coordinator;
pub mod proto;
pub mod worker;

pub use coordinator::{Coordinator, ServeConfig, ServeReport};
pub use worker::{submit, work, RemoteQueue, SubmitReport, WorkSummary};
