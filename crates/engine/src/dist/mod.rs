//! The distributed front-end for the shard driver: a resident,
//! multi-tenant coordinator/worker protocol over TCP, folding remote
//! outcomes with the exact same merge path as a local `jobs = N` run.
//!
//! # Architecture
//!
//! Four pieces, one per submodule:
//!
//! * [`proto`] — the `RWP` v4 message protocol: length-prefixed,
//!   CRC-32-checksummed frames
//!   (`HELLO`/`WELCOME`/`LEASE`/`GRANT`/`HAVE`/`PULL`/`STALE`/
//!   `SHARD_OPEN`/`SHARD_CHUNK`/`OUTCOME`/`FAILED`/`DONE`/`JOB_OPEN`/
//!   `JOB_ACCEPT`/`JOB_CLOSE`/`REPORT`/`ERROR`/`FETCH`/`SHUTDOWN`) whose
//!   payloads use the same shared wire primitives as the `.rwf` trace
//!   codec, and whose results embed [`Outcome`](crate::Outcome) blobs in
//!   the `RWO` codec ([`crate::outcome::wire`]).  Every shard carries a
//!   stable content identity ([`proto::ContentId`]: length + CRC-32);
//!   grants are content-addressed, so a worker holding the bytes answers
//!   `HAVE` and nothing re-crosses the wire, and otherwise `PULL`s the
//!   chunk stream.  Shard bytes move as chunk streams in both
//!   directions, so no single frame ever has to hold a whole shard; a
//!   frame corrupted in transit is a typed error, never a silently wrong
//!   verdict.
//! * [`chaos`] — deterministic, seeded fault injection for tests and
//!   benches: a [`ChaosStream`](chaos::ChaosStream) perturbs the byte
//!   flow per a replayable [`FaultPlan`] (delays, bit flips, cuts,
//!   stalls), hooked in via [`ChaosConfig`] — default off, plain streams,
//!   zero overhead.  The fault semantics and the invariants the chaos
//!   suite enforces live in `docs/CHAOS.md`.
//! * [`coordinator`] — `engine serve`: a long-running job registry.  Each
//!   *named job* carries its own detector spec and shard set (file-backed
//!   for the pre-registered default job, client-streamed otherwise); the
//!   coordinator leases shards from every job across one worker fleet
//!   (shipping the shard *bytes*, so workers need no shared filesystem),
//!   places shards on workers via a rendezvous-hash ring with
//!   largest-first (LPT) tie-breaking, requeues shards whose worker
//!   disconnected or whose lease expired, speculatively re-leases
//!   stragglers to idle workers when configured, folds each job's
//!   outcomes through [`fold_runs`](crate::driver::fold_runs) in input
//!   order, and answers `REPORT` per job without shutting down.  The
//!   scheduling model is specified in `docs/PLACEMENT.md`.
//! * [`worker`] — `engine work` and `engine submit`: a TCP
//!   [`WorkSource`](crate::driver::WorkSource)/[`ResultSink`](crate::driver::ResultSink)
//!   pair pumping the same [`drive_queue`](crate::driver::drive_queue)
//!   loop as the local pool (reconnecting with capped exponential backoff
//!   when the coordinator drops), with an optional content-addressed
//!   [`ShardCache`](worker::ShardCache) and a prefetch pipeline that
//!   overlaps the next lease's transfer with the current shard's
//!   analysis, and the submit client that opens jobs, streams shards,
//!   and fetches per-job merged reports.
//!
//! # Distributed ≡ local
//!
//! Determinism carries over from the local driver wholesale: results are
//! slotted by `(job, shard)` index, folded in *input* order only after
//! every shard of the job completes, and each shard is analyzed by a
//! fresh engine + detector set (prescribed per job by the `GRANT`, so one
//! fleet can serve jobs with different configurations without mixing
//! them).  A coordinator + N workers therefore produces, for every job, a
//! merged [`Outcome`](crate::Outcome) equal — `PartialEq`, metrics
//! included — to `run_shards` over that job's shards at any local job
//! count, and byte-identical rendered race pairs.  Lease bookkeeping
//! guarantees each shard folds exactly once: a dead worker's shard is
//! requeued, and a late duplicate result (expired lease, slow worker, or
//! the losing side of a speculative re-lease) is answered with a
//! non-fatal `STALE` ack and never folded.
//!
//! The wire layouts, message flow, job lifecycle and lease/requeue
//! semantics are specified normatively in `docs/PROTOCOL.md`.

pub mod chaos;
pub mod coordinator;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosConfig, FaultAction, FaultPlan};
pub use coordinator::{
    Coordinator, JobOutcome, ServeConfig, ServeControl, ServeSummary, DEFAULT_JOB,
};
pub use proto::ContentId;
pub use worker::{
    shutdown, submit, work, RemoteQueue, ShardCache, SubmitConfig, SubmitReport, WorkConfig,
    WorkSummary,
};
