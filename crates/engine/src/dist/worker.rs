//! The worker side of the distributed driver: a TCP [`WorkSource`] /
//! [`ResultSink`] pair, the `engine work` loop built on
//! [`drive_queue`](crate::driver::drive_queue), and the `engine submit`
//! client that fetches the final merged report.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::detector::DetectorSpec;
use crate::driver::{
    drive_queue, DriverConfig, DriverError, QueueStats, ResultSink, ShardInput, ShardRun, WorkItem,
    WorkSource,
};
use crate::engine::DetectorRun;

use super::proto::{self, Message, Role, WireRun};

/// How long a client keeps retrying the initial TCP connect — covers the
/// "worker started before the coordinator" race in scripts and CI.
const CONNECT_PATIENCE: Duration = Duration::from_secs(10);

/// How long a worker waits for the coordinator to answer a `LEASE` — this
/// legitimately takes as long as the slowest in-flight shard elsewhere in
/// the fleet, so it is generous.
const LEASE_PATIENCE: Duration = Duration::from_secs(3600);

/// Handshake replies, by contrast, should be immediate.
const HANDSHAKE_PATIENCE: Duration = Duration::from_secs(30);

fn connect_retry(addr: &str, patience: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + patience;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                // A short read timeout makes `expect_message` observe
                // `Idle` ticks between frames, so the patience deadlines
                // below can actually fire — a blocking read would wait on
                // a silently-dead coordinator forever.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                return Ok(stream);
            }
            Err(error) => {
                if Instant::now() >= deadline {
                    return Err(format!("cannot connect to {addr}: {error}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Connects and handshakes, returning the stream and the coordinator's
/// `WELCOME` (detector spec + jobs hint).
fn handshake(addr: &str, role: Role) -> Result<(TcpStream, u32, DetectorSpec), String> {
    let mut stream = connect_retry(addr, CONNECT_PATIENCE)?;
    proto::write_message(&mut stream, &Message::Hello { role })
        .map_err(|error| format!("{addr}: {error}"))?;
    match proto::expect_message(&mut stream, HANDSHAKE_PATIENCE) {
        Ok(Message::Welcome { jobs_hint, spec }) => Ok((stream, jobs_hint, spec)),
        Ok(other) => Err(format!("{addr}: expected WELCOME, got {other:?}")),
        Err(error) => Err(format!("{addr}: {error}")),
    }
}

/// The TCP [`WorkSource`]/[`ResultSink`]: `claim` is a `LEASE` round-trip,
/// `submit` an `OUTCOME`/`FAILED` message.  One connection per queue; a
/// multi-threaded worker opens one queue per thread so lease bookkeeping
/// stays per-connection.
pub struct RemoteQueue {
    addr: String,
    stream: Mutex<TcpStream>,
}

impl RemoteQueue {
    /// Connects to a coordinator and handshakes as a worker.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures, rendered.
    pub fn connect(addr: &str) -> Result<(Self, u32, DetectorSpec), String> {
        let (stream, jobs_hint, spec) = handshake(addr, Role::Worker)?;
        Ok((RemoteQueue { addr: addr.to_owned(), stream: Mutex::new(stream) }, jobs_hint, spec))
    }

    fn transport_error(&self, message: String) -> DriverError {
        DriverError { path: PathBuf::from(&self.addr), message }
    }
}

impl WorkSource for RemoteQueue {
    fn claim(&self) -> Result<Option<WorkItem>, DriverError> {
        let mut stream = self.stream.lock().expect("remote queue poisoned");
        proto::write_message(&mut *stream, &Message::Lease)
            .map_err(|error| self.transport_error(error.to_string()))?;
        match proto::expect_message(&mut stream, LEASE_PATIENCE) {
            Ok(Message::Shard { id, name, text, bytes }) => Ok(Some(WorkItem {
                id: id as usize,
                label: name,
                input: ShardInput::Bytes { text, bytes },
            })),
            Ok(Message::Done) => Ok(None),
            Ok(other) => {
                Err(self.transport_error(format!("expected SHARD or DONE, got {other:?}")))
            }
            Err(error) => Err(self.transport_error(error.to_string())),
        }
    }
}

impl ResultSink for RemoteQueue {
    fn submit(&self, id: usize, result: Result<ShardRun, DriverError>) -> Result<(), DriverError> {
        let message = match result {
            Ok(run) => Message::Outcome {
                id: id as u32,
                events: run.events as u64,
                wall_nanos: run.wall.as_nanos() as u64,
                runs: run
                    .runs
                    .into_iter()
                    .map(|run| WireRun {
                        time_nanos: run.time.as_nanos() as u64,
                        outcome: run.outcome,
                    })
                    .collect(),
            },
            Err(error) => Message::Failed { id: id as u32, message: error.message },
        };
        let mut stream = self.stream.lock().expect("remote queue poisoned");
        proto::write_message(&mut *stream, &message)
            .map_err(|error| self.transport_error(error.to_string()))
    }
}

/// What one `engine work` invocation processed.
#[derive(Debug, Clone)]
pub struct WorkSummary {
    /// Worker threads (= connections) used.
    pub jobs: usize,
    /// The detector spec the coordinator prescribed.
    pub spec: DetectorSpec,
    /// Shards and events across all threads.
    pub stats: QueueStats,
}

/// Runs a worker against the coordinator at `addr`: `jobs` threads (or the
/// coordinator's hint, or this machine's parallelism), each with its own
/// connection, each pumping the shared
/// [`drive_queue`](crate::driver::drive_queue) loop until the coordinator
/// answers `DONE`.
///
/// # Errors
///
/// Connection or handshake failures; transport failures mid-run.  Shard
/// *analysis* failures are not worker errors — they are reported to the
/// coordinator as `FAILED` and surface in the merged report.
pub fn work(addr: &str, jobs: Option<usize>) -> Result<WorkSummary, String> {
    // Probe handshake: learn the spec and the coordinator's parallelism
    // hint before deciding the thread count.
    let (probe, jobs_hint, spec) = RemoteQueue::connect(addr)?;
    drop(probe);
    spec.validate()?;
    let jobs = jobs
        .or(if jobs_hint > 0 { Some(jobs_hint as usize) } else { None })
        .unwrap_or_else(crate::driver::available_jobs)
        .max(1);

    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let total: Mutex<QueueStats> = Mutex::new(QueueStats::default());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let run = || -> Result<QueueStats, String> {
                    let (queue, _, spec) = RemoteQueue::connect(addr)?;
                    let factory = || spec.build().expect("spec validated at handshake");
                    drive_queue(&queue, &queue, &factory, &DriverConfig::default())
                        .map_err(|error| error.to_string())
                };
                match run() {
                    Ok(stats) => total.lock().expect("stats poisoned").absorb(stats),
                    Err(error) => errors.lock().expect("errors poisoned").push(error),
                }
            });
        }
    });

    let errors = errors.into_inner().expect("errors poisoned");
    let stats = total.into_inner().expect("stats poisoned");
    // A thread that lost its connection is only fatal when *nothing* was
    // accomplished — otherwise the coordinator has already requeued its
    // lease and the run as a whole can still succeed.
    if !errors.is_empty() && stats.shards == 0 {
        return Err(errors.join("; "));
    }
    Ok(WorkSummary { jobs, spec, stats })
}

/// The final merged report as fetched by `engine submit`.
#[derive(Debug, Clone)]
pub struct SubmitReport {
    /// Distinct workers that contributed results.
    pub workers: usize,
    /// Shards folded into the report.
    pub shards: usize,
    /// Total events across all shards.
    pub events: usize,
    /// Coordinator wall-clock from bind to completion.
    pub wall: Duration,
    /// Merged per-detector results, in registration order — the same values
    /// a local `run_shards` over the same shards produces.
    pub merged: Vec<DetectorRun>,
}

/// Connects to the coordinator at `addr`, waits until every shard is
/// analyzed, and returns the merged report.  Answering a submit shuts the
/// coordinator down.
///
/// # Errors
///
/// Connection failures, or the coordinator's own error (earliest failing
/// shard, like the local driver).
pub fn submit(addr: &str) -> Result<SubmitReport, String> {
    let (mut stream, _, _) = handshake(addr, Role::Submit)?;
    proto::write_message(&mut stream, &Message::Submit)
        .map_err(|error| format!("{addr}: {error}"))?;
    // The report arrives when the last shard completes — indefinitely far
    // in the future for a big workload, so patience here is effectively
    // unbounded.
    match proto::expect_message(&mut stream, Duration::from_secs(7 * 24 * 3600)) {
        Ok(Message::Report { workers, shards, events, wall_nanos, runs }) => Ok(SubmitReport {
            workers: workers as usize,
            shards: shards as usize,
            events: events as usize,
            wall: Duration::from_nanos(wall_nanos),
            merged: runs
                .into_iter()
                .map(|run| DetectorRun {
                    outcome: run.outcome,
                    time: Duration::from_nanos(run.time_nanos),
                })
                .collect(),
        }),
        Ok(Message::Error { message }) => Err(message),
        Ok(other) => Err(format!("{addr}: expected REPORT, got {other:?}")),
        Err(error) => Err(format!("{addr}: {error}")),
    }
}
