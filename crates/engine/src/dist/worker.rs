//! The worker side of the distributed driver: a TCP [`WorkSource`] /
//! [`ResultSink`] pair with a bounded content-addressed shard cache
//! (grants whose bytes are resident answer `HAVE` and skip the pull), a
//! prefetch pipeline that fetches lease N+1 while lease N analyzes, the
//! `engine work` loop built on [`drive_queue`](crate::driver::drive_queue)
//! with capped-exponential reconnect backoff, and the `engine submit`
//! client that opens named jobs, streams shards as chunks, and fetches
//! per-job reports.

use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use rapid_trace::format::TextFormat;

use crate::detector::{Detector, DetectorSpec};
use crate::driver::{
    drive_queue, DriverConfig, DriverError, QueueStats, ResultSink, ShardInput, ShardRun, WorkItem,
    WorkSource,
};
use crate::engine::DetectorRun;
use crate::outcome::Metrics;

use super::chaos::{ChaosConfig, ChaosStream, FaultPlan, RwpStream};
use super::coordinator::DEFAULT_JOB;
use super::proto::{self, ContentId, Incoming, Message, Role, WireRun};

/// How long a client keeps retrying the initial TCP connect — covers the
/// "worker started before the coordinator" race in scripts and CI.
const CONNECT_PATIENCE: Duration = Duration::from_secs(10);

/// How long a worker waits for the coordinator to answer a `LEASE` — a
/// resident coordinator legitimately holds the lease open while its
/// registry is idle, so this is generous; a worker whose wait expires
/// reconnects through its retry budget.
const LEASE_PATIENCE: Duration = Duration::from_secs(3600);

/// Handshake replies, by contrast, should be immediate.
const HANDSHAKE_PATIENCE: Duration = Duration::from_secs(30);

/// How long a receiver waits between chunks of a shard already being
/// streamed to it.
const CHUNK_PATIENCE: Duration = Duration::from_secs(60);

/// First step of the reconnect backoff ladder (doubles per consecutive
/// failure, capped by [`WorkConfig::retry_max_wait`]).
const BACKOFF_BASE: Duration = Duration::from_millis(250);

/// Effectively unbounded: the default wait for a report that arrives only
/// when the last shard completes.
const REPORT_PATIENCE: Duration = Duration::from_secs(7 * 24 * 3600);

fn connect_retry(addr: &str, patience: Duration) -> Result<TcpStream, String> {
    let deadline = Instant::now() + patience;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                // A short read timeout makes `expect_message` observe
                // `Idle` ticks between frames, so the patience deadlines
                // below can actually fire — a blocking read would wait on
                // a silently-dead coordinator forever.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                return Ok(stream);
            }
            Err(error) => {
                if Instant::now() >= deadline {
                    return Err(format!("cannot connect to {addr}: {error}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Connects and handshakes, returning the stream and the coordinator's
/// `WELCOME` parallelism hint.  Detector configuration is per job in v2 —
/// it arrives with each `GRANT`, not at the handshake.  `patience` bounds
/// both the connect retry window and the `WELCOME` wait; `plan` wraps the
/// connection in chaos (tests/benches only, `None` in production).
fn handshake(
    addr: &str,
    role: Role,
    patience: Duration,
    plan: Option<FaultPlan>,
) -> Result<(RwpStream, u32), String> {
    let stream = connect_retry(addr, patience.min(CONNECT_PATIENCE))?;
    let mut stream = match plan {
        Some(plan) => RwpStream::Chaos(ChaosStream::new(stream, plan)),
        None => RwpStream::Plain(stream),
    };
    proto::write_message(&mut stream, &Message::Hello { role })
        .map_err(|error| format!("{addr}: {error}"))?;
    match proto::expect_message(&mut stream, patience) {
        Ok(Message::Welcome { jobs_hint }) => Ok((stream, jobs_hint)),
        Ok(other) => Err(format!("{addr}: expected WELCOME, got {other:?}")),
        Err(error) => Err(format!("{addr}: {error}")),
    }
}

/// Packs a `(job, shard)` grant into the single `usize` id the shared
/// queue loop carries — shard ids are only unique *within* a job.
fn pack_id(job: u32, shard: u32) -> usize {
    (((job as u64) << 32) | shard as u64) as usize
}

/// Inverse of [`pack_id`].
fn unpack_id(id: usize) -> (u32, u32) {
    ((id as u64 >> 32) as u32, id as u32)
}

/// A bounded worker-side byte cache keyed by shard *content identity* —
/// never by `(job, shard)` position, so a re-opened job whose bytes
/// changed misses while requeues and repeat submissions of unchanged
/// shards hit.  A grant whose content is resident answers `HAVE` instead
/// of pulling the chunk stream, so nothing re-crosses the wire.
/// Eviction is LRU by bytes; a budget of `0` disables the cache.
pub struct ShardCache {
    budget: usize,
    state: Mutex<CacheState>,
}

#[derive(Default)]
struct CacheState {
    entries: HashMap<ContentId, Arc<Vec<u8>>>,
    /// LRU order: front = coldest, back = most recently touched.
    order: VecDeque<ContentId>,
    bytes: usize,
}

impl ShardCache {
    /// An empty cache with `budget` bytes of capacity (0 disables it).
    pub fn new(budget: usize) -> Self {
        ShardCache { budget, state: Mutex::new(CacheState::default()) }
    }

    /// Looks a shard up by content id, marking it most-recently-used.
    pub fn get(&self, content: ContentId) -> Option<Arc<Vec<u8>>> {
        if self.budget == 0 {
            return None;
        }
        let mut state = self.state.lock().expect("shard cache poisoned");
        let bytes = state.entries.get(&content).cloned()?;
        if let Some(position) = state.order.iter().position(|&key| key == content) {
            state.order.remove(position);
            state.order.push_back(content);
        }
        Some(bytes)
    }

    /// Stores a shard's bytes under their content id, evicting coldest
    /// entries until the budget holds.  Oversized shards pass through
    /// uncached rather than wiping the whole cache for one tenant.
    pub fn put(&self, content: ContentId, bytes: Arc<Vec<u8>>) {
        if self.budget == 0 || bytes.len() > self.budget {
            return;
        }
        let mut state = self.state.lock().expect("shard cache poisoned");
        if state.entries.contains_key(&content) {
            return;
        }
        state.bytes += bytes.len();
        state.entries.insert(content, bytes);
        state.order.push_back(content);
        while state.bytes > self.budget {
            let Some(coldest) = state.order.pop_front() else { break };
            if let Some(evicted) = state.entries.remove(&coldest) {
                state.bytes -= evicted.len();
            }
        }
    }

    /// Resident bytes, for tests and summaries.
    pub fn len_bytes(&self) -> usize {
        self.state.lock().expect("shard cache poisoned").bytes
    }
}

/// The TCP [`WorkSource`]/[`ResultSink`]: `claim` is a `LEASE` round-trip
/// (a `GRANT`, then `HAVE`/`PULL` decides whether chunks stream), `submit`
/// an `OUTCOME`/`FAILED` message.  One connection per queue; a
/// multi-threaded worker opens one queue per thread so lease bookkeeping
/// stays per-connection.
pub struct RemoteQueue {
    addr: String,
    stream: Mutex<RwpStream>,
    /// Override for both the lease wait and the chunk wait — chaos tests
    /// bound stall scenarios with it; `None` keeps the production
    /// [`LEASE_PATIENCE`]/[`CHUNK_PATIENCE`].
    patience: Option<Duration>,
    /// Shared shard cache (across connections and reconnect attempts);
    /// `None` pulls every grant.
    cache: Option<Arc<ShardCache>>,
}

impl RemoteQueue {
    /// Connects to a coordinator and handshakes as a worker.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures, rendered.
    pub fn connect(addr: &str) -> Result<(Self, u32), String> {
        RemoteQueue::connect_with(addr, None, None)
    }

    /// [`connect`](Self::connect) with a patience override and an optional
    /// chaos plan on the connection (tests/benches only).
    ///
    /// # Errors
    ///
    /// Connection or handshake failures, rendered.
    pub fn connect_with(
        addr: &str,
        patience: Option<Duration>,
        plan: Option<FaultPlan>,
    ) -> Result<(Self, u32), String> {
        let handshake_patience = patience.map_or(HANDSHAKE_PATIENCE, |p| p.min(HANDSHAKE_PATIENCE));
        let (stream, jobs_hint) = handshake(addr, Role::Worker, handshake_patience, plan)?;
        let queue = RemoteQueue {
            addr: addr.to_owned(),
            stream: Mutex::new(stream),
            patience,
            cache: None,
        };
        Ok((queue, jobs_hint))
    }

    /// Attaches a shard cache (shared across a worker's connections and
    /// reconnect attempts): grants whose content is resident answer
    /// `HAVE` and skip the chunk stream.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ShardCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn transport_error(&self, message: String) -> DriverError {
        DriverError { path: PathBuf::from(&self.addr), message }
    }

    /// One `LEASE` round-trip on an already-locked stream.  `drain` runs
    /// before the lease goes out and again on every idle tick of the
    /// grant wait — the prefetch pump flushes finished results through
    /// it, because the coordinator may be holding this very lease open
    /// while it waits for one of them.  `STALE` acks (the non-fatal
    /// answer to a result whose shard already folded elsewhere) are
    /// dropped wherever they surface.
    fn claim_on(
        &self,
        stream: &mut RwpStream,
        drain: &mut dyn FnMut(&mut RwpStream) -> Result<(), DriverError>,
    ) -> Result<Option<WorkItem>, DriverError> {
        drain(stream)?;
        proto::write_message(stream, &Message::Lease)
            .map_err(|error| self.transport_error(error.to_string()))?;
        let lease_patience = self.patience.unwrap_or(LEASE_PATIENCE);
        let chunk_patience = self.patience.unwrap_or(CHUNK_PATIENCE);
        let deadline = Instant::now() + lease_patience;
        loop {
            drain(stream)?;
            match proto::read_message(stream) {
                Ok(Incoming::Message(Message::Grant {
                    job,
                    shard,
                    name,
                    text,
                    spec,
                    chunks,
                    content,
                })) => {
                    let id = pack_id(job, shard);
                    if let Some(cached) = self.cache.as_ref().and_then(|cache| cache.get(content)) {
                        proto::write_message(stream, &Message::Have { job, shard })
                            .map_err(|error| self.transport_error(error.to_string()))?;
                        return Ok(Some(WorkItem {
                            id,
                            label: name,
                            input: ShardInput::Bytes { text, bytes: cached },
                            spec: Some(spec),
                        }));
                    }
                    proto::write_message(stream, &Message::Pull { job, shard })
                        .map_err(|error| self.transport_error(error.to_string()))?;
                    let bytes = proto::read_chunks(stream, job, shard, chunks, chunk_patience)
                        .map_err(|error| self.transport_error(error.to_string()))?;
                    // The grant's content id gates the cache: bytes that
                    // do not match it must never enter under that key —
                    // and a coordinator shipping different bytes than it
                    // granted is a transport fault regardless.
                    let received = ContentId::of(&bytes);
                    if received != content {
                        return Err(self.transport_error(format!(
                            "granted shard {content} but received {received}"
                        )));
                    }
                    let bytes = Arc::new(bytes);
                    if let Some(cache) = &self.cache {
                        cache.put(content, Arc::clone(&bytes));
                    }
                    return Ok(Some(WorkItem {
                        id,
                        label: name,
                        input: ShardInput::Bytes { text, bytes },
                        spec: Some(spec),
                    }));
                }
                Ok(Incoming::Message(Message::Done)) => return Ok(None),
                Ok(Incoming::Message(Message::Stale { .. })) => {}
                Ok(Incoming::Message(other)) => {
                    return Err(
                        self.transport_error(format!("expected GRANT or DONE, got {other:?}"))
                    );
                }
                Ok(Incoming::Idle) => {
                    if Instant::now() >= deadline {
                        return Err(self.transport_error(format!(
                            "timed out after {lease_patience:?} waiting for GRANT"
                        )));
                    }
                }
                Ok(Incoming::Eof) => {
                    return Err(self
                        .transport_error("connection closed while waiting for GRANT".to_owned()));
                }
                Err(error) => return Err(self.transport_error(error.to_string())),
            }
        }
    }

    /// Sends one finished result on an already-locked stream.
    fn submit_on(
        &self,
        stream: &mut RwpStream,
        id: usize,
        result: Result<ShardRun, DriverError>,
    ) -> Result<(), DriverError> {
        let (job, shard) = unpack_id(id);
        let message = match result {
            Ok(run) => Message::Outcome {
                job,
                shard,
                events: run.events as u64,
                wall_nanos: run.wall.as_nanos() as u64,
                runs: run
                    .runs
                    .into_iter()
                    .map(|run| WireRun {
                        time_nanos: run.time.as_nanos() as u64,
                        outcome: run.outcome,
                    })
                    .collect(),
            },
            Err(error) => Message::Failed { job, shard, message: error.message },
        };
        proto::write_message(stream, &message)
            .map_err(|error| self.transport_error(error.to_string()))
    }
}

impl WorkSource for RemoteQueue {
    fn claim(&self) -> Result<Option<WorkItem>, DriverError> {
        let mut stream = self.stream.lock().expect("remote queue poisoned");
        self.claim_on(&mut stream, &mut |_| Ok(()))
    }
}

impl ResultSink for RemoteQueue {
    fn submit(&self, id: usize, result: Result<ShardRun, DriverError>) -> Result<(), DriverError> {
        let mut stream = self.stream.lock().expect("remote queue poisoned");
        self.submit_on(&mut stream, id, result)
    }
}

/// One `(shard id, result)` pair crossing the pipeline's result channel.
type PipelineResult = (usize, Result<ShardRun, DriverError>);

/// The analysis-facing half of the prefetch pipeline: `claim` receives
/// items an I/O thread fetched ahead of time, `submit` hands results back
/// without ever blocking on the network.  The channels cross a
/// rendezvous boundary sized zero, so the pump stays exactly one lease
/// ahead of analysis — enough to overlap transfer with detector compute,
/// never enough to hoard shards a second worker could run.
struct PipelinedQueue {
    addr: String,
    items: Mutex<mpsc::Receiver<Option<WorkItem>>>,
    results: Mutex<mpsc::Sender<PipelineResult>>,
    /// The pump's transport error, recorded *before* it closes the item
    /// channel so the analysis side wakes to the cause.
    failure: Mutex<Option<DriverError>>,
}

impl PipelinedQueue {
    fn closed_error(&self) -> DriverError {
        self.failure.lock().expect("pipeline poisoned").take().unwrap_or_else(|| DriverError {
            path: PathBuf::from(&self.addr),
            message: "prefetch pipeline closed unexpectedly".to_owned(),
        })
    }
}

impl WorkSource for PipelinedQueue {
    fn claim(&self) -> Result<Option<WorkItem>, DriverError> {
        match self.items.lock().expect("pipeline poisoned").recv() {
            Ok(item) => Ok(item),
            Err(_) => Err(self.closed_error()),
        }
    }
}

impl ResultSink for PipelinedQueue {
    fn submit(&self, id: usize, result: Result<ShardRun, DriverError>) -> Result<(), DriverError> {
        self.results
            .lock()
            .expect("pipeline poisoned")
            .send((id, result))
            .map_err(|_| self.closed_error())
    }
}

/// The I/O half of the prefetch pipeline: claims lease N+1 while the
/// analysis thread works on lease N, flushing finished results to the
/// coordinator between lease polls.  Any transport error lands in
/// `failure` before the item channel closes (the channel sender is owned
/// here and drops on return).
fn pump(
    queue: &RemoteQueue,
    item_tx: mpsc::SyncSender<Option<WorkItem>>,
    result_rx: mpsc::Receiver<PipelineResult>,
    failure: &Mutex<Option<DriverError>>,
) {
    if let Err(error) = pump_io(queue, &item_tx, &result_rx) {
        *failure.lock().expect("pipeline poisoned") = Some(error);
    }
}

/// The poll cadence of the pipelined connection: short enough that a
/// result finishing while the next lease waits on an empty queue reaches
/// the coordinator within ~5ms — the coordinator may be holding that
/// very lease open until the result folds.
const PIPELINE_POLL: Duration = Duration::from_millis(5);

fn pump_io(
    queue: &RemoteQueue,
    item_tx: &mpsc::SyncSender<Option<WorkItem>>,
    result_rx: &mpsc::Receiver<PipelineResult>,
) -> Result<(), DriverError> {
    {
        let stream = queue.stream.lock().expect("remote queue poisoned");
        let _ = stream.set_read_timeout(Some(PIPELINE_POLL));
    }
    loop {
        let item = {
            let mut stream = queue.stream.lock().expect("remote queue poisoned");
            queue.claim_on(&mut stream, &mut |stream| {
                while let Ok((id, result)) = result_rx.try_recv() {
                    queue.submit_on(stream, id, result)?;
                }
                Ok(())
            })?
        };
        let done = item.is_none();
        if item_tx.send(item).is_err() {
            // The analysis side bailed; its own error is already on
            // record and there is nobody left to feed.
            return Ok(());
        }
        if done {
            // The rendezvous send above returned only after analysis
            // consumed the end marker, so every result it will ever
            // produce is already in the channel.  Flush the tail.
            let mut stream = queue.stream.lock().expect("remote queue poisoned");
            while let Ok((id, result)) = result_rx.try_recv() {
                queue.submit_on(&mut stream, id, result)?;
            }
            return Ok(());
        }
    }
}

/// Runs [`drive_queue`] behind the prefetch pipeline: an I/O thread owns
/// `queue`'s connection and keeps one lease in flight ahead of the
/// analysis running on the calling thread.
fn drive_pipelined<F>(queue: &RemoteQueue, factory: &F) -> Result<QueueStats, DriverError>
where
    F: Fn() -> Vec<Box<dyn Detector>>,
{
    let (item_tx, item_rx) = mpsc::sync_channel(0);
    let (result_tx, result_rx) = mpsc::channel();
    let pipeline = PipelinedQueue {
        addr: queue.addr.clone(),
        items: Mutex::new(item_rx),
        results: Mutex::new(result_tx),
        failure: Mutex::new(None),
    };
    std::thread::scope(|scope| {
        let failure = &pipeline.failure;
        scope.spawn(move || pump(queue, item_tx, result_rx, failure));
        drive_queue(&pipeline, &pipeline, factory, &DriverConfig::default())
    })
}

/// Configuration of one `engine work` invocation.
#[derive(Debug, Clone)]
pub struct WorkConfig {
    /// Worker threads (= connections); `None` falls back to the
    /// coordinator's hint, then this machine's parallelism.
    pub jobs: Option<usize>,
    /// How many times to reconnect after the coordinator refuses a
    /// connection or drops one mid-lease, with capped exponential backoff
    /// between attempts.  The counter resets whenever an attempt makes
    /// progress (processes at least one shard).
    pub retries: u32,
    /// Upper bound on one backoff sleep.
    pub retry_max_wait: Duration,
    /// Override for the lease/chunk waits — chaos tests bound stall
    /// scenarios with it; `None` keeps the production patience.
    pub patience: Option<Duration>,
    /// Shard cache budget in bytes, shared across this invocation's
    /// connections *and* reconnect attempts (LRU by content id); 0
    /// disables caching and every grant pulls its chunks.
    pub cache_bytes: usize,
    /// Double-buffer each connection: an I/O thread claims and fetches
    /// lease N+1 while lease N analyzes, overlapping transfer with
    /// detector compute.
    pub prefetch: bool,
    /// Test/bench-only fault injection on this worker's connections
    /// (default off).  Connections are numbered 0, 1, … across reconnect
    /// attempts, so a schedule can hit the first connection and spare the
    /// retry.
    pub chaos: ChaosConfig,
}

impl Default for WorkConfig {
    /// No reconnects (fail fast — the library default; the CLI layers its
    /// own default of 3 retries on top), 30-second backoff cap, no cache,
    /// no prefetch (the CLI enables both by default).
    fn default() -> Self {
        WorkConfig {
            jobs: None,
            retries: 0,
            retry_max_wait: Duration::from_secs(30),
            patience: None,
            cache_bytes: 0,
            prefetch: false,
            chaos: ChaosConfig::default(),
        }
    }
}

/// The capped exponential ladder: 250ms, 500ms, 1s, … up to `max`.
fn backoff_wait(failures: u32, max: Duration) -> Duration {
    BACKOFF_BASE.saturating_mul(1u32 << failures.saturating_sub(1).min(16)).min(max)
}

/// What one `engine work` invocation processed.
#[derive(Debug, Clone)]
pub struct WorkSummary {
    /// Worker threads (= connections) used.
    pub jobs: usize,
    /// Shards and events across all threads and reconnect attempts.
    pub stats: QueueStats,
}

/// One connection-fleet attempt: `jobs` threads, each with its own
/// connection, pumping the shared queue loop until `DONE` or a transport
/// failure.  Returns the thread count used, the stats accumulated, and
/// whether every thread ended cleanly (coordinator said `DONE`).
fn work_attempt(
    addr: &str,
    config: &WorkConfig,
    conn_seq: &AtomicU64,
    cache: Option<&Arc<ShardCache>>,
) -> Result<(usize, QueueStats, bool), String> {
    // Probe handshake: learn the coordinator's parallelism hint before
    // deciding the thread count (and fail fast if it is unreachable).  The
    // probe stays clean — chaos plans are spent on the connections that
    // actually lease, keeping seeded schedules deterministic — but honours
    // the patience override so bounded-patience runs also bound their
    // connect window.
    let (probe, jobs_hint) = RemoteQueue::connect_with(addr, config.patience, None)?;
    drop(probe);
    let jobs = config
        .jobs
        .or(if jobs_hint > 0 { Some(jobs_hint as usize) } else { None })
        .unwrap_or_else(crate::driver::available_jobs)
        .max(1);

    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let total: Mutex<QueueStats> = Mutex::new(QueueStats::default());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let run = || -> Result<QueueStats, String> {
                    let plan = config.chaos.plan_for(conn_seq.fetch_add(1, Ordering::Relaxed));
                    let (queue, _) = RemoteQueue::connect_with(addr, config.patience, plan)?;
                    let queue = match cache {
                        Some(cache) => queue.with_cache(Arc::clone(cache)),
                        None => queue,
                    };
                    // Grants carry their job's spec; the factory is only
                    // the fallback for spec-less items, which a v2
                    // coordinator never sends.
                    let factory = || DetectorSpec::default().build().expect("default spec builds");
                    if config.prefetch {
                        drive_pipelined(&queue, &factory).map_err(|error| error.to_string())
                    } else {
                        drive_queue(&queue, &queue, &factory, &DriverConfig::default())
                            .map_err(|error| error.to_string())
                    }
                };
                match run() {
                    Ok(stats) => total.lock().expect("stats poisoned").absorb(stats),
                    Err(error) => errors.lock().expect("errors poisoned").push(error),
                }
            });
        }
    });

    let errors = errors.into_inner().expect("errors poisoned");
    let stats = total.into_inner().expect("stats poisoned");
    if !errors.is_empty() && stats.shards == 0 && errors.len() == jobs {
        // Every thread failed without processing anything — surface it as
        // an attempt failure so the retry ladder can reconnect.
        return Err(errors.join("; "));
    }
    Ok((jobs, stats, errors.is_empty()))
}

/// Runs a worker against the coordinator at `addr` until the service
/// drains (`DONE`), reconnecting through `config.retries` attempts with
/// capped exponential backoff when the coordinator refuses a connection or
/// drops one mid-lease.  Stats accumulate across attempts.
///
/// # Errors
///
/// Connection, handshake, or transport failures once the retry budget is
/// spent — and only if *nothing* was accomplished; a worker that processed
/// shards before losing its coordinator reports success (the coordinator
/// has already requeued whatever it still owed).
pub fn work(addr: &str, config: &WorkConfig) -> Result<WorkSummary, String> {
    let mut summary = WorkSummary { jobs: 0, stats: QueueStats::default() };
    let mut failures = 0u32;
    // Numbers this invocation's leasing connections 0, 1, … across all
    // attempts, so a chaos schedule addresses them deterministically.
    let conn_seq = AtomicU64::new(0);
    // One cache for the whole invocation: connections share it, and a
    // reconnect attempt re-HAVEs what the dropped connection pulled.
    let cache = (config.cache_bytes > 0).then(|| Arc::new(ShardCache::new(config.cache_bytes)));
    loop {
        let error = match work_attempt(addr, config, &conn_seq, cache.as_ref()) {
            Ok((jobs, stats, clean)) => {
                summary.jobs = summary.jobs.max(jobs);
                let progressed = stats.shards > 0;
                summary.stats.absorb(stats);
                if clean {
                    return Ok(summary);
                }
                if progressed {
                    failures = 0;
                }
                format!("{addr}: connection dropped mid-lease")
            }
            Err(error) => error,
        };
        failures += 1;
        if failures > config.retries {
            if summary.stats.shards == 0 {
                return Err(error);
            }
            summary.jobs = summary.jobs.max(1);
            return Ok(summary);
        }
        std::thread::sleep(backoff_wait(failures, config.retry_max_wait));
    }
}

/// Configuration of one `engine submit` invocation.
#[derive(Debug, Clone)]
pub struct SubmitConfig {
    /// The job to open (with `paths`) or fetch (without); `None` fetches
    /// the coordinator's file-backed [`DEFAULT_JOB`].
    pub job: Option<String>,
    /// Shard files to stream into a newly-opened job.  Empty means
    /// "report-only": fetch the named job's report.
    pub paths: Vec<PathBuf>,
    /// The detector set the opened job runs.
    pub spec: DetectorSpec,
    /// Text flavour override; `None` decides per shard by file extension.
    pub text: Option<TextFormat>,
    /// Give up (exit with an error) if the report has not arrived after
    /// this long; `None` waits effectively forever.
    pub timeout: Option<Duration>,
    /// Payload size of the `SHARD_CHUNK` frames streamed to the
    /// coordinator.
    pub chunk_len: usize,
    /// Test/bench-only fault injection on the submit connection (default
    /// off).
    pub chaos: ChaosConfig,
}

impl Default for SubmitConfig {
    /// Report-only fetch of the default job, default detectors, no
    /// timeout.
    fn default() -> Self {
        SubmitConfig {
            job: None,
            paths: Vec::new(),
            spec: DetectorSpec::default(),
            text: None,
            timeout: None,
            chunk_len: proto::CHUNK_LEN,
            chaos: ChaosConfig::default(),
        }
    }
}

/// The merged report of one job as fetched by `engine submit`.
#[derive(Debug, Clone)]
pub struct SubmitReport {
    /// Distinct workers that contributed results.
    pub workers: usize,
    /// Shards folded into the report.
    pub shards: usize,
    /// Total events across all shards.
    pub events: usize,
    /// Job wall-clock from open to completion.
    pub wall: Duration,
    /// Merged per-detector results, in registration order — the same values
    /// a local `run_shards` over the same shards produces.
    pub merged: Vec<DetectorRun>,
    /// Job-level scheduling telemetry from the coordinator
    /// (`bytes_transferred`, `cache_hits`, `leases_stolen`) — kept beside
    /// the merged outcomes, never inside them, so they stay comparable to
    /// a local run's.
    pub scheduling: Metrics,
}

fn report_from_reply(
    addr: &str,
    reply: Result<Message, proto::ProtoError>,
) -> Result<SubmitReport, String> {
    match reply {
        Ok(Message::Report { workers, shards, events, wall_nanos, runs, scheduling }) => {
            Ok(SubmitReport {
                workers: workers as usize,
                shards: shards as usize,
                events: events as usize,
                wall: Duration::from_nanos(wall_nanos),
                merged: runs
                    .into_iter()
                    .map(|run| DetectorRun {
                        outcome: run.outcome,
                        time: Duration::from_nanos(run.time_nanos),
                    })
                    .collect(),
                scheduling,
            })
        }
        Ok(Message::Error { message }) => Err(message),
        Ok(other) => Err(format!("{addr}: expected REPORT, got {other:?}")),
        Err(error) => Err(format!("{addr}: {error}")),
    }
}

/// Submits work to the resident coordinator at `addr` and waits for the
/// job's merged report.  With `paths`, a new job named `config.job` is
/// opened, every shard file is streamed as chunks, and the job is closed;
/// without, the named (or default) job's report is fetched.  Either way
/// the coordinator keeps serving afterwards — shutting it down is
/// [`shutdown`]'s business.
///
/// # Errors
///
/// Connection failures, a timeout ([`SubmitConfig::timeout`]), the
/// coordinator's rejection (duplicate job name, draining service), or the
/// job's own failure (earliest failing shard, like the local driver).
pub fn submit(addr: &str, config: &SubmitConfig) -> Result<SubmitReport, String> {
    // `--timeout` bounds every wait of the submit conversation, not just
    // the report: the connect window, the WELCOME wait and the JOB_ACCEPT
    // wait all take the tighter of the handshake default and the caller's
    // timeout, so a coordinator that accepts TCP but never answers fails
    // within the budget instead of hanging on the 30-second default.
    let handshake_patience =
        config.timeout.map_or(HANDSHAKE_PATIENCE, |t| t.min(HANDSHAKE_PATIENCE));
    let (mut stream, _) =
        handshake(addr, Role::Submit, handshake_patience, config.chaos.plan_for(0))?;
    let patience = config.timeout.unwrap_or(REPORT_PATIENCE);
    if config.paths.is_empty() {
        let name = config.job.clone().unwrap_or_else(|| DEFAULT_JOB.to_owned());
        proto::write_message(&mut stream, &Message::Fetch { name })
            .map_err(|error| format!("{addr}: {error}"))?;
        return report_from_reply(addr, proto::expect_message(&mut stream, patience));
    }

    let name = config
        .job
        .clone()
        .ok_or_else(|| "submitting shard files requires a job name".to_owned())?;
    let open =
        Message::JobOpen { name, spec: config.spec.clone(), shards: config.paths.len() as u32 };
    proto::write_message(&mut stream, &open).map_err(|error| format!("{addr}: {error}"))?;
    let job = match proto::expect_message(&mut stream, handshake_patience) {
        Ok(Message::JobAccept { job }) => job,
        Ok(Message::Error { message }) => return Err(message),
        Ok(other) => return Err(format!("{addr}: expected JOB_ACCEPT, got {other:?}")),
        Err(error) => return Err(format!("{addr}: {error}")),
    };

    let chunk_len = config.chunk_len.max(1);
    for (index, path) in config.paths.iter().enumerate() {
        let bytes = std::fs::read(path)
            .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
        let header = Message::ShardOpen {
            job,
            shard: index as u32,
            name: path.display().to_string(),
            text: config.text.unwrap_or_else(|| TextFormat::from_path(path)),
            chunks: proto::chunk_count(bytes.len() as u64, chunk_len),
        };
        proto::write_message(&mut stream, &header).map_err(|error| format!("{addr}: {error}"))?;
        proto::write_chunks(&mut stream, job, index as u32, &bytes, chunk_len)
            .map_err(|error| format!("{addr}: {error}"))?;
    }

    proto::write_message(&mut stream, &Message::JobClose { job })
        .map_err(|error| format!("{addr}: {error}"))?;
    // The report arrives when the job's last shard completes —
    // indefinitely far in the future for a big workload, so the wait is
    // effectively unbounded unless the caller set a timeout.
    report_from_reply(addr, proto::expect_message(&mut stream, patience))
}

/// Asks the coordinator at `addr` to drain gracefully: finish closed jobs,
/// reject new ones, then exit.  Returns once the coordinator acknowledges
/// (it may keep running until in-flight jobs complete).
///
/// # Errors
///
/// Connection or handshake failures, or a reply other than `DONE`.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let (mut stream, _) = handshake(addr, Role::Submit, HANDSHAKE_PATIENCE, None)?;
    proto::write_message(&mut stream, &Message::Shutdown)
        .map_err(|error| format!("{addr}: {error}"))?;
    match proto::expect_message(&mut stream, HANDSHAKE_PATIENCE) {
        Ok(Message::Done) => Ok(()),
        Ok(other) => Err(format!("{addr}: expected DONE, got {other:?}")),
        Err(error) => Err(format!("{addr}: {error}")),
    }
}
