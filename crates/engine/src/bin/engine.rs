//! Streaming analysis CLI: run any combination of detectors over one trace
//! file in a single pass, fan a *set* of shard files onto a worker pool —
//! in-process or across machines — or convert between the trace encodings.
//!
//! ```text
//! engine stream  <file> [--format std|csv] [--reader mmap|bufread]
//!                       [--detectors wcp,hb,fasttrack,mcm] [--window N]
//!                       [--timeout SECS] [--races] [--quiet] [--fail-on-race]
//! engine batch   <file> [same flags]      # parse fully, then analyze (for comparison)
//! engine multi   <files-or-dirs...> [--jobs N] [--per-shard] [same flags]
//!                                         # one engine per shard on a worker pool,
//!                                         # outcomes merged by location/variable names
//! engine serve   <files-or-dirs...> --bind <addr> [--jobs-hint N]
//!                                   [--lease-timeout SECS] [same flags]
//!                                         # coordinator: lease shards to TCP workers,
//!                                         # fold their outcomes, answer one submit
//! engine work    <addr> [--jobs N]        # worker: lease, analyze, return outcomes
//! engine submit  <addr> [--races] [--fail-on-race]
//!                                         # wait for completion, print the merged report
//! engine convert <in> <out>               # re-encode: .rwf out = binary, .csv out = CSV,
//!                                         # anything else = std text
//! ```
//!
//! Binary (`.rwf`) inputs are auto-detected by their magic bytes in every
//! mode, so `multi` and `serve` mix text and binary shards freely; for text
//! the format defaults to `csv` for `.csv` files and `std` otherwise.
//! `multi` and `serve` also accept shard *directories*, expanded to the
//! `.rwf`/`.csv`/`.std` files they contain in sorted name order (and
//! erroring on a directory with no trace files — no silent empty runs).
//! Text files are ingested through a memory map by default (`--reader
//! bufread` restores the copying `BufRead` path).  With `--races`, `stream`
//! prints each race the moment a detector flags it, and every analyzing
//! mode prints the final merged race pairs; `--quiet` suppresses the online
//! lines.  With `--fail-on-race` the process exits with code **2** when any
//! detector reports a race (exit 1 stays reserved for errors), so CI
//! pipelines can gate on detection results — `serve` and `submit` apply it
//! to the *merged* report, so a race on any shard of a fleet trips it.
//!
//! The trace encodings are specified in `docs/FORMAT.md`; the
//! coordinator/worker protocol and the outcome wire codec in
//! `docs/PROTOCOL.md`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rapid_engine::dist::{self, ServeConfig};
use rapid_engine::driver::{self, DriverConfig};
use rapid_engine::{Detector, DetectorRun, DetectorSpec, Engine};
use rapid_mcm::McmConfig;
use rapid_trace::format::{self, AnyReader, StreamNames, TextFormat};
use rapid_trace::{NameResolver, Race};

struct Options {
    mode: String,
    /// Positional arguments: one file for stream/batch, input+output for
    /// convert, one or more shard files or directories for multi/serve,
    /// a coordinator address for work/submit.
    paths: Vec<String>,
    format: Option<String>,
    use_mmap: bool,
    detectors: Vec<String>,
    window: usize,
    timeout: u64,
    jobs: Option<usize>,
    per_shard: bool,
    print_races: bool,
    quiet: bool,
    fail_on_race: bool,
    bind: Option<String>,
    jobs_hint: u32,
    lease_timeout: u64,
}

const USAGE: &str = "usage: engine <stream|batch> <file> [--format std|csv] \
[--reader mmap|bufread] [--detectors wcp,hb,fasttrack,mcm] [--window N] [--timeout SECS] \
[--races] [--quiet] [--fail-on-race]\n       engine multi <files-or-dirs...> [--jobs N] \
[--per-shard] [same flags]\n       engine serve <files-or-dirs...> --bind ADDR \
[--jobs-hint N] [--lease-timeout SECS] [same flags]\n       engine work <addr> [--jobs N]\n       \
engine submit <addr> [--races] [--fail-on-race]\n       engine convert <in> <out> \
[--format std|csv]";

/// Exit code when `--fail-on-race` is set and a race was detected.
const RACE_EXIT_CODE: u8 = 2;

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mode = args.next().ok_or(USAGE)?;
    if mode == "--help" || mode == "-h" {
        return Err(USAGE.to_owned());
    }
    if !matches!(
        mode.as_str(),
        "stream" | "batch" | "multi" | "convert" | "serve" | "work" | "submit"
    ) {
        return Err(format!("unknown mode `{mode}`\n{USAGE}"));
    }
    let mut options = Options {
        mode,
        paths: Vec::new(),
        format: None,
        use_mmap: true,
        detectors: vec!["wcp".to_owned(), "hb".to_owned()],
        window: McmConfig::default().window_size,
        timeout: McmConfig::default().solver_timeout_secs,
        jobs: None,
        per_shard: false,
        print_races: false,
        quiet: false,
        fail_on_race: false,
        bind: None,
        jobs_hint: 0,
        lease_timeout: 60,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format requires std or csv")?;
                if value != "std" && value != "csv" {
                    return Err(format!("unknown format `{value}`"));
                }
                options.format = Some(value);
            }
            "--reader" => {
                let value = args.next().ok_or("--reader requires mmap or bufread")?;
                match value.as_str() {
                    "mmap" => options.use_mmap = true,
                    "bufread" => options.use_mmap = false,
                    other => return Err(format!("unknown reader `{other}`")),
                }
            }
            "--detectors" => {
                let value = args.next().ok_or("--detectors requires a comma-separated list")?;
                options.detectors = value.split(',').map(str::to_owned).collect();
            }
            "--window" => {
                let value = args.next().ok_or("--window requires a value")?;
                options.window =
                    value.parse().map_err(|_| format!("invalid window size {value}"))?;
            }
            "--timeout" => {
                let value = args.next().ok_or("--timeout requires a value")?;
                options.timeout = value.parse().map_err(|_| format!("invalid timeout {value}"))?;
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs requires a value")?;
                let jobs: usize =
                    value.parse().map_err(|_| format!("invalid job count {value}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                options.jobs = Some(jobs);
            }
            "--bind" => {
                options.bind = Some(args.next().ok_or("--bind requires an address")?);
            }
            "--jobs-hint" => {
                let value = args.next().ok_or("--jobs-hint requires a value")?;
                options.jobs_hint =
                    value.parse().map_err(|_| format!("invalid jobs hint {value}"))?;
            }
            "--lease-timeout" => {
                let value = args.next().ok_or("--lease-timeout requires seconds")?;
                options.lease_timeout =
                    value.parse().map_err(|_| format!("invalid lease timeout {value}"))?;
                if options.lease_timeout == 0 {
                    return Err("--lease-timeout must be at least 1 second".to_owned());
                }
            }
            "--per-shard" => options.per_shard = true,
            "--races" => options.print_races = true,
            "--quiet" => options.quiet = true,
            "--fail-on-race" => options.fail_on_race = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown argument {other}\n{USAGE}"))
            }
            path => options.paths.push(path.to_owned()),
        }
    }
    let expected = match options.mode.as_str() {
        "convert" => "an input and an output path",
        "multi" | "serve" => "at least one trace file or directory",
        "work" | "submit" => "a coordinator address",
        _ => "a trace file",
    };
    let arity_ok = match options.mode.as_str() {
        "convert" => options.paths.len() == 2,
        "multi" | "serve" => !options.paths.is_empty(),
        "work" | "submit" => options.paths.len() == 1,
        _ => options.paths.len() == 1,
    };
    if !arity_ok {
        return Err(format!("{} requires {expected}\n{USAGE}", options.mode));
    }
    if options.mode == "serve" && options.bind.is_none() {
        return Err(format!("serve requires --bind ADDR\n{USAGE}"));
    }
    Ok(options)
}

/// The detector configuration named by the CLI flags.
fn spec(options: &Options) -> DetectorSpec {
    DetectorSpec {
        detectors: options.detectors.clone(),
        window: options.window,
        timeout_secs: options.timeout,
    }
}

/// Validates the detector list once up front (so worker factories can't
/// fail) and builds one fresh detector set.  `threads` pre-registers a known
/// thread count (batch mode) so the streaming cores reproduce the library
/// batch entry points exactly; stream/multi pass 0 and discover threads from
/// the file.
fn build_detectors(options: &Options, threads: usize) -> Result<Vec<Box<dyn Detector>>, String> {
    spec(options).build_with_threads(threads)
}

fn build_engine(options: &Options, threads: usize) -> Result<Engine, String> {
    let mut engine = Engine::new();
    for detector in build_detectors(options, threads)? {
        engine.register(detector);
    }
    Ok(engine)
}

fn text_format(options: &Options, path: &str) -> TextFormat {
    match options.format.as_deref() {
        Some("csv") => TextFormat::Csv,
        Some(_) => TextFormat::Std,
        None => TextFormat::from_path(path),
    }
}

/// The `--format` override as the driver/coordinator expect it.
fn text_override(options: &Options) -> Option<TextFormat> {
    options.format.as_deref().map(|name| match name {
        "csv" => TextFormat::Csv,
        _ => TextFormat::Std,
    })
}

fn open_reader(options: &Options, path: &str) -> Result<AnyReader, String> {
    AnyReader::open(path, text_format(options, path), options.use_mmap)
        .map_err(|error| format!("cannot read {path}: {error}"))
}

/// Expands shard directories into the trace files they contain (sorted),
/// erroring on a directory without any.
fn shard_paths(options: &Options) -> Result<Vec<PathBuf>, String> {
    let inputs: Vec<PathBuf> = options.paths.iter().map(PathBuf::from).collect();
    driver::expand_shard_paths(&inputs).map_err(|error| format!("cannot expand {error}"))
}

/// One line per race, printed the moment a detector flags it.
fn online_race_line(names: &StreamNames, detector: &str, race: &Race) -> String {
    format!(
        "race [{detector}] on {}: {} <-> {} ({} .. {})",
        names.variable_label(race.variable),
        names.location_label(race.first_location),
        names.location_label(race.second_location),
        race.first,
        race.second,
    )
}

/// Prints each detector's merged race pairs — name-keyed, so the output is
/// deterministic and identical across job counts, ingestion paths, and the
/// local/distributed divide.
fn print_race_pairs(runs: &[DetectorRun]) {
    print!("{}", Engine::render_race_pairs(runs));
}

fn any_races(runs: &[DetectorRun]) -> bool {
    runs.iter().any(|run| !run.outcome.races.is_empty())
}

fn convert(options: &Options) -> Result<bool, String> {
    let [input, output] = options.paths.as_slice() else {
        unreachable!("convert arity checked at parse time");
    };
    let reader = open_reader(options, input)?;
    let source = reader.source();
    let trace =
        format::collect_any(reader).map_err(|error| format!("cannot parse {input}: {error}"))?;
    format::write_trace_file(&trace, output)
        .map_err(|error| format!("cannot write {output}: {error}"))?;
    println!("converted {input} ({} events, {source}) -> {output}", trace.len());
    Ok(false)
}

/// Renders the merged half of a multi/serve/submit report: headline, table,
/// optional race pairs.
fn print_merged(options: &Options, headline: String, merged: &[DetectorRun]) {
    println!("{headline}");
    println!();
    print!("{}", Engine::render(merged));
    if options.print_races {
        println!();
        print_race_pairs(merged);
    }
}

/// The `multi` mode: shard files onto the worker-pool driver, then render
/// the merged report (and optionally the per-shard breakdown).
fn run_multi(options: &Options) -> Result<bool, String> {
    // Validate the detector list before spawning anything.
    build_detectors(options, 0)?;
    let paths = shard_paths(options)?;
    let config = DriverConfig {
        jobs: options.jobs.unwrap_or_else(driver::available_jobs),
        text: text_override(options),
        use_mmap: options.use_mmap,
    };
    let factory = || build_detectors(options, 0).expect("detector list validated above");
    let report = driver::run_shards(&paths, factory, &config)
        .map_err(|error| format!("cannot analyze {error}"))?;

    if options.per_shard {
        for shard in &report.shards {
            let races: Vec<String> = shard
                .runs
                .iter()
                .map(|run| format!("{} {}", run.outcome.detector, run.outcome.distinct_pairs()))
                .collect();
            println!(
                "shard {} ({} events via {}) in {:.2?}  [{}]",
                shard.path.display(),
                shard.events,
                shard.source,
                shard.wall,
                races.join(", "),
            );
        }
        println!();
    }
    print_merged(
        options,
        format!(
            "merged {} shard(s), {} events, jobs={} in {:.2?}",
            report.shards.len(),
            report.total_events(),
            report.jobs,
            report.wall,
        ),
        &report.merged,
    );
    Ok(report.has_races())
}

/// The `serve` mode: coordinate a worker fleet over the shard set, then
/// render the same merged report `multi` would.
fn run_serve(options: &Options) -> Result<bool, String> {
    let paths = shard_paths(options)?;
    let config = ServeConfig {
        bind: options.bind.clone().expect("checked at parse time"),
        spec: spec(options),
        text: text_override(options),
        jobs_hint: options.jobs_hint,
        lease_timeout: Duration::from_secs(options.lease_timeout),
    };
    let coordinator = dist::Coordinator::bind(&paths, &config)?;
    eprintln!(
        "serving {} shard(s) on {} (lease timeout {}s); waiting for workers…",
        paths.len(),
        coordinator.local_addr(),
        options.lease_timeout,
    );
    let served = coordinator.run()?;
    let report = &served.report;

    if options.per_shard {
        for shard in &report.shards {
            println!(
                "shard {} ({} events via {}) in {:.2?}",
                shard.path.display(),
                shard.events,
                shard.source,
                shard.wall,
            );
        }
        println!();
    }
    print_merged(
        options,
        format!(
            "served {} shard(s), {} events to {} worker(s) in {:.2?}",
            report.shards.len(),
            report.total_events(),
            report.jobs,
            report.wall,
        ),
        &report.merged,
    );
    Ok(report.has_races())
}

/// The `work` mode: pump the coordinator's queue until it answers DONE.
fn run_work(options: &Options) -> Result<bool, String> {
    let addr = options.paths[0].as_str();
    let summary = dist::work(addr, options.jobs)?;
    println!(
        "worker done: {} shard(s), {} events via {addr} (jobs={}, detectors={})",
        summary.stats.shards,
        summary.stats.events,
        summary.jobs,
        summary.spec.detectors.join(","),
    );
    Ok(false)
}

/// The `submit` mode: fetch the merged report once every shard completes.
fn run_submit(options: &Options) -> Result<bool, String> {
    let addr = options.paths[0].as_str();
    let report = dist::submit(addr)?;
    print_merged(
        options,
        format!(
            "merged {} shard(s), {} events from {} worker(s) in {:.2?}",
            report.shards, report.events, report.workers, report.wall,
        ),
        &report.merged,
    );
    Ok(any_races(&report.merged))
}

fn run(options: &Options) -> Result<bool, String> {
    let start = std::time::Instant::now();
    let path = options.paths[0].as_str();
    let runs;
    if options.mode == "stream" {
        // Single pass: file -> reader -> engine; the trace is never
        // materialized, so memory stays bounded by detector state.
        let mut engine = build_engine(options, 0)?;
        let mut reader = open_reader(options, path)?;
        let source = reader.source();
        let online = options.print_races && !options.quiet;
        while let Some(next) = reader.next() {
            let event = next.map_err(|error| format!("cannot parse {path}: {error}"))?;
            if online {
                engine.on_event_with(&event, |detector, race| {
                    println!("{}", online_race_line(reader.names(), detector, race));
                });
            } else {
                engine.on_event(&event);
            }
        }
        runs = engine.finish(reader.names());
        println!(
            "streamed {} events via {source} ({} distinct threads, {} variables) in {:.2?}",
            engine.events_seen(),
            reader.names().num_threads(),
            reader.names().num_variables(),
            start.elapsed()
        );
    } else {
        // Batch comparison path: materialize the trace, then drive the same
        // engine over it.
        let reader = open_reader(options, path)?;
        let source = reader.source();
        let trace =
            format::collect_any(reader).map_err(|error| format!("cannot parse {path}: {error}"))?;
        let mut engine = build_engine(options, trace.num_threads())?;
        engine.run_trace(&trace);
        runs = engine.finish(&trace);
        println!(
            "analyzed {} events (batch via {source}; {} threads, {} variables) in {:.2?}",
            trace.len(),
            trace.num_threads(),
            trace.num_variables(),
            start.elapsed()
        );
    }
    println!();
    print!("{}", Engine::render(&runs));
    if options.print_races {
        println!();
        print_race_pairs(&runs);
    }
    Ok(any_races(&runs))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match options.mode.as_str() {
        "convert" => convert(&options),
        "multi" => run_multi(&options),
        "serve" => run_serve(&options),
        "work" => run_work(&options),
        "submit" => run_submit(&options),
        _ => run(&options),
    };
    match result {
        Ok(races) if races && options.fail_on_race => ExitCode::from(RACE_EXIT_CODE),
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
