//! Streaming analysis CLI: run any combination of detectors over a trace
//! file in a single pass, without materializing the trace.
//!
//! ```text
//! engine stream <file> [--format std|csv] [--detectors wcp,hb,fasttrack,mcm]
//!                      [--window N] [--timeout SECS] [--races]
//! engine batch  <file> [same flags]   # parse fully, then analyze (for comparison)
//! ```
//!
//! The format defaults to `csv` for `.csv` files and `std` otherwise.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use rapid_engine::{Detector, DetectorRun, Engine};
use rapid_mcm::{McmConfig, McmStream};
use rapid_trace::format::{self, StreamReader};

struct Options {
    mode: String,
    path: String,
    format: Option<String>,
    detectors: Vec<String>,
    window: usize,
    timeout: u64,
    print_races: bool,
}

const USAGE: &str = "usage: engine <stream|batch> <file> [--format std|csv] \
[--detectors wcp,hb,fasttrack,mcm] [--window N] [--timeout SECS] [--races]";

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mode = args.next().ok_or(USAGE)?;
    if mode == "--help" || mode == "-h" {
        return Err(USAGE.to_owned());
    }
    if mode != "stream" && mode != "batch" {
        return Err(format!("unknown mode `{mode}`\n{USAGE}"));
    }
    let path = args.next().ok_or(USAGE)?;
    let mut options = Options {
        mode,
        path,
        format: None,
        detectors: vec!["wcp".to_owned(), "hb".to_owned()],
        window: McmConfig::default().window_size,
        timeout: McmConfig::default().solver_timeout_secs,
        print_races: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format requires std or csv")?;
                if value != "std" && value != "csv" {
                    return Err(format!("unknown format `{value}`"));
                }
                options.format = Some(value);
            }
            "--detectors" => {
                let value = args.next().ok_or("--detectors requires a comma-separated list")?;
                options.detectors = value.split(',').map(str::to_owned).collect();
            }
            "--window" => {
                let value = args.next().ok_or("--window requires a value")?;
                options.window =
                    value.parse().map_err(|_| format!("invalid window size {value}"))?;
            }
            "--timeout" => {
                let value = args.next().ok_or("--timeout requires a value")?;
                options.timeout = value.parse().map_err(|_| format!("invalid timeout {value}"))?;
            }
            "--races" => options.print_races = true,
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Builds the engine.  `threads` pre-registers a known thread count (batch
/// mode) so the streaming cores reproduce the library batch entry points
/// exactly; stream mode passes `None` and discovers threads from the file.
fn build_engine(options: &Options, threads: Option<usize>) -> Result<Engine, String> {
    let threads = threads.unwrap_or(0);
    let mut engine = Engine::new();
    for name in &options.detectors {
        let detector: Box<dyn Detector> = match name.as_str() {
            "wcp" => Box::new(rapid_wcp::WcpStream::with_threads(threads)),
            "hb" => Box::new(rapid_hb::HbStream::with_threads(threads)),
            "fasttrack" | "ft" => Box::new(rapid_hb::FastTrackStream::with_threads(threads)),
            "mcm" => Box::new(McmStream::new(McmConfig::new(options.window, options.timeout))),
            other => {
                return Err(format!(
                    "unknown detector `{other}` (expected wcp, hb, fasttrack or mcm)"
                ))
            }
        };
        engine.register(detector);
    }
    Ok(engine)
}

fn is_csv(options: &Options) -> bool {
    match options.format.as_deref() {
        Some("csv") => true,
        Some(_) => false,
        None => options.path.ends_with(".csv"),
    }
}

fn print_races(runs: &[DetectorRun], lookup: impl Fn(rapid_trace::Location) -> String) {
    for run in runs {
        let pairs = run.outcome.report.distinct_location_pairs();
        if pairs.is_empty() {
            continue;
        }
        println!("{} race pairs:", run.outcome.detector);
        for (first, second) in pairs {
            println!("  {} <-> {}", lookup(first), lookup(second));
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let file = match File::open(&options.path) {
        Ok(file) => file,
        Err(error) => {
            eprintln!("cannot open {}: {error}", options.path);
            return ExitCode::FAILURE;
        }
    };
    let buffered = BufReader::new(file);

    let start = std::time::Instant::now();
    if options.mode == "stream" {
        // Single pass: file -> StreamReader -> engine; the trace is never
        // materialized, so memory stays bounded by detector state.
        let mut engine = match build_engine(&options, None) {
            Ok(engine) => engine,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        };
        let mut reader = if is_csv(&options) {
            StreamReader::csv(buffered)
        } else {
            StreamReader::std(buffered)
        };
        if let Err(error) = engine.run(&mut reader) {
            eprintln!("cannot parse {}: {error}", options.path);
            return ExitCode::FAILURE;
        }
        let runs = engine.finish();
        println!(
            "streamed {} events ({} distinct threads, {} variables) in {:.2?}",
            engine.events_seen(),
            reader.names().num_threads(),
            reader.names().num_variables(),
            start.elapsed()
        );
        println!();
        print!("{}", Engine::render(&runs));
        if options.print_races {
            println!();
            let names = reader.into_names();
            print_races(&runs, |location| {
                names
                    .location_name(location)
                    .map(str::to_owned)
                    .unwrap_or_else(|| location.to_string())
            });
        }
    } else {
        // Batch comparison path: materialize the trace, then drive the same
        // engine over it.
        let contents = match std::io::read_to_string(buffered) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("cannot read {}: {error}", options.path);
                return ExitCode::FAILURE;
            }
        };
        let parsed = if is_csv(&options) {
            format::parse_csv(&contents)
        } else {
            format::parse_std(&contents)
        };
        let trace = match parsed {
            Ok(trace) => trace,
            Err(error) => {
                eprintln!("cannot parse {}: {error}", options.path);
                return ExitCode::FAILURE;
            }
        };
        let mut engine = match build_engine(&options, Some(trace.num_threads())) {
            Ok(engine) => engine,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        };
        engine.run_trace(&trace);
        let runs = engine.finish();
        println!(
            "analyzed {} events (batch; {} threads, {} variables) in {:.2?}",
            trace.len(),
            trace.num_threads(),
            trace.num_variables(),
            start.elapsed()
        );
        println!();
        print!("{}", Engine::render(&runs));
        if options.print_races {
            println!();
            print_races(&runs, |location| {
                trace
                    .location_name(location)
                    .map(str::to_owned)
                    .unwrap_or_else(|| location.to_string())
            });
        }
    }

    ExitCode::SUCCESS
}
