//! Streaming analysis CLI: run any combination of detectors over one trace
//! file in a single pass, fan a *set* of shard files onto a worker pool —
//! in-process or across machines — or convert between the trace encodings.
//!
//! ```text
//! engine stream  <file> [--format std|csv] [--reader mmap|bufread]
//!                       [--detectors wcp,hb,fasttrack,mcm] [--window N]
//!                       [--timeout SECS] [--races] [--quiet] [--fail-on-race]
//! engine batch   <file> [same flags]      # parse fully, then analyze (for comparison)
//! engine multi   <files-or-dirs...> [--jobs N] [--per-shard] [same flags]
//!                                         # one engine per shard on a worker pool,
//!                                         # outcomes merged by location/variable names
//! engine serve   [files-or-dirs...] --bind <addr> [--once] [--jobs-hint N]
//!                                   [--lease-timeout SECS] [--speculate-after SECS]
//!                                   [same flags]
//!                                         # resident coordinator: a job registry served
//!                                         # by one worker fleet; files become the
//!                                         # closed "default" job; with speculation,
//!                                         # straggling leases are re-granted to idle
//!                                         # workers (first result wins)
//! engine work    <addr> [--jobs N] [--retries N] [--retry-max-wait SECS]
//!                       [--cache-bytes N] [--no-prefetch]
//!                                         # worker: lease, analyze, return outcomes;
//!                                         # reconnects with capped exponential backoff;
//!                                         # caches shard bytes by content id (HAVE skips
//!                                         # re-transfers) and prefetches lease N+1 while
//!                                         # lease N analyzes unless --no-prefetch
//! engine submit  <addr> [--job NAME [files-or-dirs...]] [--timeout SECS]
//!                       [--races] [--fail-on-race]
//!                                         # open a named job / fetch its merged report
//! engine shutdown <addr>                  # ask a resident coordinator to drain and exit
//! engine convert <in> <out>               # re-encode: .rwf out = binary, .csv out = CSV,
//!                                         # anything else = std text
//! ```
//!
//! Binary (`.rwf`) inputs are auto-detected by their magic bytes in every
//! mode, so `multi` and `serve` mix text and binary shards freely; for text
//! the format defaults to `csv` for `.csv` files and `std` otherwise.
//! `multi`, `serve` and `submit` also accept shard *directories*, expanded
//! to the `.rwf`/`.csv`/`.std` files they contain in sorted name order (and
//! erroring on a directory with no trace files — no silent empty runs).
//! Text files are ingested through a memory map by default (`--reader
//! bufread` restores the copying `BufRead` path).  With `--races`, `stream`
//! prints each race the moment a detector flags it, and every analyzing
//! mode prints the final merged race pairs; `--quiet` suppresses the online
//! lines.  With `--fail-on-race` the process exits with code **2** when any
//! detector reports a race (exit 1 stays reserved for errors), so CI
//! pipelines can gate on detection results — `serve` and `submit` apply it
//! to the *merged* reports, so a race on any shard of any job trips it.
//!
//! `serve` runs as a resident service: it answers any number of named jobs
//! (each `engine submit --job NAME files…` opens one with its own detector
//! spec) over one worker fleet, without restarting between jobs.  `--once`
//! restores the v1 semantics — drain and exit after the first answered
//! report.  SIGINT (Ctrl-C) begins the same graceful drain: open jobs are
//! aborted, closed jobs run to completion, then the service exits.  In
//! `submit` mode `--timeout` bounds the wait for the report (exit 1 when it
//! expires); in every other mode it is the MCM solver timeout.
//!
//! The trace encodings are specified in `docs/FORMAT.md`; the
//! coordinator/worker protocol and the outcome wire codec in
//! `docs/PROTOCOL.md`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rapid_engine::dist::{self, ServeConfig};
use rapid_engine::driver::{self, DriverConfig};
use rapid_engine::{Detector, DetectorRun, DetectorSpec, Engine};
use rapid_mcm::McmConfig;
use rapid_trace::format::{self, AnyReader, StreamNames, TextFormat};
use rapid_trace::{NameResolver, Race};

struct Options {
    mode: String,
    /// Positional arguments: one file for stream/batch, input+output for
    /// convert, one or more shard files or directories for multi, zero or
    /// more for serve, a coordinator address for work/submit/shutdown
    /// (submit takes shard files after the address).
    paths: Vec<String>,
    format: Option<String>,
    use_mmap: bool,
    detectors: Vec<String>,
    window: usize,
    timeout: u64,
    jobs: Option<usize>,
    per_shard: bool,
    print_races: bool,
    quiet: bool,
    fail_on_race: bool,
    bind: Option<String>,
    jobs_hint: u32,
    lease_timeout: u64,
    once: bool,
    job: Option<String>,
    submit_timeout: Option<u64>,
    retries: u32,
    retry_max_wait: u64,
    cache_bytes: usize,
    no_prefetch: bool,
    speculate_after: Option<f64>,
    chaos_seed: Option<u64>,
}

const USAGE: &str = "usage: engine <stream|batch> <file> [--format std|csv] \
[--reader mmap|bufread] [--detectors wcp,hb,fasttrack,mcm] [--window N] [--timeout SECS] \
[--races] [--quiet] [--fail-on-race]\n       engine multi <files-or-dirs...> [--jobs N] \
[--per-shard] [same flags]\n       engine serve [files-or-dirs...] --bind ADDR [--once] \
[--jobs-hint N] [--lease-timeout SECS] [--speculate-after SECS] [same flags]\n       \
engine work <addr> [--jobs N] [--retries N] [--retry-max-wait SECS] [--cache-bytes N] \
[--no-prefetch]\n       engine submit <addr> [--job NAME \
[files-or-dirs...]] [--timeout SECS] [--races] [--fail-on-race]\n       \
engine shutdown <addr>\n       engine convert <in> <out> [--format std|csv]\n\
serve|work|submit also take --chaos-seed N (test/bench only: deterministic fault \
injection into the transport, replayable from the seed)";

/// Exit code when `--fail-on-race` is set and a race was detected.
const RACE_EXIT_CODE: u8 = 2;

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mode = args.next().ok_or(USAGE)?;
    if mode == "--help" || mode == "-h" {
        return Err(USAGE.to_owned());
    }
    // `bench-dist` is deliberately absent from the usage text: a
    // perf-smoke harness (in-process cluster, double submit, scheduling
    // metrics as a table), not part of the supported surface.
    if !matches!(
        mode.as_str(),
        "stream"
            | "batch"
            | "multi"
            | "convert"
            | "serve"
            | "work"
            | "submit"
            | "shutdown"
            | "bench-dist"
    ) {
        return Err(format!("unknown mode `{mode}`\n{USAGE}"));
    }
    let mut options = Options {
        mode,
        paths: Vec::new(),
        format: None,
        use_mmap: true,
        detectors: vec!["wcp".to_owned(), "hb".to_owned()],
        window: McmConfig::default().window_size,
        timeout: McmConfig::default().solver_timeout_secs,
        jobs: None,
        per_shard: false,
        print_races: false,
        quiet: false,
        fail_on_race: false,
        bind: None,
        jobs_hint: 0,
        lease_timeout: 60,
        once: false,
        job: None,
        submit_timeout: None,
        retries: 3,
        retry_max_wait: 30,
        cache_bytes: 64 << 20,
        no_prefetch: false,
        speculate_after: None,
        chaos_seed: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format requires std or csv")?;
                if value != "std" && value != "csv" {
                    return Err(format!("unknown format `{value}`"));
                }
                options.format = Some(value);
            }
            "--reader" => {
                let value = args.next().ok_or("--reader requires mmap or bufread")?;
                match value.as_str() {
                    "mmap" => options.use_mmap = true,
                    "bufread" => options.use_mmap = false,
                    other => return Err(format!("unknown reader `{other}`")),
                }
            }
            "--detectors" => {
                let value = args.next().ok_or("--detectors requires a comma-separated list")?;
                options.detectors = value.split(',').map(str::to_owned).collect();
            }
            "--window" => {
                let value = args.next().ok_or("--window requires a value")?;
                options.window =
                    value.parse().map_err(|_| format!("invalid window size {value}"))?;
            }
            "--timeout" => {
                let value = args.next().ok_or("--timeout requires a value")?;
                let secs = value.parse().map_err(|_| format!("invalid timeout {value}"))?;
                // In submit mode the flag bounds the report wait; elsewhere
                // it is the MCM solver timeout.
                if options.mode == "submit" {
                    options.submit_timeout = Some(secs);
                } else {
                    options.timeout = secs;
                }
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs requires a value")?;
                let jobs: usize =
                    value.parse().map_err(|_| format!("invalid job count {value}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                options.jobs = Some(jobs);
            }
            "--bind" => {
                options.bind = Some(args.next().ok_or("--bind requires an address")?);
            }
            "--jobs-hint" => {
                let value = args.next().ok_or("--jobs-hint requires a value")?;
                options.jobs_hint =
                    value.parse().map_err(|_| format!("invalid jobs hint {value}"))?;
            }
            "--lease-timeout" => {
                let value = args.next().ok_or("--lease-timeout requires seconds")?;
                options.lease_timeout =
                    value.parse().map_err(|_| format!("invalid lease timeout {value}"))?;
                if options.lease_timeout == 0 {
                    return Err("--lease-timeout must be at least 1 second".to_owned());
                }
            }
            "--once" => options.once = true,
            "--job" => {
                options.job = Some(args.next().ok_or("--job requires a name")?);
            }
            "--retries" => {
                let value = args.next().ok_or("--retries requires a value")?;
                options.retries =
                    value.parse().map_err(|_| format!("invalid retry count {value}"))?;
            }
            "--retry-max-wait" => {
                let value = args.next().ok_or("--retry-max-wait requires seconds")?;
                options.retry_max_wait =
                    value.parse().map_err(|_| format!("invalid retry wait {value}"))?;
                if options.retry_max_wait == 0 {
                    return Err("--retry-max-wait must be at least 1 second".to_owned());
                }
            }
            "--cache-bytes" => {
                let value =
                    args.next().ok_or("--cache-bytes requires a byte count (0 disables)")?;
                options.cache_bytes =
                    value.parse().map_err(|_| format!("invalid cache size {value}"))?;
            }
            "--no-prefetch" => options.no_prefetch = true,
            "--speculate-after" => {
                let value = args.next().ok_or("--speculate-after requires seconds")?;
                let secs: f64 =
                    value.parse().map_err(|_| format!("invalid speculation delay {value}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--speculate-after must be a positive number of seconds".to_owned());
                }
                options.speculate_after = Some(secs);
            }
            "--chaos-seed" => {
                let value = args.next().ok_or("--chaos-seed requires a value")?;
                options.chaos_seed =
                    Some(value.parse().map_err(|_| format!("invalid chaos seed {value}"))?);
            }
            "--per-shard" => options.per_shard = true,
            "--races" => options.print_races = true,
            "--quiet" => options.quiet = true,
            "--fail-on-race" => options.fail_on_race = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown argument {other}\n{USAGE}"))
            }
            path => options.paths.push(path.to_owned()),
        }
    }
    let expected = match options.mode.as_str() {
        "convert" => "an input and an output path",
        "multi" | "bench-dist" => "at least one trace file or directory",
        "work" | "shutdown" => "a coordinator address",
        "submit" => "a coordinator address (then optional shard files)",
        _ => "a trace file",
    };
    let arity_ok = match options.mode.as_str() {
        "convert" => options.paths.len() == 2,
        "multi" | "bench-dist" => !options.paths.is_empty(),
        "serve" => true, // zero files = a pure resident service
        "work" | "shutdown" => options.paths.len() == 1,
        "submit" => !options.paths.is_empty(),
        _ => options.paths.len() == 1,
    };
    if !arity_ok {
        return Err(format!("{} requires {expected}\n{USAGE}", options.mode));
    }
    if options.mode == "serve" && options.bind.is_none() {
        return Err(format!("serve requires --bind ADDR\n{USAGE}"));
    }
    if options.mode == "submit" && options.paths.len() > 1 && options.job.is_none() {
        return Err(format!("submitting shard files requires --job NAME\n{USAGE}"));
    }
    Ok(options)
}

/// The detector configuration named by the CLI flags.
fn spec(options: &Options) -> DetectorSpec {
    DetectorSpec {
        detectors: options.detectors.clone(),
        window: options.window,
        timeout_secs: options.timeout,
    }
}

/// Validates the detector list once up front (so worker factories can't
/// fail) and builds one fresh detector set.  `threads` pre-registers a known
/// thread count (batch mode) so the streaming cores reproduce the library
/// batch entry points exactly; stream/multi pass 0 and discover threads from
/// the file.
fn build_detectors(options: &Options, threads: usize) -> Result<Vec<Box<dyn Detector>>, String> {
    spec(options).build_with_threads(threads)
}

fn build_engine(options: &Options, threads: usize) -> Result<Engine, String> {
    let mut engine = Engine::new();
    for detector in build_detectors(options, threads)? {
        engine.register(detector);
    }
    Ok(engine)
}

fn text_format(options: &Options, path: &str) -> TextFormat {
    match options.format.as_deref() {
        Some("csv") => TextFormat::Csv,
        Some(_) => TextFormat::Std,
        None => TextFormat::from_path(path),
    }
}

/// The `--format` override as the driver/coordinator expect it.
fn text_override(options: &Options) -> Option<TextFormat> {
    options.format.as_deref().map(|name| match name {
        "csv" => TextFormat::Csv,
        _ => TextFormat::Std,
    })
}

fn open_reader(options: &Options, path: &str) -> Result<AnyReader, String> {
    AnyReader::open(path, text_format(options, path), options.use_mmap)
        .map_err(|error| format!("cannot read {path}: {error}"))
}

/// Expands shard directories into the trace files they contain (sorted),
/// erroring on a directory without any.
fn shard_paths(options: &Options) -> Result<Vec<PathBuf>, String> {
    let inputs: Vec<PathBuf> = options.paths.iter().map(PathBuf::from).collect();
    driver::expand_shard_paths(&inputs).map_err(|error| format!("cannot expand {error}"))
}

/// One line per race, printed the moment a detector flags it.
fn online_race_line(names: &StreamNames, detector: &str, race: &Race) -> String {
    format!(
        "race [{detector}] on {}: {} <-> {} ({} .. {})",
        names.variable_label(race.variable),
        names.location_label(race.first_location),
        names.location_label(race.second_location),
        race.first,
        race.second,
    )
}

/// Prints each detector's merged race pairs — name-keyed, so the output is
/// deterministic and identical across job counts, ingestion paths, and the
/// local/distributed divide.
fn print_race_pairs(runs: &[DetectorRun]) {
    print!("{}", Engine::render_race_pairs(runs));
}

fn any_races(runs: &[DetectorRun]) -> bool {
    runs.iter().any(|run| !run.outcome.races.is_empty())
}

fn convert(options: &Options) -> Result<bool, String> {
    let [input, output] = options.paths.as_slice() else {
        unreachable!("convert arity checked at parse time");
    };
    let reader = open_reader(options, input)?;
    let source = reader.source();
    let trace =
        format::collect_any(reader).map_err(|error| format!("cannot parse {input}: {error}"))?;
    format::write_trace_file(&trace, output)
        .map_err(|error| format!("cannot write {output}: {error}"))?;
    println!("converted {input} ({} events, {source}) -> {output}", trace.len());
    Ok(false)
}

/// Renders the merged half of a multi/serve/submit report: headline, table,
/// optional race pairs.
fn print_merged(options: &Options, headline: String, merged: &[DetectorRun]) {
    println!("{headline}");
    println!();
    print!("{}", Engine::render(merged));
    if options.print_races {
        println!();
        print_race_pairs(merged);
    }
}

/// The `multi` mode: shard files onto the worker-pool driver, then render
/// the merged report (and optionally the per-shard breakdown).
fn run_multi(options: &Options) -> Result<bool, String> {
    // Validate the detector list before spawning anything.
    build_detectors(options, 0)?;
    let paths = shard_paths(options)?;
    let config = DriverConfig {
        jobs: options.jobs.unwrap_or_else(driver::available_jobs),
        text: text_override(options),
        use_mmap: options.use_mmap,
    };
    let factory = || build_detectors(options, 0).expect("detector list validated above");
    let report = driver::run_shards(&paths, factory, &config)
        .map_err(|error| format!("cannot analyze {error}"))?;

    if options.per_shard {
        for shard in &report.shards {
            let races: Vec<String> = shard
                .runs
                .iter()
                .map(|run| format!("{} {}", run.outcome.detector, run.outcome.distinct_pairs()))
                .collect();
            println!(
                "shard {} ({} events via {}) in {:.2?}  [{}]",
                shard.path.display(),
                shard.events,
                shard.source,
                shard.wall,
                races.join(", "),
            );
        }
        println!();
    }
    print_merged(
        options,
        format!(
            "merged {} shard(s), {} events, jobs={} in {:.2?}",
            report.shards.len(),
            report.total_events(),
            report.jobs,
            report.wall,
        ),
        &report.merged,
    );
    Ok(report.has_races())
}

/// Installs a SIGINT handler that begins a graceful coordinator drain: a
/// signal-safe flag flip, observed by a watcher thread that calls into the
/// registry (which a signal handler itself must never do).
#[cfg(unix)]
fn drain_on_sigint(control: dist::ServeControl) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static INTERRUPTED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
    std::thread::spawn(move || loop {
        if INTERRUPTED.load(Ordering::SeqCst) {
            eprintln!("interrupted; draining (closed jobs finish, open jobs abort)…");
            control.drain();
            return;
        }
        std::thread::sleep(Duration::from_millis(200));
    });
}

#[cfg(not(unix))]
fn drain_on_sigint(_control: dist::ServeControl) {}

/// The `serve` mode: a resident coordinator multiplexing named jobs over
/// one worker fleet.  Shard files (if any) become the closed `default`
/// job; `--once` drains after the first answered report; SIGINT drains
/// gracefully.  Prints each job's merged report as `multi` would.
fn run_serve(options: &Options) -> Result<bool, String> {
    let paths = shard_paths(options)?;
    let config = ServeConfig {
        bind: options.bind.clone().expect("checked at parse time"),
        spec: spec(options),
        text: text_override(options),
        jobs_hint: options.jobs_hint,
        lease_timeout: Duration::from_secs(options.lease_timeout),
        once: options.once,
        speculate_after: options.speculate_after.map(Duration::from_secs_f64),
        chaos: chaos(options),
        ..ServeConfig::default()
    };
    let coordinator = dist::Coordinator::bind(&paths, &config)?;
    drain_on_sigint(coordinator.control());
    eprintln!(
        "serving on {} ({} file shard(s) as job `{}`, lease timeout {}s, {}); \
waiting for workers and jobs…",
        coordinator.local_addr(),
        paths.len(),
        dist::DEFAULT_JOB,
        options.lease_timeout,
        if options.once { "one-shot" } else { "resident" },
    );
    let summary = coordinator.run()?;

    if summary.jobs.is_empty() {
        println!("served no jobs");
        return Ok(false);
    }
    let mut races = false;
    let mut failures = Vec::new();
    for job in &summary.jobs {
        match &job.result {
            Ok(report) => {
                if options.per_shard {
                    for shard in &report.shards {
                        println!(
                            "shard {} ({} events via {}) in {:.2?}",
                            shard.path.display(),
                            shard.events,
                            shard.source,
                            shard.wall,
                        );
                    }
                    println!();
                }
                print_merged(
                    options,
                    format!(
                        "job `{}`: served {} shard(s), {} events to {} worker(s) in {:.2?}",
                        job.name,
                        report.shards.len(),
                        report.total_events(),
                        report.jobs,
                        report.wall,
                    ),
                    &report.merged,
                );
                if !report.scheduling.is_empty() {
                    println!("scheduling: {}", report.scheduling);
                }
                println!();
                races = races || report.has_races();
            }
            Err(message) => {
                println!("job `{}` failed: {message}", job.name);
                println!();
                failures.push(job.name.clone());
            }
        }
    }
    if !failures.is_empty() {
        return Err(format!("{} job(s) failed: {}", failures.len(), failures.join(", ")));
    }
    Ok(races)
}

/// The test/bench-only chaos hook: `--chaos-seed N` turns on deterministic
/// fault injection, replayable from the seed; without it the transport
/// stays plain.
fn chaos(options: &Options) -> dist::ChaosConfig {
    match options.chaos_seed {
        Some(seed) => dist::ChaosConfig::seeded(seed),
        None => dist::ChaosConfig::default(),
    }
}

/// The `work` mode: pump the coordinator's registry until it drains,
/// reconnecting through the retry budget when the coordinator drops.
fn run_work(options: &Options) -> Result<bool, String> {
    let addr = options.paths[0].as_str();
    let config = dist::WorkConfig {
        jobs: options.jobs,
        retries: options.retries,
        retry_max_wait: Duration::from_secs(options.retry_max_wait),
        cache_bytes: options.cache_bytes,
        prefetch: !options.no_prefetch,
        chaos: chaos(options),
        ..dist::WorkConfig::default()
    };
    let summary = dist::work(addr, &config)?;
    println!(
        "worker done: {} shard(s), {} events via {addr} (jobs={})",
        summary.stats.shards, summary.stats.events, summary.jobs,
    );
    Ok(false)
}

/// The `submit` mode: with shard files, open the named job, stream every
/// shard to the coordinator, and wait for its merged report; without,
/// fetch the named (or default) job's report.
fn run_submit(options: &Options) -> Result<bool, String> {
    let addr = options.paths[0].as_str();
    let files: Vec<PathBuf> = options.paths[1..].iter().map(PathBuf::from).collect();
    let paths =
        driver::expand_shard_paths(&files).map_err(|error| format!("cannot expand {error}"))?;
    let config = dist::SubmitConfig {
        job: options.job.clone(),
        paths,
        spec: spec(options),
        text: text_override(options),
        timeout: options.submit_timeout.map(Duration::from_secs),
        chaos: chaos(options),
        ..dist::SubmitConfig::default()
    };
    let report = dist::submit(addr, &config)?;
    // The scheduling line goes above the merged report: everything from
    // `race pairs:` down must stay byte-comparable with `engine multi`
    // output (the CI diffs depend on it), and a warm cache must not
    // perturb that tail.
    if !report.scheduling.is_empty() {
        println!("scheduling: {}", report.scheduling);
    }
    print_merged(
        options,
        format!(
            "job `{}`: merged {} shard(s), {} events from {} worker(s) in {:.2?}",
            options.job.as_deref().unwrap_or(dist::DEFAULT_JOB),
            report.shards,
            report.events,
            report.workers,
            report.wall,
        ),
        &report.merged,
    );
    Ok(any_races(&report.merged))
}

/// The hidden `bench-dist` mode: an in-process coordinator + one worker
/// fleet, the shard files submitted twice under one job name (a cold
/// pass, then a warm one that exercises name reuse and the shard cache),
/// and each pass's scheduling metrics printed as a table — so perf runs
/// don't need JSON spelunking.
fn run_bench_dist(options: &Options) -> Result<bool, String> {
    build_detectors(options, 0)?;
    let paths = shard_paths(options)?;
    let serve = ServeConfig {
        spec: spec(options),
        text: text_override(options),
        lease_timeout: Duration::from_secs(options.lease_timeout),
        speculate_after: options.speculate_after.map(Duration::from_secs_f64),
        ..ServeConfig::default()
    };
    let coordinator = dist::Coordinator::bind(&[], &serve)?;
    let addr = coordinator.local_addr().to_string();
    let server = std::thread::spawn(move || coordinator.run());
    let work_config = dist::WorkConfig {
        jobs: options.jobs,
        cache_bytes: options.cache_bytes,
        prefetch: !options.no_prefetch,
        ..dist::WorkConfig::default()
    };
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || dist::work(&addr, &work_config))
    };
    println!(
        "{:<5} {:>7} {:>18} {:>11} {:>14} {:>11}",
        "pass", "shards", "bytes_transferred", "cache_hits", "leases_stolen", "wall"
    );
    let mut races = false;
    for pass in ["cold", "warm"] {
        let submit_config = dist::SubmitConfig {
            job: Some("bench-dist".to_owned()),
            paths: paths.clone(),
            spec: spec(options),
            text: text_override(options),
            ..dist::SubmitConfig::default()
        };
        let report = dist::submit(&addr, &submit_config)?;
        let metric = |name: &str| report.scheduling.get(name).unwrap_or(0.0) as u64;
        println!(
            "{:<5} {:>7} {:>18} {:>11} {:>14} {:>11}",
            pass,
            report.shards,
            metric("bytes_transferred"),
            metric("cache_hits"),
            metric("leases_stolen"),
            format!("{:.2?}", report.wall),
        );
        races = races || any_races(&report.merged);
    }
    dist::shutdown(&addr)?;
    worker.join().map_err(|_| "worker thread panicked".to_owned())??;
    server.join().map_err(|_| "serve thread panicked".to_owned())??;
    Ok(races)
}

/// The `shutdown` mode: ask a resident coordinator to drain and exit.
fn run_shutdown(options: &Options) -> Result<bool, String> {
    let addr = options.paths[0].as_str();
    dist::shutdown(addr)?;
    println!("coordinator at {addr} is draining");
    Ok(false)
}

fn run(options: &Options) -> Result<bool, String> {
    let start = std::time::Instant::now();
    let path = options.paths[0].as_str();
    let runs;
    if options.mode == "stream" {
        // Single pass: file -> reader -> engine; the trace is never
        // materialized, so memory stays bounded by detector state.
        let mut engine = build_engine(options, 0)?;
        let mut reader = open_reader(options, path)?;
        let source = reader.source();
        let online = options.print_races && !options.quiet;
        while let Some(next) = reader.next() {
            let event = next.map_err(|error| format!("cannot parse {path}: {error}"))?;
            if online {
                engine.on_event_with(&event, |detector, race| {
                    println!("{}", online_race_line(reader.names(), detector, race));
                });
            } else {
                engine.on_event(&event);
            }
        }
        runs = engine.finish(reader.names());
        println!(
            "streamed {} events via {source} ({} distinct threads, {} variables) in {:.2?}",
            engine.events_seen(),
            reader.names().num_threads(),
            reader.names().num_variables(),
            start.elapsed()
        );
    } else {
        // Batch comparison path: materialize the trace, then drive the same
        // engine over it.
        let reader = open_reader(options, path)?;
        let source = reader.source();
        let trace =
            format::collect_any(reader).map_err(|error| format!("cannot parse {path}: {error}"))?;
        let mut engine = build_engine(options, trace.num_threads())?;
        engine.run_trace(&trace);
        runs = engine.finish(&trace);
        println!(
            "analyzed {} events (batch via {source}; {} threads, {} variables) in {:.2?}",
            trace.len(),
            trace.num_threads(),
            trace.num_variables(),
            start.elapsed()
        );
    }
    println!();
    print!("{}", Engine::render(&runs));
    if options.print_races {
        println!();
        print_race_pairs(&runs);
    }
    Ok(any_races(&runs))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = match options.mode.as_str() {
        "convert" => convert(&options),
        "multi" => run_multi(&options),
        "serve" => run_serve(&options),
        "work" => run_work(&options),
        "submit" => run_submit(&options),
        "shutdown" => run_shutdown(&options),
        "bench-dist" => run_bench_dist(&options),
        _ => run(&options),
    };
    match result {
        Ok(races) if races && options.fail_on_race => ExitCode::from(RACE_EXIT_CODE),
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
