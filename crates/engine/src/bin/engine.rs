//! Streaming analysis CLI: run any combination of detectors over a trace
//! file in a single pass, without materializing the trace, and convert
//! between the trace encodings.
//!
//! ```text
//! engine stream  <file> [--format std|csv] [--reader mmap|bufread]
//!                       [--detectors wcp,hb,fasttrack,mcm] [--window N]
//!                       [--timeout SECS] [--races] [--quiet]
//! engine batch   <file> [same flags]   # parse fully, then analyze (for comparison)
//! engine convert <in> <out>            # re-encode: .rwf out = binary, .csv out = CSV,
//!                                      # anything else = std text
//! ```
//!
//! Binary (`.rwf`) inputs are auto-detected by their magic bytes in every
//! mode; for text the format defaults to `csv` for `.csv` files and `std`
//! otherwise.  Text files are ingested through a memory map by default
//! (`--reader bufread` restores the copying `BufRead` path).  With
//! `--races`, `stream` prints each race the moment a detector flags it;
//! `--quiet` suppresses the online lines and keeps only the final report.
//! The encodings are specified in `docs/FORMAT.md`.

use std::process::ExitCode;

use rapid_engine::{Detector, DetectorRun, Engine};
use rapid_mcm::{McmConfig, McmStream};
use rapid_trace::format::{self, AnyReader, StreamNames, TextFormat};
use rapid_trace::Race;

struct Options {
    mode: String,
    path: String,
    /// Second positional argument (convert only): the output path.
    out: Option<String>,
    format: Option<String>,
    use_mmap: bool,
    detectors: Vec<String>,
    window: usize,
    timeout: u64,
    print_races: bool,
    quiet: bool,
}

const USAGE: &str = "usage: engine <stream|batch> <file> [--format std|csv] \
[--reader mmap|bufread] [--detectors wcp,hb,fasttrack,mcm] [--window N] [--timeout SECS] \
[--races] [--quiet]\n       engine convert <in> <out> [--format std|csv]";

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mode = args.next().ok_or(USAGE)?;
    if mode == "--help" || mode == "-h" {
        return Err(USAGE.to_owned());
    }
    if mode != "stream" && mode != "batch" && mode != "convert" {
        return Err(format!("unknown mode `{mode}`\n{USAGE}"));
    }
    let path = args.next().ok_or(USAGE)?;
    let mut options = Options {
        out: None,
        mode,
        path,
        format: None,
        use_mmap: true,
        detectors: vec!["wcp".to_owned(), "hb".to_owned()],
        window: McmConfig::default().window_size,
        timeout: McmConfig::default().solver_timeout_secs,
        print_races: false,
        quiet: false,
    };
    if options.mode == "convert" {
        options.out = Some(args.next().ok_or("convert requires an output path")?.to_owned());
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let value = args.next().ok_or("--format requires std or csv")?;
                if value != "std" && value != "csv" {
                    return Err(format!("unknown format `{value}`"));
                }
                options.format = Some(value);
            }
            "--reader" => {
                let value = args.next().ok_or("--reader requires mmap or bufread")?;
                match value.as_str() {
                    "mmap" => options.use_mmap = true,
                    "bufread" => options.use_mmap = false,
                    other => return Err(format!("unknown reader `{other}`")),
                }
            }
            "--detectors" => {
                let value = args.next().ok_or("--detectors requires a comma-separated list")?;
                options.detectors = value.split(',').map(str::to_owned).collect();
            }
            "--window" => {
                let value = args.next().ok_or("--window requires a value")?;
                options.window =
                    value.parse().map_err(|_| format!("invalid window size {value}"))?;
            }
            "--timeout" => {
                let value = args.next().ok_or("--timeout requires a value")?;
                options.timeout = value.parse().map_err(|_| format!("invalid timeout {value}"))?;
            }
            "--races" => options.print_races = true,
            "--quiet" => options.quiet = true,
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Builds the engine.  `threads` pre-registers a known thread count (batch
/// mode) so the streaming cores reproduce the library batch entry points
/// exactly; stream mode passes `None` and discovers threads from the file.
fn build_engine(options: &Options, threads: Option<usize>) -> Result<Engine, String> {
    let threads = threads.unwrap_or(0);
    let mut engine = Engine::new();
    for name in &options.detectors {
        let detector: Box<dyn Detector> = match name.as_str() {
            "wcp" => Box::new(rapid_wcp::WcpStream::with_threads(threads)),
            "hb" => Box::new(rapid_hb::HbStream::with_threads(threads)),
            "fasttrack" | "ft" => Box::new(rapid_hb::FastTrackStream::with_threads(threads)),
            "mcm" => Box::new(McmStream::new(McmConfig::new(options.window, options.timeout))),
            other => {
                return Err(format!(
                    "unknown detector `{other}` (expected wcp, hb, fasttrack or mcm)"
                ))
            }
        };
        engine.register(detector);
    }
    Ok(engine)
}

fn text_format(options: &Options) -> TextFormat {
    match options.format.as_deref() {
        Some("csv") => TextFormat::Csv,
        Some(_) => TextFormat::Std,
        None => TextFormat::from_path(&options.path),
    }
}

fn open_reader(options: &Options) -> Result<AnyReader, String> {
    AnyReader::open(&options.path, text_format(options), options.use_mmap)
        .map_err(|error| format!("cannot read {}: {error}", options.path))
}

fn location(names: &StreamNames, location: rapid_trace::Location) -> String {
    names.location_name(location).map(str::to_owned).unwrap_or_else(|| location.to_string())
}

/// One line per race, printed the moment a detector flags it.
fn online_race_line(names: &StreamNames, detector: &str, race: &Race) -> String {
    let variable = names
        .variable_name(race.variable)
        .map(str::to_owned)
        .unwrap_or_else(|| race.variable.to_string());
    format!(
        "race [{detector}] on {variable}: {} <-> {} ({} .. {})",
        location(names, race.first_location),
        location(names, race.second_location),
        race.first,
        race.second,
    )
}

fn print_race_pairs(runs: &[DetectorRun], lookup: impl Fn(rapid_trace::Location) -> String) {
    for run in runs {
        let pairs = run.outcome.report.distinct_location_pairs();
        if pairs.is_empty() {
            continue;
        }
        println!("{} race pairs:", run.outcome.detector);
        for (first, second) in pairs {
            println!("  {} <-> {}", lookup(first), lookup(second));
        }
    }
}

fn convert(options: &Options) -> Result<(), String> {
    let out = options.out.as_deref().expect("convert parsed an output path");
    let reader = open_reader(options)?;
    let source = reader.source();
    let trace = format::collect_any(reader)
        .map_err(|error| format!("cannot parse {}: {error}", options.path))?;
    format::write_trace_file(&trace, out)
        .map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("converted {} ({} events, {source}) -> {out}", options.path, trace.len());
    Ok(())
}

fn run(options: &Options) -> Result<(), String> {
    let start = std::time::Instant::now();
    if options.mode == "stream" {
        // Single pass: file -> reader -> engine; the trace is never
        // materialized, so memory stays bounded by detector state.
        let mut engine = build_engine(options, None)?;
        let mut reader = open_reader(options)?;
        let source = reader.source();
        let online = options.print_races && !options.quiet;
        while let Some(next) = reader.next() {
            let event = next.map_err(|error| format!("cannot parse {}: {error}", options.path))?;
            if online {
                engine.on_event_with(&event, |detector, race| {
                    println!("{}", online_race_line(reader.names(), detector, race));
                });
            } else {
                engine.on_event(&event);
            }
        }
        let runs = engine.finish();
        println!(
            "streamed {} events via {source} ({} distinct threads, {} variables) in {:.2?}",
            engine.events_seen(),
            reader.names().num_threads(),
            reader.names().num_variables(),
            start.elapsed()
        );
        println!();
        print!("{}", Engine::render(&runs));
        if options.print_races {
            println!();
            let names = reader.into_names();
            print_race_pairs(&runs, |loc| location(&names, loc));
        }
    } else {
        // Batch comparison path: materialize the trace, then drive the same
        // engine over it.
        let reader = open_reader(options)?;
        let source = reader.source();
        let trace = format::collect_any(reader)
            .map_err(|error| format!("cannot parse {}: {error}", options.path))?;
        let mut engine = build_engine(options, Some(trace.num_threads()))?;
        engine.run_trace(&trace);
        let runs = engine.finish();
        println!(
            "analyzed {} events (batch via {source}; {} threads, {} variables) in {:.2?}",
            trace.len(),
            trace.num_threads(),
            trace.num_variables(),
            start.elapsed()
        );
        println!();
        print!("{}", Engine::render(&runs));
        if options.print_races {
            println!();
            print_race_pairs(&runs, |loc| {
                trace.location_name(loc).map(str::to_owned).unwrap_or_else(|| loc.to_string())
            });
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = if options.mode == "convert" { convert(&options) } else { run(&options) };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
