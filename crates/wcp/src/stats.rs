//! Telemetry collected while running the WCP vector-clock algorithm.

use std::fmt;

/// Counters describing one run of [`WcpDetector`](crate::WcpDetector).
///
/// The paper reports the maximum total length of the `Acq`/`Rel` FIFO queues
/// as a fraction of the number of events (Table 1, column 11) to show that
/// the worst-case linear space bound (Theorem 4) is not reached in practice;
/// [`WcpStats::max_queue_fraction`] reproduces that number.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WcpStats {
    /// Number of events processed.
    pub events: usize,
    /// Number of threads seen.
    pub threads: usize,
    /// Number of locks seen.
    pub locks: usize,
    /// Number of race events reported (not deduplicated by location pair).
    pub race_events: usize,
    /// Total number of entries ever enqueued into the acquire/release queues.
    pub queue_enqueues: u64,
    /// Maximum number of entries simultaneously resident across all
    /// `Acq_l(t)` and `Rel_l(t)` queues (Column 11's numerator).
    ///
    /// **Normative definition** (publish-at-release semantics, fixed since
    /// PR 7 so the stat stops drifting across refactors): an open critical
    /// section contributes *nothing*; when a release closes a section over
    /// lock `l`, the section's `(C_acq, H_rel)` pair becomes pending for
    /// every *other* thread known at that moment — `2 × (T_known − 1)`
    /// logical entries, matching the paper's one `Acq_l(t)` plus one
    /// `Rel_l(t)` entry per consumer.  A thread discovered later adds 2
    /// entries per retained section it has yet to consume, at discovery
    /// time.  Entries leave the count when their consumer's Rule (b) cursor
    /// passes them (the paper's dequeue).  PR 1 counted an open acquire's
    /// snapshot as resident before the release; that phantom entry was never
    /// consumable by anyone and is *not* counted.
    pub max_queue_entries: usize,
    /// Number of vector-clock join operations performed (a proxy for the
    /// `O(N·(T² + L))` bound of Theorem 3).  Mode-independent: an epoch
    /// fast-path hit counts the joins the full pipeline would have done.
    pub clock_joins: u64,
    /// Read events answered by the O(1) epoch fast path (no clock work).
    pub epoch_fast_reads: u64,
    /// Write events answered by the O(1) epoch fast path (no clock work).
    pub epoch_fast_writes: u64,
    /// Rule (b) snapshot clocks requested from the [`rapid_vc::ClockPool`].
    pub pool_taken: u64,
    /// Requests served by recycling instead of allocating.
    pub pool_recycled: u64,
}

impl WcpStats {
    /// Column 11 of Table 1: the maximum queue occupancy as a fraction of the
    /// number of events.
    pub fn max_queue_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.max_queue_entries as f64 / self.events as f64
        }
    }

    /// Column 11 as a percentage (the paper prints percentages).
    pub fn max_queue_percentage(&self) -> f64 {
        self.max_queue_fraction() * 100.0
    }

    /// Fraction of accesses answered by the epoch fast paths.
    pub fn epoch_hit_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.epoch_fast_reads + self.epoch_fast_writes) as f64 / self.events as f64
        }
    }

    /// Fraction of pool takes served from recycled clocks (1.0 = the steady
    /// state allocates nothing).
    pub fn pool_hit_rate(&self) -> f64 {
        if self.pool_taken == 0 {
            0.0
        } else {
            self.pool_recycled as f64 / self.pool_taken as f64
        }
    }

    /// Folds another run's counters into this one: totals (`events`,
    /// `race_events`, `queue_enqueues`, `clock_joins`, the epoch fast-path
    /// and pool counters) sum; cardinalities and peaks (`threads`, `locks`,
    /// `max_queue_entries`) keep the maximum, so the merged
    /// `threads`/`locks` are a *lower bound* when runs cover disjoint
    /// shards.  Note the derived ratio
    /// [`max_queue_percentage`](WcpStats::max_queue_percentage) of a merged
    /// struct is `max(entries) / summed(events)` — a whole-workload
    /// occupancy — whereas the engine's metric layer merges the ratio as
    /// worst-shard `Max`; both semantics are deliberate and test-pinned in
    /// `rapid-engine`.
    pub fn merge(&mut self, other: &WcpStats) {
        self.events += other.events;
        self.threads = self.threads.max(other.threads);
        self.locks = self.locks.max(other.locks);
        self.race_events += other.race_events;
        self.queue_enqueues += other.queue_enqueues;
        self.max_queue_entries = self.max_queue_entries.max(other.max_queue_entries);
        self.clock_joins += other.clock_joins;
        self.epoch_fast_reads += other.epoch_fast_reads;
        self.epoch_fast_writes += other.epoch_fast_writes;
        self.pool_taken += other.pool_taken;
        self.pool_recycled += other.pool_recycled;
    }
}

impl fmt::Display for WcpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} threads, {} locks, {} race events, max queue {:.2}% of events, {} joins, {:.1}% epoch hits, {:.1}% pool hits",
            self.events,
            self.threads,
            self.locks,
            self.race_events,
            self.max_queue_percentage(),
            self.clock_joins,
            self.epoch_hit_rate() * 100.0,
            self.pool_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_fraction_handles_empty_run() {
        let stats = WcpStats::default();
        assert_eq!(stats.max_queue_fraction(), 0.0);
        assert_eq!(stats.max_queue_percentage(), 0.0);
        assert_eq!(stats.epoch_hit_rate(), 0.0);
        assert_eq!(stats.pool_hit_rate(), 0.0);
    }

    #[test]
    fn queue_fraction_is_ratio_of_events() {
        let stats = WcpStats { events: 200, max_queue_entries: 10, ..WcpStats::default() };
        assert!((stats.max_queue_fraction() - 0.05).abs() < 1e-9);
        assert!((stats.max_queue_percentage() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_totals_and_keeps_peaks() {
        let mut left = WcpStats {
            events: 100,
            threads: 2,
            locks: 3,
            race_events: 1,
            queue_enqueues: 10,
            max_queue_entries: 4,
            clock_joins: 20,
            epoch_fast_reads: 8,
            epoch_fast_writes: 2,
            pool_taken: 6,
            pool_recycled: 5,
        };
        let right = WcpStats {
            events: 50,
            threads: 5,
            locks: 1,
            race_events: 2,
            queue_enqueues: 5,
            max_queue_entries: 9,
            clock_joins: 7,
            epoch_fast_reads: 1,
            epoch_fast_writes: 3,
            pool_taken: 4,
            pool_recycled: 4,
        };
        left.merge(&right);
        assert_eq!(left.events, 150);
        assert_eq!(left.threads, 5);
        assert_eq!(left.locks, 3);
        assert_eq!(left.race_events, 3);
        assert_eq!(left.queue_enqueues, 15);
        assert_eq!(left.max_queue_entries, 9);
        assert_eq!(left.clock_joins, 27);
        assert_eq!(left.epoch_fast_reads, 9);
        assert_eq!(left.epoch_fast_writes, 5);
        assert_eq!(left.pool_taken, 10);
        assert_eq!(left.pool_recycled, 9);
    }

    #[test]
    fn display_mentions_queue_percentage() {
        let stats = WcpStats { events: 100, max_queue_entries: 3, ..WcpStats::default() };
        assert!(stats.to_string().contains("3.00%"));
    }

    #[test]
    fn hit_rates_are_fractions_of_their_bases() {
        let stats = WcpStats {
            events: 100,
            epoch_fast_reads: 30,
            epoch_fast_writes: 20,
            pool_taken: 10,
            pool_recycled: 9,
            ..WcpStats::default()
        };
        assert!((stats.epoch_hit_rate() - 0.5).abs() < 1e-9);
        assert!((stats.pool_hit_rate() - 0.9).abs() < 1e-9);
    }
}
