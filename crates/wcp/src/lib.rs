//! Weak-Causally-Precedes (WCP) race detection in linear time.
//!
//! This crate is the primary contribution of the reproduced paper, *Dynamic
//! Race Prediction in Linear Time* (PLDI 2017): the WCP partial order and its
//! streaming vector-clock detection algorithm (Algorithm 1).
//!
//! WCP weakens the Causally-Precedes (CP) relation of Smaragdakis et al.:
//!
//! * **Rule (a)** — a `rel(l)` is ordered before a later read/write `e`
//!   *inside a critical section over `l`* when the release's critical
//!   section contains an event conflicting with `e` (CP instead orders the
//!   release before the later *acquire*).
//! * **Rule (b)** — two critical sections over the same lock containing
//!   WCP-ordered events have their *releases* ordered (CP orders release
//!   before acquire).
//! * **Rule (c)** — WCP composes with happens-before on either side.
//!
//! WCP is weakly sound (a WCP-race implies a predictable race or a
//! predictable deadlock, Theorem 1), detects strictly more races than CP and
//! HB, and — unlike CP — admits the linear-time vector-clock algorithm
//! implemented by [`WcpDetector`].
//!
//! # Examples
//!
//! ```
//! use rapid_gen::figures;
//! use rapid_wcp::WcpDetector;
//!
//! // Figure 2b of the paper: a predictable race on y that CP and HB miss.
//! let figure = figures::figure_2b();
//! let outcome = WcpDetector::new().analyze(&figure.trace);
//! assert_eq!(outcome.report.distinct_pairs(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod stats;
pub mod timestamps;

pub use detector::{WcpConfig, WcpDetector, WcpOutcome, WcpStream};
pub use stats::WcpStats;
pub use timestamps::WcpTimestamps;
