//! WCP timestamps (`C_e`) for every event of a trace.

use rapid_trace::EventId;
use rapid_vc::VectorClock;

/// The WCP timestamp of every event, in trace order.
///
/// Theorem 2 states that for events `a <tr b`, `a ≤WCP b ⟺ C_a ⊑ C_b`, so
/// holding on to all timestamps allows exact pairwise ordering queries.  The
/// detector itself does not need this (it uses per-variable summary clocks);
/// timestamps are collected on request for tests, cross-checks against the
/// reference closure, and the offline second pass that recovers the earlier
/// member of each race pair.
#[derive(Debug, Clone)]
pub struct WcpTimestamps {
    clocks: Vec<VectorClock>,
}

impl WcpTimestamps {
    /// Wraps a per-event clock vector (index = event index).
    pub fn new(clocks: Vec<VectorClock>) -> Self {
        WcpTimestamps { clocks }
    }

    /// The WCP time `C_e` of event `e`.
    pub fn clock(&self, event: EventId) -> &VectorClock {
        &self.clocks[event.index()]
    }

    /// For `a` earlier than `b` in trace order: returns true iff `a ≤WCP b`.
    pub fn ordered(&self, a: EventId, b: EventId) -> bool {
        self.clock(a).le(self.clock(b))
    }

    /// For two conflicting events, returns true when they are unordered —
    /// i.e. in WCP-race.
    pub fn unordered(&self, a: EventId, b: EventId) -> bool {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        !self.ordered(a, b)
    }

    /// Number of timestamped events.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns true when no event was timestamped.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_queries_use_pointwise_comparison() {
        let clocks = vec![
            VectorClock::from_components([1, 0]),
            VectorClock::from_components([1, 1]),
            VectorClock::from_components([0, 2]),
        ];
        let timestamps = WcpTimestamps::new(clocks);
        assert_eq!(timestamps.len(), 3);
        assert!(!timestamps.is_empty());
        assert!(timestamps.ordered(EventId::new(0), EventId::new(1)));
        assert!(!timestamps.ordered(EventId::new(0), EventId::new(2)));
        assert!(timestamps.unordered(EventId::new(0), EventId::new(2)));
        assert!(timestamps.unordered(EventId::new(2), EventId::new(0)));
        assert!(!timestamps.unordered(EventId::new(0), EventId::new(1)));
    }
}
