//! The streaming WCP vector-clock detector (Algorithm 1 of the paper).
//!
//! # Hot-path layout
//!
//! The detector keeps *flat, dense* state: thread, lock and variable ids are
//! first-appearance integers, so every clock table is a `Vec` indexed by
//! `id.index()` — no hashing on the per-event path.  Per-event snapshots
//! (the `C_t` copies queued for Rule (b)) are recycled through a
//! [`ClockPool`], so steady-state analysis performs no allocations.
//!
//! # Epoch fast paths
//!
//! In the spirit of FastTrack (see [`rapid_vc::Epoch`]), repeated reads and
//! writes take an O(1) fast path instead of re-running the full
//! join-and-compare pipeline.  A variable caches, per access kind, the
//! *epoch* `version@thread` of the last race-free slow-path access, where
//! `version` is a per-thread counter bumped whenever the thread's WCP time
//! `C_t = P_t[t := N_t]` may have changed (acquire, release, fork, join,
//! local-clock ticks, and Rule (a)/(b) joins).  A new access takes the fast
//! path when **all** of the following hold, which together prove the event
//! is observationally identical to its cached predecessor:
//!
//! * same thread and same `version` — `C_t` is unchanged, so the race
//!   check (`W_x ⊑ C_t`, and `R_x ⊑ C_t` for writes) and the `R_x`/`W_x`
//!   update joins would produce exactly the cached outcome;
//! * the variable's `write_gen` (and `read_gen` for writes) is unchanged —
//!   no other access grew `W_x`/`R_x` since, so the race verdict still
//!   holds.  One exact exception: growth attributable to this thread's own
//!   race-free access *of the other kind at the same version* is harmless —
//!   that access passed `W_x ⊑ C_t` (resp. `R_x ⊑ C_t`) and then joined the
//!   same `C_t`, so the summary clock is still `⊑ C_t`.  This keeps the
//!   ubiquitous read-modify-write pattern (`r(x); w(x)` in a loop) on the
//!   fast path;
//! * the thread holds no locks, **or** the variable's `rel_gen` is
//!   unchanged — the Rule (a) release tables consulted by the slow path are
//!   untouched, so re-joining them is a no-op (same `version` implies the
//!   same held-lock set: versions bump on every acquire/release).
//!
//! A fast-path hit still refreshes the per-thread last-access metadata (so
//! later race *pairs* report the same event ids as the reference) and bumps
//! `clock_joins` by the amount the full pipeline would have counted, keeping
//! [`WcpStats`] bit-identical between the fast and full-clock modes.  Racy
//! accesses never populate the cache: the reference re-reports a race on
//! every unordered repeat, so repeats must take the slow path.  Everything
//! else — acquire/release, Rule (b) queue consumption, fork/join — always
//! runs the full vector-clock logic.  [`WcpConfig::epoch_fast_paths`] turns
//! the fast paths off, which is the reference mode the differential suite
//! compares against.

use std::collections::VecDeque;

use rapid_trace::lockctx::LockContext;
use rapid_trace::{
    Event, EventId, EventKind, Location, LockId, Race, RaceDrain, RaceKind, RaceReport, Trace,
    VarId,
};
use rapid_vc::{ClockPool, Epoch, ThreadId, VectorClock};

use crate::stats::WcpStats;
use crate::timestamps::WcpTimestamps;

/// Everything one run of the detector produces: races, telemetry and
/// (optionally) the per-event timestamps.
#[derive(Debug, Clone)]
pub struct WcpOutcome {
    /// The WCP races found, in detection order.
    pub report: RaceReport,
    /// Telemetry about the run (queue occupancy, join counts, …).
    pub stats: WcpStats,
    /// Per-event WCP timestamps, if requested via
    /// [`WcpDetector::analyze_with_timestamps`].
    pub timestamps: Option<WcpTimestamps>,
}

/// Performance/semantics knobs for [`WcpStream`].
///
/// The defaults are what production runs want; the `false` settings exist
/// for the differential test suite, which proves that neither optimization
/// changes a single verdict, timestamp or counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcpConfig {
    /// Take the FastTrack-style O(1) fast paths for repeated, already
    /// ordered same-thread reads/writes (see the module docs for the exact
    /// conditions).  `false` forces every access through the full
    /// vector-clock pipeline — the *reference mode* used by differential
    /// tests.
    pub epoch_fast_paths: bool,
    /// Recycle `C_t`/`H_t` snapshots through a [`ClockPool`] instead of
    /// allocating fresh clocks.  `false` allocates and drops every snapshot,
    /// which the pool-identity proptest compares against.
    pub pool_clocks: bool,
}

impl Default for WcpConfig {
    fn default() -> Self {
        WcpConfig { epoch_fast_paths: true, pool_clocks: true }
    }
}

impl WcpConfig {
    /// The full-vector-clock reference configuration: no epoch fast paths,
    /// no clock pooling.  Differential tests run this against the default
    /// configuration and demand identical outcomes.
    pub fn reference() -> Self {
        WcpConfig { epoch_fast_paths: false, pool_clocks: false }
    }
}

/// The linear-time WCP race detector (batch entry points).
///
/// [`WcpDetector::analyze`] is a thin wrapper over [`WcpStream`], the
/// push-based single-pass core: it pre-registers the trace's threads, feeds
/// every event through [`WcpStream::on_event`] and collects the outcome
/// (batch = stream + collect).
#[derive(Debug, Default, Clone)]
pub struct WcpDetector {
    _private: (),
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    /// Local time `N_e` of the accessing thread at the access.
    epoch: u64,
    event: EventId,
    location: Location,
}

/// The cached witness of the last race-free slow-path access of one kind
/// (read or write) to a variable; see the module docs for the exact validity
/// conditions.  `epoch` is `version@thread` — [`Epoch::zero`] means "no
/// witness" (thread versions start at 1, so the zero epoch never validates).
#[derive(Debug, Clone, Copy, Default)]
struct AccessCache {
    epoch: Epoch,
    /// `VarState::read_gen` at caching time (only checked for writes).
    read_gen: u64,
    /// `VarState::write_gen` at caching time.
    write_gen: u64,
    /// `VarState::rel_gen` at caching time (only checked under held locks).
    rel_gen: u64,
    /// How many Rule (a) joins the slow path performed (and counted); a
    /// fast-path hit re-counts them so `clock_joins` stays mode-independent.
    rule_a_joins: u32,
}

/// Per-variable state: the `R_x`/`W_x` summary clocks, last-access metadata
/// for race-pair reporting, the Rule (a) release tables, and the epoch
/// fast-path caches with their invalidation generations.
#[derive(Debug, Default)]
struct VarState {
    /// `R_x`: join of the WCP times of all reads of `x` so far.
    read_clock: VectorClock,
    /// `W_x`: join of the WCP times of all writes of `x` so far.
    write_clock: VectorClock,
    /// Last read per thread (dense by thread index).
    reads: Vec<Option<LastAccess>>,
    /// Last write per thread (dense by thread index).
    writes: Vec<Option<LastAccess>>,
    /// Rule (a) release tables, one entry per lock whose critical sections
    /// accessed `x` (linear scan: variables are protected by few locks).
    rel: Vec<RelEntry>,
    /// Bumped whenever `read_clock` may have grown.
    read_gen: u64,
    /// Bumped whenever `write_clock` may have grown.
    write_gen: u64,
    /// Bumped whenever any `rel` entry for this variable may have grown.
    rel_gen: u64,
    read_cache: AccessCache,
    write_cache: AccessCache,
}

/// `L^r_{l,x}` / `L^w_{l,x}` for one `(lock, x)` pair, split by releasing
/// thread: Rule (a) only applies when the release's critical section belongs
/// to a *different* thread than the later access (conflicting events are by
/// different threads), so the per-thread split lets an access skip its own
/// thread's releases.  A bottom clock means "no entry" (release-time `H_t`
/// is never bottom).
#[derive(Debug)]
struct RelEntry {
    lock: LockId,
    read: Vec<VectorClock>,
    write: Vec<VectorClock>,
}

impl RelEntry {
    fn slot(table: &mut Vec<VectorClock>, thread: usize) -> &mut VectorClock {
        if table.len() <= thread {
            table.resize_with(thread + 1, VectorClock::bottom);
        }
        &mut table[thread]
    }
}

/// One closed critical section over a lock, published for Rule (b): the
/// acquire's WCP time `C_acq`, the release's HB time `H_rel`, and the thread
/// that ran the section.
#[derive(Debug, Clone)]
struct SectionEntry {
    thread: ThreadId,
    acq: VectorClock,
    rel_hb: VectorClock,
}

/// The per-lock Rule (b) state: a single shared FIFO of closed critical
/// sections plus one consumption cursor per thread.
///
/// The paper's Algorithm 1 keeps two FIFO queues `Acq_l(t)` / `Rel_l(t)` per
/// (lock, thread) pair, which stores every closed section `T − 1` times.
/// Storing each section once with per-thread cursors is observably
/// equivalent (each thread still sees the others' sections in order and
/// blocks on the first non-dominated acquire time) while using a factor `T`
/// less memory, and it lets threads be *discovered mid-stream*: a thread
/// first seen now simply starts its cursor at the oldest retained entry.
/// Entries are garbage-collected once every known thread has consumed them
/// **and** at least one thread other than the section's owner did so — the
/// consumer's release published a lock clock `P_l ⊒ H_rel ⊒ C_acq`, which
/// makes any later thread's consumption of the entry a provable no-op (see
/// [`WcpStream`] for why this yields batch ≡ stream on well-formed traces).
#[derive(Debug, Default)]
struct LockHistory {
    /// Absolute index of `entries.front()`.
    base: usize,
    entries: VecDeque<SectionEntry>,
    /// Absolute per-thread cursors (dense by thread index); a missing or
    /// stale entry clamps to `base` (nothing retained has been consumed).
    cursors: Vec<usize>,
}

impl LockHistory {
    fn cursor(&self, thread: usize) -> usize {
        self.cursors.get(thread).copied().unwrap_or(0).max(self.base)
    }

    fn set_cursor(&mut self, thread: usize, cursor: usize) {
        if self.cursors.len() <= thread {
            self.cursors.resize(thread + 1, 0);
        }
        self.cursors[thread] = cursor;
    }

    /// Entries not yet consumed by `thread` and not owned by it.
    fn pending_for(&self, thread: ThreadId) -> usize {
        let cursor = self.cursor(thread.index());
        self.entries.iter().skip(cursor - self.base).filter(|entry| entry.thread != thread).count()
    }
}

/// Per-lock state: the `H_l`/`P_l` clocks, the Rule (b) section FIFO, and
/// the per-thread stacks of open-acquire `C_t` snapshots.
#[derive(Debug, Default)]
struct LockState {
    /// The lock appeared in at least one acquire/release.
    seen: bool,
    /// The lock was released at least once (so `hb`/`wcp` below are live;
    /// this mirrors "key present" of a map-based `H_l`/`P_l`).
    released: bool,
    /// `H_l`.
    hb: VectorClock,
    /// `P_l`.
    wcp: VectorClock,
    history: LockHistory,
    /// `C_t` snapshots taken at each open acquire (dense by thread index,
    /// innermost last), consumed when the matching release publishes the
    /// section.
    open: Vec<Vec<VectorClock>>,
}

impl LockState {
    fn open_stack(&mut self, thread: usize) -> &mut Vec<VectorClock> {
        if self.open.len() <= thread {
            self.open.resize_with(thread + 1, Vec::new);
        }
        &mut self.open[thread]
    }
}

struct WcpState {
    config: WcpConfig,
    /// `N_t`.
    local: Vec<u64>,
    /// Which thread ids are *known* (have performed an event, were named by
    /// a fork/join, or were pre-registered by the batch wrapper).  Vectors
    /// below grow densely, but only known threads take part in Rule (b)
    /// fan-out accounting and pin garbage collection.
    active: Vec<bool>,
    /// Number of `true` entries in `active`.
    active_count: usize,
    /// `P_t`.
    wcp: Vec<VectorClock>,
    /// `H_t`.
    hb: Vec<VectorClock>,
    /// Whether the previous event of the thread was a release (the local
    /// clock is incremented just before the thread's next event).
    pending_increment: Vec<bool>,
    /// Epoch fast-path versions: bumped whenever `C_t` may have changed.
    version: Vec<u64>,
    /// Per-lock state, dense by lock index.
    locks: Vec<LockState>,
    /// Number of locks with `seen == true`.
    locks_seen: usize,
    /// Per-variable state, dense by variable index.
    vars: Vec<VarState>,
    /// Online tracking of held locks and per-critical-section access sets.
    lockctx: LockContext,
    /// Recycles the `C_t`/`H_t` snapshots queued for Rule (b).
    pool: ClockPool,
    /// Staging buffer for the current access's `C_t` (never escapes an
    /// event).
    scratch: VectorClock,
    /// Live logical queue occupancy — see [`WcpStats::max_queue_entries`]
    /// for the normative definition.
    queue_entries: usize,
    stats: WcpStats,
    report: RaceReport,
}

/// Joins `clocks[src]` into `clocks[dst]` without cloning (no-op when the
/// indices coincide, which only malformed self-fork/join traces produce).
fn join_at(clocks: &mut [VectorClock], dst: usize, src: usize) {
    if dst == src {
        return;
    }
    let (low, high) = clocks.split_at_mut(dst.max(src));
    if dst < src {
        low[dst].join(&high[0]);
    } else {
        high[0].join(&low[src]);
    }
}

/// Reports a race against every recorded last access in `priors` (skipping
/// the accessing thread itself) whose local time is not known to `time`.
#[allow(clippy::too_many_arguments)]
fn record_prior_races(
    priors: &[Option<LastAccess>],
    skip: usize,
    time: &VectorClock,
    event: &Event,
    var: VarId,
    stats: &mut WcpStats,
    report: &mut RaceReport,
) {
    for (other, slot) in priors.iter().enumerate() {
        if other == skip {
            continue;
        }
        let Some(access) = slot else { continue };
        if access.epoch > time.get(ThreadId::new(other as u32)) {
            stats.race_events += 1;
            report.push(Race {
                first: access.event,
                second: event.id(),
                variable: var,
                first_location: access.location,
                second_location: event.location(),
                kind: RaceKind::Wcp,
            });
        }
    }
}

fn store_access(table: &mut Vec<Option<LastAccess>>, thread: usize, access: LastAccess) {
    if table.len() <= thread {
        table.resize(thread + 1, None);
    }
    table[thread] = Some(access);
}

impl WcpState {
    fn new(threads: usize, config: WcpConfig) -> Self {
        let mut state = WcpState {
            config,
            local: Vec::new(),
            active: Vec::new(),
            active_count: 0,
            wcp: Vec::new(),
            hb: Vec::new(),
            pending_increment: Vec::new(),
            version: Vec::new(),
            locks: Vec::new(),
            locks_seen: 0,
            vars: Vec::new(),
            lockctx: LockContext::new(threads),
            pool: ClockPool::new(),
            scratch: VectorClock::bottom(),
            queue_entries: 0,
            stats: WcpStats::default(),
            report: RaceReport::new(),
        };
        for t in 0..threads {
            state.ensure_thread(ThreadId::new(t as u32));
        }
        state
    }

    /// Registers `thread` if not yet known: allocates its clocks (growing
    /// the dense vectors through its id) and points its Rule (b) cursors at
    /// the oldest retained entry of every lock history.  Ids below `thread`
    /// that have not been seen stay *inactive* — they neither receive
    /// Rule (b) fan-out nor pin garbage collection until they appear.
    fn ensure_thread(&mut self, thread: ThreadId) {
        let index = thread.index();
        for t in self.local.len()..=index {
            let t = ThreadId::new(t as u32);
            self.local.push(1);
            self.wcp.push(VectorClock::bottom());
            self.hb.push(VectorClock::singleton(t, 1));
            self.pending_increment.push(false);
            self.version.push(1);
            self.active.push(false);
        }
        if !self.active[index] {
            self.active[index] = true;
            self.active_count += 1;
            // The newly known thread still has to consume every retained
            // section.
            for lock in &self.locks {
                if !lock.seen {
                    continue;
                }
                let pending = lock.history.pending_for(thread);
                self.queue_entries += 2 * pending;
            }
            if self.queue_entries > self.stats.max_queue_entries {
                self.stats.max_queue_entries = self.queue_entries;
            }
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        let index = lock.index();
        if self.locks.len() <= index {
            self.locks.resize_with(index + 1, LockState::default);
        }
        if !self.locks[index].seen {
            self.locks[index].seen = true;
            self.locks_seen += 1;
        }
    }

    fn ensure_var(&mut self, var: VarId) {
        let index = var.index();
        if self.vars.len() <= index {
            self.vars.resize_with(index + 1, VarState::default);
        }
    }

    /// `C_t = P_t[t := N_t]` as a fresh clock (cold paths and the public
    /// timestamp API; hot paths stage `C_t` in `self.scratch` instead).
    fn current_time(&self, thread: ThreadId) -> VectorClock {
        let mut clock = self.wcp[thread.index()].clone();
        clock.set(thread, self.local[thread.index()]);
        clock
    }

    /// Takes a snapshot clock (pooled unless disabled by config).
    fn alloc_clock(&mut self) -> VectorClock {
        if self.config.pool_clocks {
            self.pool.take()
        } else {
            VectorClock::bottom()
        }
    }

    fn apply_pending_increment(&mut self, thread: ThreadId) {
        let index = thread.index();
        if self.pending_increment[index] {
            self.pending_increment[index] = false;
            self.local[index] += 1;
            let local = self.local[index];
            self.hb[index].set(thread, local);
            self.version[index] += 1;
        }
    }

    fn note_queue_sizes(&mut self) {
        if self.queue_entries > self.stats.max_queue_entries {
            self.stats.max_queue_entries = self.queue_entries;
        }
    }

    fn acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.ensure_lock(lock);
        let index = thread.index();
        let lock_index = lock.index();
        {
            let state = &self.locks[lock_index];
            if state.released {
                // `H_t ⊔= H_l ; P_t ⊔= P_l`.
                self.stats.clock_joins += 2;
                self.hb[index].join(&state.hb);
                self.wcp[index].join(&state.wcp);
            }
        }
        self.version[index] += 1;
        // Snapshot `C_t` for Rule (b); it is published to the other threads
        // when the matching release closes the critical section (no other
        // thread can release `lock` while this section is open, so the
        // deferred publication is unobservable).
        let mut snapshot = self.alloc_clock();
        snapshot.copy_from(&self.wcp[index]);
        snapshot.set(thread, self.local[index]);
        self.locks[lock_index].open_stack(index).push(snapshot);
    }

    fn release(&mut self, thread: ThreadId, lock: LockId, reads: &[VarId], writes: &[VarId]) {
        self.ensure_lock(lock);
        let index = thread.index();
        let local = self.local[index];
        // Rule (b): consume critical sections (of other threads) whose
        // acquire time is already known to `C_t`.  Consumed release times
        // are joined straight into `P_t`, so the `C_t` the next comparison
        // sees (`P_t` with the local component pinned to `N_t` via
        // `le_with_override`) grows incrementally — exactly the
        // re-evaluation the algorithm asks for, in linear time.
        {
            let WcpState { locks, wcp, stats, queue_entries, .. } = self;
            let history = &mut locks[lock.index()].history;
            let mut cursor = history.cursor(index);
            while let Some(entry) = history.entries.get(cursor - history.base) {
                if entry.thread == thread {
                    cursor += 1;
                    continue;
                }
                if entry.acq.le_with_override(&wcp[index], thread, local) {
                    stats.clock_joins += 1;
                    wcp[index].join(&entry.rel_hb);
                    *queue_entries -= 2;
                    cursor += 1;
                } else {
                    break;
                }
            }
            history.set_cursor(index, cursor);
        }
        // Garbage-collect entries every known thread has passed, requiring
        // at least one consumer other than the owner: that consumer's
        // release published `P_l ⊒ H_rel ⊒ C_acq`, so a thread discovered
        // later (which joins `P_l` before it can reach this queue) would
        // consume the entry as a no-op — dropping it cannot change any
        // verdict on well-formed traces.
        {
            let WcpState { locks, active, pool, config, .. } = self;
            let history = &mut locks[lock.index()].history;
            while let Some(front) = history.entries.front() {
                let position = history.base;
                let mut all_consumed = true;
                let mut nonowner_consumed = false;
                for (t, &is_active) in active.iter().enumerate() {
                    if !is_active || t == front.thread.index() {
                        continue;
                    }
                    if history.cursor(t) > position {
                        nonowner_consumed = true;
                    } else {
                        all_consumed = false;
                        break;
                    }
                }
                if !(all_consumed && nonowner_consumed) {
                    break;
                }
                let entry = history.entries.pop_front().expect("checked front");
                history.base += 1;
                if config.pool_clocks {
                    pool.put(entry.acq);
                    pool.put(entry.rel_hb);
                }
            }
        }

        // Record the HB time of this release against every variable its
        // critical section accessed (feeding Rule (a) for later accesses).
        {
            let WcpState { vars, hb, stats, .. } = self;
            let hb_time = &hb[index];
            for (set, write_side) in [(reads, false), (writes, true)] {
                for &var in set {
                    stats.clock_joins += 1;
                    if vars.len() <= var.index() {
                        vars.resize_with(var.index() + 1, VarState::default);
                    }
                    let state = &mut vars[var.index()];
                    state.rel_gen += 1;
                    let entry = match state.rel.iter_mut().position(|entry| entry.lock == lock) {
                        Some(found) => &mut state.rel[found],
                        None => {
                            state.rel.push(RelEntry { lock, read: Vec::new(), write: Vec::new() });
                            state.rel.last_mut().expect("just pushed")
                        }
                    };
                    let table = if write_side { &mut entry.write } else { &mut entry.read };
                    RelEntry::slot(table, index).join(hb_time);
                }
            }
        }

        // `H_l := H_t ; P_l := P_t`.
        {
            let WcpState { locks, hb, wcp, .. } = self;
            let state = &mut locks[lock.index()];
            state.hb.copy_from(&hb[index]);
            state.wcp.copy_from(&wcp[index]);
            state.released = true;
        }

        // Publish this closed critical section to the other threads.
        let acq = self.locks[lock.index()].open_stack(index).pop();
        if let Some(acq) = acq {
            let mut rel_hb = self.alloc_clock();
            rel_hb.copy_from(&self.hb[index]);
            self.locks[lock.index()].history.entries.push_back(SectionEntry {
                thread,
                acq,
                rel_hb,
            });
            let others = self.active_count.saturating_sub(1);
            self.queue_entries += 2 * others;
            self.stats.queue_enqueues += 2 * others as u64;
        }
        self.note_queue_sizes();

        // The local clock ticks just before the thread's next event.
        self.pending_increment[index] = true;
        self.version[index] += 1;
    }

    fn read(&mut self, event: &Event, var: VarId) {
        let thread = event.thread();
        let index = thread.index();
        self.ensure_var(var);
        let depth = self.lockctx.depth(thread);
        let WcpState { config, local, wcp, vars, lockctx, scratch, stats, report, version, .. } =
            self;
        let state = &mut vars[var.index()];
        let local = local[index];

        // Epoch fast path (see the module docs for why this is exact).
        if config.epoch_fast_paths {
            let now = Epoch::new(thread, version[index]);
            let cache = state.read_cache;
            // `W_x` unchanged, or grown only by this thread's race-free
            // write at the same version (then `W_x ⊑ C_t` still holds).
            let writes_clean = cache.write_gen == state.write_gen
                || (state.write_cache.epoch == now
                    && state.write_cache.write_gen == state.write_gen);
            if cache.epoch == now && writes_clean && (depth == 0 || cache.rel_gen == state.rel_gen)
            {
                stats.clock_joins += 1 + u64::from(cache.rule_a_joins);
                stats.epoch_fast_reads += 1;
                store_access(
                    &mut state.reads,
                    index,
                    LastAccess { epoch: local, event: event.id(), location: event.location() },
                );
                return;
            }
        }

        // Rule (a): receive the HB times of earlier releases, *by other
        // threads*, whose critical sections wrote `var`, for every lock
        // currently held (a same-thread critical section cannot contain an
        // event conflicting with this read).
        let mut rule_a_joins = 0u32;
        if depth > 0 {
            for lock in lockctx.held_iter(thread) {
                let Some(entry) = state.rel.iter().find(|entry| entry.lock == lock) else {
                    continue;
                };
                for (other, clock) in entry.write.iter().enumerate() {
                    if other != index && !clock.is_bottom() {
                        stats.clock_joins += 1;
                        rule_a_joins += 1;
                        wcp[index].join(clock);
                    }
                }
            }
            if rule_a_joins > 0 {
                version[index] += 1;
            }
        }
        // `C_t`, staged without allocating.
        scratch.copy_from(&wcp[index]);
        scratch.set(thread, local);

        // Race check: all earlier writes must be WCP-ordered before us.
        let raced = !state.write_clock.le(scratch);
        if raced {
            record_prior_races(&state.writes, index, scratch, event, var, stats, report);
        }

        // Update `R_x` and the access history.
        stats.clock_joins += 1;
        state.read_clock.join(scratch);
        state.read_gen += 1;
        store_access(
            &mut state.reads,
            index,
            LastAccess { epoch: local, event: event.id(), location: event.location() },
        );
        state.read_cache = if raced {
            AccessCache::default()
        } else {
            AccessCache {
                epoch: Epoch::new(thread, version[index]),
                read_gen: state.read_gen,
                write_gen: state.write_gen,
                rel_gen: state.rel_gen,
                rule_a_joins,
            }
        };
    }

    fn write(&mut self, event: &Event, var: VarId) {
        let thread = event.thread();
        let index = thread.index();
        self.ensure_var(var);
        let depth = self.lockctx.depth(thread);
        let WcpState { config, local, wcp, vars, lockctx, scratch, stats, report, version, .. } =
            self;
        let state = &mut vars[var.index()];
        let local = local[index];

        // Epoch fast path (see the module docs for why this is exact).
        if config.epoch_fast_paths {
            let now = Epoch::new(thread, version[index]);
            let cache = state.write_cache;
            // `R_x` unchanged, or grown *exactly once*, by this thread's
            // race-free read at the same version: the cached write verified
            // `R_x ⊑ C_t` and the own read then joined the same `C_t`, so
            // the bound still holds.  (Unlike the read-side fallback, the
            // own read proves nothing by itself — reads do not check `R_x` —
            // so every other growth in between must be ruled out.)
            let reads_clean = cache.read_gen == state.read_gen
                || (state.read_cache.epoch == now
                    && state.read_cache.read_gen == state.read_gen
                    && state.read_gen == cache.read_gen + 1);
            if cache.epoch == now
                && reads_clean
                && cache.write_gen == state.write_gen
                && (depth == 0 || cache.rel_gen == state.rel_gen)
            {
                stats.clock_joins += 1 + u64::from(cache.rule_a_joins);
                stats.epoch_fast_writes += 1;
                store_access(
                    &mut state.writes,
                    index,
                    LastAccess { epoch: local, event: event.id(), location: event.location() },
                );
                return;
            }
        }

        // Rule (a): receive the HB times of earlier releases, *by other
        // threads*, whose critical sections read or wrote `var`, for every
        // lock currently held.
        let mut rule_a_joins = 0u32;
        if depth > 0 {
            for lock in lockctx.held_iter(thread) {
                let Some(entry) = state.rel.iter().find(|entry| entry.lock == lock) else {
                    continue;
                };
                for table in [&entry.read, &entry.write] {
                    for (other, clock) in table.iter().enumerate() {
                        if other != index && !clock.is_bottom() {
                            stats.clock_joins += 1;
                            rule_a_joins += 1;
                            wcp[index].join(clock);
                        }
                    }
                }
            }
            if rule_a_joins > 0 {
                version[index] += 1;
            }
        }
        // `C_t`, staged without allocating.
        scratch.copy_from(&wcp[index]);
        scratch.set(thread, local);

        // Race check: all earlier reads and writes must be ordered before us.
        let writes_unordered = !state.write_clock.le(scratch);
        let reads_unordered = !state.read_clock.le(scratch);
        let raced = writes_unordered || reads_unordered;
        if writes_unordered {
            record_prior_races(&state.writes, index, scratch, event, var, stats, report);
        }
        if reads_unordered {
            record_prior_races(&state.reads, index, scratch, event, var, stats, report);
        }

        // Update `W_x` and the access history.
        stats.clock_joins += 1;
        state.write_clock.join(scratch);
        state.write_gen += 1;
        store_access(
            &mut state.writes,
            index,
            LastAccess { epoch: local, event: event.id(), location: event.location() },
        );
        state.write_cache = if raced {
            AccessCache::default()
        } else {
            AccessCache {
                epoch: Epoch::new(thread, version[index]),
                read_gen: state.read_gen,
                write_gen: state.write_gen,
                rel_gen: state.rel_gen,
                rule_a_joins,
            }
        };
    }

    /// Fork/join events are not part of the paper's trace alphabet (§2.1) but
    /// are present in RVPredict-logged traces (§4).  Following the authors'
    /// RAPID tool, fork/join edges are treated as *hard* orderings included
    /// in WCP itself (a parent's pre-fork accesses can never race with the
    /// child), so the child receives the parent's full `C_t`, not just `P_t`.
    fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        let p = parent.index();
        let c = child.index();
        // `H_p[p] == N_p` by construction, so `H_p` *is* the parent's HB
        // event time — join it directly, no clone.
        self.stats.clock_joins += 1;
        join_at(&mut self.hb, c, p);
        // The child's WCP clock receives `C_p = P_p[p := N_p]`.
        self.stats.clock_joins += 1;
        let pinned = self.wcp[c].get(parent).max(self.local[p]);
        join_at(&mut self.wcp, c, p);
        self.wcp[c].set(parent, pinned);
        // The parent's next event starts a new "epoch" so that the child's
        // knowledge of the parent stays strictly before it.
        self.local[p] += 1;
        let local = self.local[p];
        self.hb[p].set(parent, local);
        self.version[p] += 1;
        self.version[c] += 1;
    }

    /// See [`WcpState::fork`]: join edges are likewise hard orderings.
    fn join(&mut self, parent: ThreadId, child: ThreadId) {
        let p = parent.index();
        let c = child.index();
        self.stats.clock_joins += 1;
        join_at(&mut self.hb, p, c);
        self.stats.clock_joins += 1;
        let pinned = self.wcp[p].get(child).max(self.local[c]);
        join_at(&mut self.wcp, p, c);
        self.wcp[p].set(child, pinned);
        self.version[p] += 1;
    }
}

/// The push-based streaming core of Algorithm 1.
///
/// Feed events in trace order with [`WcpStream::on_event`]; each call
/// returns the races flagged at that event, and [`WcpStream::finish`] yields
/// the accumulated [`WcpOutcome`].  The stream never holds the trace: its
/// live state is the per-thread/per-lock clocks, the per-variable summary
/// clocks, and the Rule (b) section FIFOs, whose occupancy is reported in
/// [`WcpStats`] (worst-case linear per Theorem 4, tiny in practice — Table 1
/// column 11).
///
/// Threads may be *discovered mid-stream* (their first event, or a `fork`
/// targeting them, registers them), and on well-formed traces discovery
/// changes nothing: a Rule (b) entry is only garbage-collected after a
/// thread other than its owner consumed it, and that consumer's release
/// published `P_l ⊒ H_rel ⊒ C_acq` — so a later-discovered thread, which
/// joins `P_l` at its first acquire of the lock before it can ever walk the
/// lock's queue, would have consumed every dropped entry as a no-op (never
/// blocking on it, since `C_acq ⊑ P_l ⊑ C_t`).  Batch and discovery-mode
/// streams therefore report identical races, orderings and timestamps on
/// well-formed traces, fork-announced or not; only queue *telemetry* can
/// differ (fan-out is counted against the threads known at the time).
/// Malformed traces (a release without a matching acquire breaks mutual
/// exclusion, and with it the `P_l` monotonicity the argument rests on) keep
/// the pre-registered guarantee only.  [`WcpDetector`] pre-registers the
/// full thread set, making batch runs report the same races, orderings and
/// timestamps as the original whole-trace algorithm.
pub struct WcpStream {
    state: WcpState,
    drain: RaceDrain,
}

impl Default for WcpStream {
    fn default() -> Self {
        WcpStream::new()
    }
}

impl WcpStream {
    /// Creates a stream that discovers threads on the fly.
    pub fn new() -> Self {
        WcpStream::with_threads(0)
    }

    /// Creates a stream with `threads` threads pre-registered (ids
    /// `0..threads`); used by the batch wrapper so that Rule (b) fan-out
    /// telemetry matches the whole-trace algorithm exactly.
    pub fn with_threads(threads: usize) -> Self {
        WcpStream::with_config(threads, WcpConfig::default())
    }

    /// Creates a stream with an explicit [`WcpConfig`] (the differential
    /// suite uses [`WcpConfig::reference`] here).
    pub fn with_config(threads: usize, config: WcpConfig) -> Self {
        WcpStream { state: WcpState::new(threads, config), drain: RaceDrain::new() }
    }

    /// Processes one event, returning the races flagged at it.
    pub fn on_event(&mut self, event: &Event) -> Vec<Race> {
        let state = &mut self.state;
        let thread = event.thread();
        state.ensure_thread(thread);
        if let Some(target) = event.kind().target_thread() {
            state.ensure_thread(target);
        }
        state.apply_pending_increment(thread);
        state.stats.events += 1;

        match event.kind() {
            EventKind::Acquire(lock) => {
                state.acquire(thread, lock);
                state.lockctx.on_event(event);
            }
            EventKind::Release(lock) => {
                let closed = state.lockctx.on_event(event);
                let (reads, writes) = match closed {
                    Some(section) => (section.reads, section.writes),
                    None => (Vec::new(), Vec::new()),
                };
                state.release(thread, lock, &reads, &writes);
            }
            EventKind::Read(var) => {
                state.read(event, var);
                state.lockctx.on_event(event);
            }
            EventKind::Write(var) => {
                state.write(event, var);
                state.lockctx.on_event(event);
            }
            EventKind::Fork(child) => state.fork(thread, child),
            EventKind::Join(child) => state.join(thread, child),
        }

        self.drain.fresh(&self.state.report)
    }

    /// The WCP time `C_t` of `thread` after the last processed event
    /// (`thread` must have been seen).  Used to collect per-event timestamps.
    pub fn current_time(&self, thread: ThreadId) -> VectorClock {
        self.state.current_time(thread)
    }

    /// Number of events processed so far.
    pub fn events_seen(&self) -> usize {
        self.state.stats.events
    }

    /// Races found so far.
    pub fn report(&self) -> &RaceReport {
        &self.state.report
    }

    /// Live logical occupancy of the Rule (b) queues — the quantity whose
    /// maximum Table 1 column 11 reports.  Bounded-memory tests watch this.
    pub fn live_queue_entries(&self) -> usize {
        self.state.queue_entries
    }

    /// Number of Rule (b) section entries currently retained across all
    /// locks (each entry is stored once, independent of the thread count).
    pub fn retained_sections(&self) -> usize {
        self.state.locks.iter().map(|lock| lock.history.entries.len()).sum()
    }

    /// Ends the stream, returning races and telemetry.  Thread and lock
    /// counts in the stats reflect what the stream has seen.
    pub fn finish(&mut self) -> WcpOutcome {
        self.state.stats.threads = self.state.active_count;
        self.state.stats.locks = self.state.locks_seen;
        self.state.stats.pool_taken = self.state.pool.taken();
        self.state.stats.pool_recycled = self.state.pool.recycled();
        WcpOutcome {
            report: std::mem::take(&mut self.state.report),
            stats: std::mem::take(&mut self.state.stats),
            timestamps: None,
        }
    }
}

impl WcpDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        WcpDetector::default()
    }

    /// Runs Algorithm 1 over `trace`, returning races and telemetry.
    pub fn analyze(&self, trace: &Trace) -> WcpOutcome {
        self.run(trace, false)
    }

    /// Like [`WcpDetector::analyze`] but also collects the WCP timestamp of
    /// every event (linear extra memory; used by tests, the reference-closure
    /// cross-check and the offline race-pair pass).
    pub fn analyze_with_timestamps(&self, trace: &Trace) -> WcpOutcome {
        self.run(trace, true)
    }

    /// Convenience wrapper returning only the race report.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        self.analyze(trace).report
    }

    fn run(&self, trace: &Trace, keep_timestamps: bool) -> WcpOutcome {
        let mut stream = WcpStream::with_threads(trace.num_threads());
        let mut timestamps = keep_timestamps.then(|| Vec::with_capacity(trace.len()));

        for event in trace.events() {
            stream.on_event(event);
            if let Some(timestamps) = timestamps.as_mut() {
                timestamps.push(stream.current_time(event.thread()));
            }
        }

        let mut outcome = stream.finish();
        // The batch run knows the trace's full alphabet; report it even for
        // threads/locks that are interned but never perform an event.
        outcome.stats.threads = trace.num_threads();
        outcome.stats.locks = trace.num_locks();
        outcome.timestamps = timestamps.map(WcpTimestamps::new);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::figures;
    use rapid_gen::lower_bound::{bits_of, lower_bound_trace};
    use rapid_gen::random::RandomTraceConfig;
    use rapid_hb::HbDetector;
    use rapid_trace::TraceBuilder;
    use std::collections::BTreeSet;

    fn racy_variables(report: &RaceReport) -> BTreeSet<VarId> {
        report.races().iter().map(|race| race.variable).collect()
    }

    #[test]
    fn detects_unprotected_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let outcome = WcpDetector::new().analyze(&b.finish());
        assert_eq!(outcome.report.distinct_pairs(), 1);
        assert_eq!(outcome.stats.race_events, 1);
    }

    #[test]
    fn lock_protected_conflicting_accesses_do_not_race() {
        // Figure 1a's pattern: conflicting accesses inside critical sections
        // over the same lock are WCP ordered by Rule (a).
        let figure = figures::figure_1a();
        let outcome = WcpDetector::new().analyze(&figure.trace);
        assert!(outcome.report.is_empty());
    }

    #[test]
    fn focal_pair_verdicts_match_the_paper_on_all_figures() {
        for figure in figures::paper_figures() {
            let outcome = WcpDetector::new().analyze_with_timestamps(&figure.trace);
            let timestamps = outcome.timestamps.expect("timestamps requested");
            assert_eq!(
                timestamps.unordered(figure.first, figure.second),
                figure.wcp_race,
                "{}: WCP verdict on the focal pair should be {}",
                figure.name,
                figure.wcp_race
            );
        }
    }

    #[test]
    fn figure_2b_race_is_reported_with_the_right_locations() {
        let figure = figures::figure_2b();
        let report = WcpDetector::new().detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 1);
        let race = report.races()[0];
        assert_eq!(race.first, figure.first);
        assert_eq!(race.second, figure.second);
        assert_eq!(race.kind, RaceKind::Wcp);
    }

    #[test]
    fn every_hb_race_is_a_wcp_race_on_random_traces() {
        for seed in 0..10 {
            let config = RandomTraceConfig {
                seed,
                events: 400,
                threads: 4,
                locks: 3,
                variables: 6,
                disciplined_probability: 0.5,
                ..RandomTraceConfig::default()
            };
            let trace = config.generate();
            let hb = HbDetector::new().detect(&trace);
            let wcp = WcpDetector::new().detect(&trace);
            let hb_vars = racy_variables(&hb);
            let wcp_vars = racy_variables(&wcp);
            assert!(
                hb_vars.is_subset(&wcp_vars),
                "seed {seed}: HB races {hb_vars:?} must be a subset of WCP races {wcp_vars:?}"
            );
        }
    }

    #[test]
    fn wcp_timestamps_refine_hb_timestamps() {
        // ≤WCP ⊆ ≤HB: whenever WCP orders a pair, HB orders it too.
        for seed in 0..5 {
            let config = RandomTraceConfig { seed, events: 200, ..RandomTraceConfig::default() };
            let trace = config.generate();
            let wcp = WcpDetector::new().analyze_with_timestamps(&trace);
            let wcp_times = wcp.timestamps.unwrap();
            let (_, hb_times) = HbDetector::new().detect_with_timestamps(&trace);
            for (i, a) in trace.events().iter().enumerate() {
                for b in trace.events().iter().skip(i + 1) {
                    if a.thread() == b.thread() {
                        continue;
                    }
                    if wcp_times.ordered(a.id(), b.id()) {
                        assert!(
                            hb_times.ordered(a.id(), b.id()),
                            "seed {seed}: {} ≤WCP {} but not ≤HB",
                            a.id(),
                            b.id()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_family_races_iff_strings_differ() {
        for bits in 1..=3 {
            for u in 0..(1u64 << bits) {
                for v in 0..(1u64 << bits) {
                    let instance = lower_bound_trace(&bits_of(u, bits), &bits_of(v, bits));
                    let outcome = WcpDetector::new().analyze_with_timestamps(&instance.trace);
                    let timestamps = outcome.timestamps.unwrap();
                    let ordered =
                        timestamps.ordered(instance.first_write_z, instance.second_write_z);
                    assert_eq!(
                        ordered,
                        instance.expect_ordered(),
                        "u={u:0width$b} v={v:0width$b}: the w(z) events should be {} (Theorem 4 reduction)",
                        if instance.expect_ordered() { "ordered" } else { "unordered" },
                        width = bits
                    );
                }
            }
        }
    }

    #[test]
    fn queue_telemetry_is_collected() {
        let figure = figures::figure_6();
        let outcome = WcpDetector::new().analyze(&figure.trace);
        assert!(outcome.stats.queue_enqueues > 0);
        assert!(outcome.stats.max_queue_entries > 0);
        assert!(outcome.stats.max_queue_fraction() > 0.0);
        assert_eq!(outcome.stats.events, figure.trace.len());
    }

    #[test]
    fn queue_entries_are_published_at_release() {
        // The normative `max_queue_entries` definition (see `WcpStats`): a
        // critical section contributes nothing while open and 2 entries per
        // other known thread once its release closes it.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        b.write(t2, x); // make t2 known before the section opens
        b.acquire(t1, l);
        b.write(t1, x);
        b.release(t1, l);
        let trace = b.finish();

        let mut stream = WcpStream::with_threads(trace.num_threads());
        stream.on_event(&trace[0]);
        stream.on_event(&trace[1]);
        stream.on_event(&trace[2]);
        assert_eq!(stream.live_queue_entries(), 0, "open sections contribute no queue entries");
        stream.on_event(&trace[3]);
        assert_eq!(
            stream.live_queue_entries(),
            2,
            "a closed section costs 2 entries per other known thread"
        );
        let stats = stream.finish().stats;
        assert_eq!(stats.max_queue_entries, 2);
        assert_eq!(stats.queue_enqueues, 2);
    }

    #[test]
    fn fork_join_edges_are_respected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let x = b.variable("x");
        b.write(main, x);
        b.fork(main, worker);
        b.write(worker, x);
        b.join(main, worker);
        b.write(main, x);
        let report = WcpDetector::new().detect(&b.finish());
        assert!(report.is_empty(), "fork/join order all accesses");
    }

    #[test]
    fn far_apart_races_are_found_without_windowing() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let l = b.lock("l");
        let x = b.variable("x");
        let counter = b.variable("counter");
        b.write(t1, x);
        for i in 0..5_000 {
            let thread = if i % 2 == 0 { t1 } else { t3 };
            b.critical_section(thread, l, |b| {
                b.read(thread, counter);
                b.write(thread, counter);
            });
        }
        b.read(t2, x);
        let report = WcpDetector::new().detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert!(report.max_distance() > 10_000);
    }

    #[test]
    fn streaming_rule_b_queues_stay_bounded_when_sections_drain() {
        // Two threads alternating over one lock: every section is consumed
        // by the other thread's next release, so the retained history stays
        // O(1) no matter how long the stream runs.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        for _ in 0..2_000 {
            b.critical_section(t1, l, |b| {
                b.write(t1, x);
            });
            b.critical_section(t2, l, |b| {
                b.write(t2, x);
            });
        }
        let trace = b.finish();
        let mut stream = WcpStream::with_threads(trace.num_threads());
        let mut max_retained = 0;
        for event in trace.events() {
            stream.on_event(event);
            max_retained = max_retained.max(stream.retained_sections());
        }
        assert!(
            max_retained <= 4,
            "retained Rule (b) sections must not scale with the trace: {max_retained}"
        );
    }

    #[test]
    fn steady_state_reuses_pooled_clocks() {
        // Once the alternating pattern warms up, every Rule (b) snapshot
        // comes out of the pool — the recycle rate approaches 100%.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        for _ in 0..1_000 {
            b.critical_section(t1, l, |b| {
                b.write(t1, x);
            });
            b.critical_section(t2, l, |b| {
                b.write(t2, x);
            });
        }
        let stats = WcpDetector::new().analyze(&b.finish()).stats;
        assert!(stats.pool_taken > 1_000);
        assert!(
            stats.pool_hit_rate() > 0.99,
            "steady-state snapshots must recycle: hit rate {:.4} ({} / {})",
            stats.pool_hit_rate(),
            stats.pool_recycled,
            stats.pool_taken
        );
    }

    #[test]
    fn epoch_fast_paths_fire_on_repeated_accesses() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let x = b.variable("x");
        for _ in 0..100 {
            b.read(t1, x);
            b.write(t1, x);
        }
        let stats = WcpDetector::new().analyze(&b.finish()).stats;
        // First read and first write are slow (cache cold); every repeat in
        // the unchanged-epoch run hits.
        assert_eq!(stats.epoch_fast_reads, 99);
        assert_eq!(stats.epoch_fast_writes, 99);
    }

    #[test]
    fn thread_discovery_matches_preregistration_on_announced_traces() {
        // A stream that learns threads from the events agrees exactly with
        // the pre-registered batch wrapper when threads are *announced*
        // before any lock activity (the fork-before-use pattern of real
        // traces): every Rule (b) cursor then starts at entry zero on both
        // sides.
        for seed in 0..10 {
            let config = RandomTraceConfig {
                seed,
                events: 300,
                threads: 4,
                locks: 2,
                variables: 5,
                disciplined_probability: 0.4,
                ..RandomTraceConfig::default()
            };
            let body = config.generate();
            let mut announced = String::new();
            for t in 1..body.num_threads() {
                announced.push_str(&format!("t0|fork(t{t})\n"));
            }
            announced.push_str(&rapid_trace::format::write_std(&body));
            let trace = rapid_trace::format::parse_std(&announced).expect("valid trace text");

            let batch = WcpDetector::new().detect(&trace);
            let mut stream = WcpStream::new();
            for event in trace.events() {
                stream.on_event(event);
            }
            let streamed = stream.finish().report;
            let key = |report: &RaceReport| -> BTreeSet<(EventId, EventId, VarId)> {
                report.races().iter().map(|race| (race.first, race.second, race.variable)).collect()
            };
            assert_eq!(
                key(&batch),
                key(&streamed),
                "seed {seed}: discovery-mode stream diverged from batch"
            );
        }
    }

    #[test]
    fn thread_discovery_matches_preregistration_on_unannounced_traces() {
        // The stronger guarantee: even *without* a fork prologue — threads
        // pop into existence mid-stream, after lock sections were already
        // published, consumed and possibly garbage-collected — the
        // discovery-mode stream must report exactly the batch races.  The
        // Rule (b) GC policy (retain a section until a non-owner consumed
        // it) is what makes this exact; see the `WcpStream` docs.
        for seed in 0..25 {
            let config = RandomTraceConfig {
                seed,
                events: 400,
                threads: 4,
                locks: 3,
                variables: 5,
                disciplined_probability: 0.5,
                ..RandomTraceConfig::default()
            };
            let trace = config.generate();

            let batch = WcpDetector::new().detect(&trace);
            let mut stream = WcpStream::new();
            for event in trace.events() {
                stream.on_event(event);
            }
            let streamed = stream.finish().report;
            let key = |report: &RaceReport| -> BTreeSet<(EventId, EventId, VarId)> {
                report.races().iter().map(|race| (race.first, race.second, race.variable)).collect()
            };
            assert_eq!(
                key(&batch),
                key(&streamed),
                "seed {seed}: unannounced-thread stream diverged from batch"
            );
        }
    }

    #[test]
    fn unannounced_thread_after_drained_sections_sees_batch_verdicts() {
        // The regression shape for mid-stream discovery: t1/t2 churn through
        // a lock long enough for every section to be consumed and collected,
        // then t3 appears out of nowhere and immediately uses the lock.  In
        // batch mode t3's cursor pins the whole history; in discovery mode
        // the history is long gone — the verdicts must match anyway.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let l = b.lock("l");
        let x = b.variable("x");
        let y = b.variable("y");
        for _ in 0..50 {
            b.critical_section(t1, l, |b| {
                b.write(t1, x);
            });
            b.critical_section(t2, l, |b| {
                b.write(t2, x);
            });
        }
        // t3's first events ever: a racy unprotected access plus a guarded
        // one that Rule (a)/(b) must order exactly as batch does.
        b.write(t3, y);
        b.critical_section(t3, l, |b| {
            b.write(t3, x);
        });
        b.read(t1, y);
        let trace = b.finish();

        let batch = WcpDetector::new().detect(&trace);
        let mut stream = WcpStream::new();
        let mut max_retained = 0;
        for event in trace.events() {
            stream.on_event(event);
            max_retained = max_retained.max(stream.retained_sections());
        }
        let streamed = stream.finish().report;
        assert!(max_retained <= 4, "sections must still drain: {max_retained}");
        let key = |report: &RaceReport| -> BTreeSet<(EventId, EventId, VarId)> {
            report.races().iter().map(|race| (race.first, race.second, race.variable)).collect()
        };
        assert_eq!(key(&batch), key(&streamed));
    }
}
