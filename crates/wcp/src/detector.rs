//! The streaming WCP vector-clock detector (Algorithm 1 of the paper).

use std::collections::{HashMap, VecDeque};

use rapid_trace::lockctx::LockContext;
use rapid_trace::{
    Event, EventId, EventKind, Location, LockId, Race, RaceKind, RaceReport, Trace, VarId,
};
use rapid_vc::{ThreadId, VectorClock};

use crate::stats::WcpStats;
use crate::timestamps::WcpTimestamps;

/// Everything one run of the detector produces: races, telemetry and
/// (optionally) the per-event timestamps.
#[derive(Debug, Clone)]
pub struct WcpOutcome {
    /// The WCP races found, in detection order.
    pub report: RaceReport,
    /// Telemetry about the run (queue occupancy, join counts, …).
    pub stats: WcpStats,
    /// Per-event WCP timestamps, if requested via
    /// [`WcpDetector::analyze_with_timestamps`].
    pub timestamps: Option<WcpTimestamps>,
}

/// The linear-time WCP race detector.
///
/// The detector processes the trace in a single forward pass.  Its state
/// follows Algorithm 1 of the paper:
///
/// * `N_t` — scalar local clock per thread (incremented after a release);
/// * `P_t` — the WCP-predecessor clock per thread (`⊔ { C_e' | e' ≺WCP e }`);
/// * `H_t` — the HB clock per thread;
/// * `C_t` — derived as `P_t[t := N_t]`;
/// * `H_l`, `P_l` — the HB/WCP clocks of the last release of each lock;
/// * `L^r_{l,x}`, `L^w_{l,x}` — joins of the HB times of releases whose
///   critical sections read/wrote `x`;
/// * `Acq_l(t)`, `Rel_l(t)` — FIFO queues of acquire/release times of *other*
///   threads' critical sections over `l`, consumed by Rule (b).
///
/// Races are flagged at the second access of each unordered conflicting pair
/// using per-variable read/write clocks `R_x`, `W_x` (§3.2), and the earlier
/// member of the pair is recovered from per-(variable, thread) last-access
/// records so that distinct *location pairs* can be counted as in Table 1.
#[derive(Debug, Default, Clone)]
pub struct WcpDetector {
    _private: (),
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    /// Local time `N_e` of the accessing thread at the access.
    epoch: u64,
    event: EventId,
    location: Location,
}

#[derive(Debug, Clone, Default)]
struct VarHistory {
    reads: HashMap<ThreadId, LastAccess>,
    writes: HashMap<ThreadId, LastAccess>,
}

struct WcpState {
    /// `N_t`.
    local: Vec<u64>,
    /// `P_t`.
    wcp: Vec<VectorClock>,
    /// `H_t`.
    hb: Vec<VectorClock>,
    /// Whether the previous event of the thread was a release (the local
    /// clock is incremented just before the thread's next event).
    pending_increment: Vec<bool>,
    /// `H_l`.
    hb_lock: HashMap<LockId, VectorClock>,
    /// `P_l`.
    wcp_lock: HashMap<LockId, VectorClock>,
    /// `L^r_{l,x}` split by releasing thread: Rule (a) only applies when the
    /// release's critical section belongs to a *different* thread than the
    /// later access (conflicting events are by different threads), so the
    /// per-thread split lets an access skip its own thread's releases.
    release_read: HashMap<(LockId, VarId, ThreadId), VectorClock>,
    /// `L^w_{l,x}` split by releasing thread (see `release_read`).
    release_write: HashMap<(LockId, VarId, ThreadId), VectorClock>,
    /// `Acq_l(t)`.
    acq_queue: HashMap<(LockId, ThreadId), VecDeque<VectorClock>>,
    /// `Rel_l(t)`.
    rel_queue: HashMap<(LockId, ThreadId), VecDeque<VectorClock>>,
    /// `R_x`: join of the WCP times of all reads of `x` so far.
    read_clock: HashMap<VarId, VectorClock>,
    /// `W_x`: join of the WCP times of all writes of `x` so far.
    write_clock: HashMap<VarId, VectorClock>,
    /// Per-variable last accesses per thread, for race-pair reporting.
    history: HashMap<VarId, VarHistory>,
    /// Online tracking of held locks and per-critical-section access sets.
    lockctx: LockContext,
    /// Live queue occupancy across all queues.
    queue_entries: usize,
    stats: WcpStats,
    report: RaceReport,
}

impl WcpState {
    fn new(trace: &Trace) -> Self {
        let threads = trace.num_threads().max(1);
        let mut hb = Vec::with_capacity(threads);
        for t in 0..threads {
            hb.push(VectorClock::singleton(ThreadId::new(t as u32), 1));
        }
        WcpState {
            local: vec![1; threads],
            wcp: vec![VectorClock::bottom(); threads],
            hb,
            pending_increment: vec![false; threads],
            hb_lock: HashMap::new(),
            wcp_lock: HashMap::new(),
            release_read: HashMap::new(),
            release_write: HashMap::new(),
            acq_queue: HashMap::new(),
            rel_queue: HashMap::new(),
            read_clock: HashMap::new(),
            write_clock: HashMap::new(),
            history: HashMap::new(),
            lockctx: LockContext::new(threads),
            queue_entries: 0,
            stats: WcpStats {
                threads: trace.num_threads(),
                locks: trace.num_locks(),
                ..WcpStats::default()
            },
            report: RaceReport::new(),
        }
    }

    /// `C_t = P_t[t := N_t]`.
    fn current_time(&self, thread: ThreadId) -> VectorClock {
        let mut clock = self.wcp[thread.index()].clone();
        clock.set(thread, self.local[thread.index()]);
        clock
    }

    fn join_into_wcp(&mut self, thread: ThreadId, other: &VectorClock) {
        self.stats.clock_joins += 1;
        self.wcp[thread.index()].join(other);
    }

    fn join_into_hb(&mut self, thread: ThreadId, other: &VectorClock) {
        self.stats.clock_joins += 1;
        self.hb[thread.index()].join(other);
    }

    fn apply_pending_increment(&mut self, thread: ThreadId) {
        let index = thread.index();
        if self.pending_increment[index] {
            self.pending_increment[index] = false;
            self.local[index] += 1;
            let local = self.local[index];
            self.hb[index].set(thread, local);
        }
    }

    fn note_queue_sizes(&mut self) {
        if self.queue_entries > self.stats.max_queue_entries {
            self.stats.max_queue_entries = self.queue_entries;
        }
    }

    fn acquire(&mut self, thread: ThreadId, lock: LockId, threads: usize) {
        if let Some(h_lock) = self.hb_lock.get(&lock).cloned() {
            self.join_into_hb(thread, &h_lock);
        }
        if let Some(p_lock) = self.wcp_lock.get(&lock).cloned() {
            self.join_into_wcp(thread, &p_lock);
        }
        let time = self.current_time(thread);
        for other in 0..threads {
            let other = ThreadId::new(other as u32);
            if other != thread {
                self.acq_queue.entry((lock, other)).or_default().push_back(time.clone());
                self.queue_entries += 1;
                self.stats.queue_enqueues += 1;
            }
        }
        self.note_queue_sizes();
    }

    fn release(
        &mut self,
        thread: ThreadId,
        lock: LockId,
        reads: &[VarId],
        writes: &[VarId],
        threads: usize,
    ) {
        // Rule (b): consume critical sections (of other threads) whose
        // acquire time is already known to `C_t`.  `C_t` is re-evaluated on
        // every iteration because joining a dequeued release time into `P_t`
        // may make the next queued acquire comparable as well.
        loop {
            let time = self.current_time(thread);
            let front_le = match self.acq_queue.get(&(lock, thread)).and_then(VecDeque::front) {
                Some(front) => front.le(&time),
                None => false,
            };
            if !front_le {
                break;
            }
            self.acq_queue.get_mut(&(lock, thread)).expect("front checked").pop_front();
            self.queue_entries -= 1;
            let release_time = self
                .rel_queue
                .get_mut(&(lock, thread))
                .and_then(VecDeque::pop_front)
                .expect("acquire and release queues stay in sync");
            self.queue_entries -= 1;
            self.join_into_wcp(thread, &release_time);
        }

        // Record the HB time of this release against every variable its
        // critical section accessed (feeding Rule (a) for later accesses).
        let hb_time = self.hb[thread.index()].clone();
        for &var in reads {
            self.stats.clock_joins += 1;
            self.release_read.entry((lock, var, thread)).or_default().join(&hb_time);
        }
        for &var in writes {
            self.stats.clock_joins += 1;
            self.release_write.entry((lock, var, thread)).or_default().join(&hb_time);
        }

        // `H_l := H_t ; P_l := P_t`.
        self.hb_lock.insert(lock, hb_time.clone());
        self.wcp_lock.insert(lock, self.wcp[thread.index()].clone());

        // Publish this release's HB time to the other threads' queues.
        for other in 0..threads {
            let other = ThreadId::new(other as u32);
            if other != thread {
                self.rel_queue.entry((lock, other)).or_default().push_back(hb_time.clone());
                self.queue_entries += 1;
                self.stats.queue_enqueues += 1;
            }
        }
        self.note_queue_sizes();

        // The local clock ticks just before the thread's next event.
        self.pending_increment[thread.index()] = true;
    }

    fn read(&mut self, event: &Event, var: VarId, threads: usize) {
        let thread = event.thread();
        // Rule (a): receive the HB times of earlier releases, *by other
        // threads*, whose critical sections wrote `var`, for every lock
        // currently held (a same-thread critical section cannot contain an
        // event conflicting with this read).
        for lock in self.lockctx.held(thread) {
            for other in (0..threads).map(|index| ThreadId::new(index as u32)) {
                if other == thread {
                    continue;
                }
                if let Some(clock) = self.release_write.get(&(lock, var, other)).cloned() {
                    self.join_into_wcp(thread, &clock);
                }
            }
        }
        let time = self.current_time(thread);

        // Race check: all earlier writes must be WCP-ordered before us.
        if let Some(write_clock) = self.write_clock.get(&var) {
            if !write_clock.le(&time) {
                self.record_races(event, var, &time, true, false);
            }
        }

        // Update `R_x` and the access history.
        self.stats.clock_joins += 1;
        self.read_clock.entry(var).or_default().join(&time);
        self.history.entry(var).or_default().reads.insert(
            thread,
            LastAccess {
                epoch: self.local[thread.index()],
                event: event.id(),
                location: event.location(),
            },
        );
    }

    fn write(&mut self, event: &Event, var: VarId, threads: usize) {
        let thread = event.thread();
        // Rule (a): receive the HB times of earlier releases, *by other
        // threads*, whose critical sections read or wrote `var`, for every
        // lock currently held.
        for lock in self.lockctx.held(thread) {
            for other in (0..threads).map(|index| ThreadId::new(index as u32)) {
                if other == thread {
                    continue;
                }
                if let Some(clock) = self.release_read.get(&(lock, var, other)).cloned() {
                    self.join_into_wcp(thread, &clock);
                }
                if let Some(clock) = self.release_write.get(&(lock, var, other)).cloned() {
                    self.join_into_wcp(thread, &clock);
                }
            }
        }
        let time = self.current_time(thread);

        // Race check: all earlier reads and writes must be ordered before us.
        let writes_unordered =
            self.write_clock.get(&var).map(|clock| !clock.le(&time)).unwrap_or(false);
        let reads_unordered =
            self.read_clock.get(&var).map(|clock| !clock.le(&time)).unwrap_or(false);
        if writes_unordered || reads_unordered {
            self.record_races(event, var, &time, writes_unordered, reads_unordered);
        }

        // Update `W_x` and the access history.
        self.stats.clock_joins += 1;
        self.write_clock.entry(var).or_default().join(&time);
        self.history.entry(var).or_default().writes.insert(
            thread,
            LastAccess {
                epoch: self.local[thread.index()],
                event: event.id(),
                location: event.location(),
            },
        );
    }

    /// Recovers the earlier member(s) of the race flagged at `event`: every
    /// recorded last access (of the conflicting kind) whose local time is not
    /// known to `time` is unordered w.r.t. the current event.
    fn record_races(
        &mut self,
        event: &Event,
        var: VarId,
        time: &VectorClock,
        against_writes: bool,
        against_reads: bool,
    ) {
        let thread = event.thread();
        let mut priors = Vec::new();
        if let Some(history) = self.history.get(&var) {
            if against_writes {
                for (&other, access) in &history.writes {
                    if other != thread && access.epoch > time.get(other) {
                        priors.push(*access);
                    }
                }
            }
            if against_reads {
                for (&other, access) in &history.reads {
                    if other != thread && access.epoch > time.get(other) {
                        priors.push(*access);
                    }
                }
            }
        }
        for prior in priors {
            self.stats.race_events += 1;
            self.report.push(Race {
                first: prior.event,
                second: event.id(),
                variable: var,
                first_location: prior.location,
                second_location: event.location(),
                kind: RaceKind::Wcp,
            });
        }
    }

    /// Fork/join events are not part of the paper's trace alphabet (§2.1) but
    /// are present in RVPredict-logged traces (§4).  Following the authors'
    /// RAPID tool, fork/join edges are treated as *hard* orderings included
    /// in WCP itself (a parent's pre-fork accesses can never race with the
    /// child), so the child receives the parent's full `C_t`, not just `P_t`.
    fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        let mut parent_time = self.hb[parent.index()].clone();
        parent_time.set(parent, self.local[parent.index()]);
        let parent_current = self.current_time(parent);
        self.join_into_hb(child, &parent_time);
        self.join_into_wcp(child, &parent_current);
        // The parent's next event starts a new "epoch" so that the child's
        // knowledge of the parent stays strictly before it.
        self.local[parent.index()] += 1;
        let local = self.local[parent.index()];
        self.hb[parent.index()].set(parent, local);
    }

    /// See [`WcpState::fork`]: join edges are likewise hard orderings.
    fn join(&mut self, parent: ThreadId, child: ThreadId) {
        let mut child_time = self.hb[child.index()].clone();
        child_time.set(child, self.local[child.index()]);
        let child_current = self.current_time(child);
        self.join_into_hb(parent, &child_time);
        self.join_into_wcp(parent, &child_current);
    }
}

impl WcpDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        WcpDetector::default()
    }

    /// Runs Algorithm 1 over `trace`, returning races and telemetry.
    pub fn analyze(&self, trace: &Trace) -> WcpOutcome {
        self.run(trace, false)
    }

    /// Like [`WcpDetector::analyze`] but also collects the WCP timestamp of
    /// every event (linear extra memory; used by tests, the reference-closure
    /// cross-check and the offline race-pair pass).
    pub fn analyze_with_timestamps(&self, trace: &Trace) -> WcpOutcome {
        self.run(trace, true)
    }

    /// Convenience wrapper returning only the race report.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        self.analyze(trace).report
    }

    fn run(&self, trace: &Trace, keep_timestamps: bool) -> WcpOutcome {
        let threads = trace.num_threads().max(1);
        let mut state = WcpState::new(trace);
        let mut timestamps = keep_timestamps.then(|| Vec::with_capacity(trace.len()));

        for event in trace.events() {
            let thread = event.thread();
            state.apply_pending_increment(thread);
            state.stats.events += 1;

            match event.kind() {
                EventKind::Acquire(lock) => {
                    state.acquire(thread, lock, threads);
                    state.lockctx.on_event(event);
                }
                EventKind::Release(lock) => {
                    let closed = state.lockctx.on_event(event);
                    let (reads, writes) = match closed {
                        Some(section) => (section.reads, section.writes),
                        None => (Vec::new(), Vec::new()),
                    };
                    state.release(thread, lock, &reads, &writes, threads);
                }
                EventKind::Read(var) => {
                    state.read(event, var, threads);
                    state.lockctx.on_event(event);
                }
                EventKind::Write(var) => {
                    state.write(event, var, threads);
                    state.lockctx.on_event(event);
                }
                EventKind::Fork(child) => state.fork(thread, child),
                EventKind::Join(child) => state.join(thread, child),
            }

            if let Some(timestamps) = timestamps.as_mut() {
                timestamps.push(state.current_time(thread));
            }
        }

        WcpOutcome {
            report: state.report,
            stats: state.stats,
            timestamps: timestamps.map(WcpTimestamps::new),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::figures;
    use rapid_gen::lower_bound::{bits_of, lower_bound_trace};
    use rapid_gen::random::RandomTraceConfig;
    use rapid_hb::HbDetector;
    use rapid_trace::TraceBuilder;
    use std::collections::BTreeSet;

    fn racy_variables(report: &RaceReport) -> BTreeSet<VarId> {
        report.races().iter().map(|race| race.variable).collect()
    }

    #[test]
    fn detects_unprotected_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let outcome = WcpDetector::new().analyze(&b.finish());
        assert_eq!(outcome.report.distinct_pairs(), 1);
        assert_eq!(outcome.stats.race_events, 1);
    }

    #[test]
    fn lock_protected_conflicting_accesses_do_not_race() {
        // Figure 1a's pattern: conflicting accesses inside critical sections
        // over the same lock are WCP ordered by Rule (a).
        let figure = figures::figure_1a();
        let outcome = WcpDetector::new().analyze(&figure.trace);
        assert!(outcome.report.is_empty());
    }

    #[test]
    fn focal_pair_verdicts_match_the_paper_on_all_figures() {
        for figure in figures::paper_figures() {
            let outcome = WcpDetector::new().analyze_with_timestamps(&figure.trace);
            let timestamps = outcome.timestamps.expect("timestamps requested");
            assert_eq!(
                timestamps.unordered(figure.first, figure.second),
                figure.wcp_race,
                "{}: WCP verdict on the focal pair should be {}",
                figure.name,
                figure.wcp_race
            );
        }
    }

    #[test]
    fn figure_2b_race_is_reported_with_the_right_locations() {
        let figure = figures::figure_2b();
        let report = WcpDetector::new().detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 1);
        let race = report.races()[0];
        assert_eq!(race.first, figure.first);
        assert_eq!(race.second, figure.second);
        assert_eq!(race.kind, RaceKind::Wcp);
    }

    #[test]
    fn every_hb_race_is_a_wcp_race_on_random_traces() {
        for seed in 0..10 {
            let config = RandomTraceConfig {
                seed,
                events: 400,
                threads: 4,
                locks: 3,
                variables: 6,
                disciplined_probability: 0.5,
                ..RandomTraceConfig::default()
            };
            let trace = config.generate();
            let hb = HbDetector::new().detect(&trace);
            let wcp = WcpDetector::new().detect(&trace);
            let hb_vars = racy_variables(&hb);
            let wcp_vars = racy_variables(&wcp);
            assert!(
                hb_vars.is_subset(&wcp_vars),
                "seed {seed}: HB races {hb_vars:?} must be a subset of WCP races {wcp_vars:?}"
            );
        }
    }

    #[test]
    fn wcp_timestamps_refine_hb_timestamps() {
        // ≤WCP ⊆ ≤HB: whenever WCP orders a pair, HB orders it too.
        for seed in 0..5 {
            let config = RandomTraceConfig { seed, events: 200, ..RandomTraceConfig::default() };
            let trace = config.generate();
            let wcp = WcpDetector::new().analyze_with_timestamps(&trace);
            let wcp_times = wcp.timestamps.unwrap();
            let (_, hb_times) = HbDetector::new().detect_with_timestamps(&trace);
            for (i, a) in trace.events().iter().enumerate() {
                for b in trace.events().iter().skip(i + 1) {
                    if a.thread() == b.thread() {
                        continue;
                    }
                    if wcp_times.ordered(a.id(), b.id()) {
                        assert!(
                            hb_times.ordered(a.id(), b.id()),
                            "seed {seed}: {} ≤WCP {} but not ≤HB",
                            a.id(),
                            b.id()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_family_races_iff_strings_differ() {
        for bits in 1..=3 {
            for u in 0..(1u64 << bits) {
                for v in 0..(1u64 << bits) {
                    let instance = lower_bound_trace(&bits_of(u, bits), &bits_of(v, bits));
                    let outcome = WcpDetector::new().analyze_with_timestamps(&instance.trace);
                    let timestamps = outcome.timestamps.unwrap();
                    let ordered =
                        timestamps.ordered(instance.first_write_z, instance.second_write_z);
                    assert_eq!(
                        ordered,
                        instance.expect_ordered(),
                        "u={u:0width$b} v={v:0width$b}: the w(z) events should be {} (Theorem 4 reduction)",
                        if instance.expect_ordered() { "ordered" } else { "unordered" },
                        width = bits
                    );
                }
            }
        }
    }

    #[test]
    fn queue_telemetry_is_collected() {
        let figure = figures::figure_6();
        let outcome = WcpDetector::new().analyze(&figure.trace);
        assert!(outcome.stats.queue_enqueues > 0);
        assert!(outcome.stats.max_queue_entries > 0);
        assert!(outcome.stats.max_queue_fraction() > 0.0);
        assert_eq!(outcome.stats.events, figure.trace.len());
    }

    #[test]
    fn fork_join_edges_are_respected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let x = b.variable("x");
        b.write(main, x);
        b.fork(main, worker);
        b.write(worker, x);
        b.join(main, worker);
        b.write(main, x);
        let report = WcpDetector::new().detect(&b.finish());
        assert!(report.is_empty(), "fork/join order all accesses");
    }

    #[test]
    fn far_apart_races_are_found_without_windowing() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let l = b.lock("l");
        let x = b.variable("x");
        let counter = b.variable("counter");
        b.write(t1, x);
        for i in 0..5_000 {
            let thread = if i % 2 == 0 { t1 } else { t3 };
            b.critical_section(thread, l, |b| {
                b.read(thread, counter);
                b.write(thread, counter);
            });
        }
        b.read(t2, x);
        let report = WcpDetector::new().detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert!(report.max_distance() > 10_000);
    }
}
