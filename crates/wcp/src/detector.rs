//! The streaming WCP vector-clock detector (Algorithm 1 of the paper).

use std::collections::{HashMap, HashSet, VecDeque};

use rapid_trace::lockctx::LockContext;
use rapid_trace::{
    Event, EventId, EventKind, Location, LockId, Race, RaceDrain, RaceKind, RaceReport, Trace,
    VarId,
};
use rapid_vc::{ThreadId, VectorClock};

use crate::stats::WcpStats;
use crate::timestamps::WcpTimestamps;

/// Everything one run of the detector produces: races, telemetry and
/// (optionally) the per-event timestamps.
#[derive(Debug, Clone)]
pub struct WcpOutcome {
    /// The WCP races found, in detection order.
    pub report: RaceReport,
    /// Telemetry about the run (queue occupancy, join counts, …).
    pub stats: WcpStats,
    /// Per-event WCP timestamps, if requested via
    /// [`WcpDetector::analyze_with_timestamps`].
    pub timestamps: Option<WcpTimestamps>,
}

/// The linear-time WCP race detector (batch entry points).
///
/// [`WcpDetector::analyze`] is a thin wrapper over [`WcpStream`], the
/// push-based single-pass core: it pre-registers the trace's threads, feeds
/// every event through [`WcpStream::on_event`] and collects the outcome
/// (batch = stream + collect).
#[derive(Debug, Default, Clone)]
pub struct WcpDetector {
    _private: (),
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    /// Local time `N_e` of the accessing thread at the access.
    epoch: u64,
    event: EventId,
    location: Location,
}

#[derive(Debug, Clone, Default)]
struct VarHistory {
    reads: HashMap<ThreadId, LastAccess>,
    writes: HashMap<ThreadId, LastAccess>,
}

/// One closed critical section over a lock, published for Rule (b): the
/// acquire's WCP time `C_acq`, the release's HB time `H_rel`, and the thread
/// that ran the section.
#[derive(Debug, Clone)]
struct SectionEntry {
    thread: ThreadId,
    acq: VectorClock,
    rel_hb: VectorClock,
}

/// The per-lock Rule (b) state: a single shared FIFO of closed critical
/// sections plus one consumption cursor per thread.
///
/// The paper's Algorithm 1 keeps two FIFO queues `Acq_l(t)` / `Rel_l(t)` per
/// (lock, thread) pair, which stores every closed section `T − 1` times.
/// Storing each section once with per-thread cursors is observably
/// equivalent (each thread still sees the others' sections in order and
/// blocks on the first non-dominated acquire time) while using a factor `T`
/// less memory, and it lets threads be *discovered mid-stream*: a thread
/// first seen now simply starts its cursor at the oldest retained entry.
/// Entries are garbage-collected once every known thread has consumed them.
#[derive(Debug, Default)]
struct LockHistory {
    /// Absolute index of `entries.front()`.
    base: usize,
    entries: VecDeque<SectionEntry>,
    /// Absolute per-thread cursors; a missing entry means `base` (nothing
    /// consumed yet, which also pins garbage collection).
    cursors: HashMap<ThreadId, usize>,
}

impl LockHistory {
    fn cursor(&self, thread: ThreadId) -> usize {
        self.cursors.get(&thread).copied().unwrap_or(self.base).max(self.base)
    }

    /// Entries not yet consumed by `thread` and not owned by it.
    fn pending_for(&self, thread: ThreadId) -> usize {
        let cursor = self.cursor(thread);
        self.entries.iter().skip(cursor - self.base).filter(|entry| entry.thread != thread).count()
    }
}

struct WcpState {
    /// `N_t`.
    local: Vec<u64>,
    /// Which thread ids are *known* (have performed an event, were named by
    /// a fork/join, or were pre-registered by the batch wrapper).  Vectors
    /// below grow densely, but only known threads take part in Rule (b)
    /// fan-out accounting and pin garbage collection.
    active: Vec<bool>,
    /// Number of `true` entries in `active`.
    active_count: usize,
    /// `P_t`.
    wcp: Vec<VectorClock>,
    /// `H_t`.
    hb: Vec<VectorClock>,
    /// Whether the previous event of the thread was a release (the local
    /// clock is incremented just before the thread's next event).
    pending_increment: Vec<bool>,
    /// `H_l`.
    hb_lock: HashMap<LockId, VectorClock>,
    /// `P_l`.
    wcp_lock: HashMap<LockId, VectorClock>,
    /// `L^r_{l,x}` split by releasing thread: Rule (a) only applies when the
    /// release's critical section belongs to a *different* thread than the
    /// later access (conflicting events are by different threads), so the
    /// per-thread split lets an access skip its own thread's releases.
    release_read: HashMap<(LockId, VarId, ThreadId), VectorClock>,
    /// `L^w_{l,x}` split by releasing thread (see `release_read`).
    release_write: HashMap<(LockId, VarId, ThreadId), VectorClock>,
    /// The Rule (b) queues: per-lock shared FIFO + per-thread cursors.
    histories: HashMap<LockId, LockHistory>,
    /// `C_t` snapshots taken at each open acquire, per (thread, lock),
    /// consumed when the matching release publishes the section.
    open_acquires: HashMap<(ThreadId, LockId), Vec<VectorClock>>,
    /// `R_x`: join of the WCP times of all reads of `x` so far.
    read_clock: HashMap<VarId, VectorClock>,
    /// `W_x`: join of the WCP times of all writes of `x` so far.
    write_clock: HashMap<VarId, VectorClock>,
    /// Per-variable last accesses per thread, for race-pair reporting.
    history: HashMap<VarId, VarHistory>,
    /// Online tracking of held locks and per-critical-section access sets.
    lockctx: LockContext,
    /// Locks that appeared in at least one acquire/release.
    locks_seen: HashSet<LockId>,
    /// Live logical queue occupancy: 2 (acquire + release time) per
    /// (closed section, other thread yet to consume it) pair — the same
    /// quantity the per-(lock, thread) queues of Algorithm 1 would hold.
    queue_entries: usize,
    stats: WcpStats,
    report: RaceReport,
}

impl WcpState {
    fn new(threads: usize) -> Self {
        let mut state = WcpState {
            local: Vec::new(),
            active: Vec::new(),
            active_count: 0,
            wcp: Vec::new(),
            hb: Vec::new(),
            pending_increment: Vec::new(),
            hb_lock: HashMap::new(),
            wcp_lock: HashMap::new(),
            release_read: HashMap::new(),
            release_write: HashMap::new(),
            histories: HashMap::new(),
            open_acquires: HashMap::new(),
            read_clock: HashMap::new(),
            write_clock: HashMap::new(),
            history: HashMap::new(),
            lockctx: LockContext::new(threads),
            locks_seen: HashSet::new(),
            queue_entries: 0,
            stats: WcpStats::default(),
            report: RaceReport::new(),
        };
        for t in 0..threads {
            state.ensure_thread(ThreadId::new(t as u32));
        }
        state
    }

    fn known_threads(&self) -> usize {
        self.local.len()
    }

    /// Registers `thread` if not yet known: allocates its clocks (growing
    /// the dense vectors through its id) and points its Rule (b) cursors at
    /// the oldest retained entry of every lock history.  Ids below `thread`
    /// that have not been seen stay *inactive* — they neither receive
    /// Rule (b) fan-out nor pin garbage collection until they appear.
    fn ensure_thread(&mut self, thread: ThreadId) {
        let index = thread.index();
        for t in self.local.len()..=index {
            let t = ThreadId::new(t as u32);
            self.local.push(1);
            self.wcp.push(VectorClock::bottom());
            self.hb.push(VectorClock::singleton(t, 1));
            self.pending_increment.push(false);
            self.active.push(false);
        }
        if !self.active[index] {
            self.active[index] = true;
            self.active_count += 1;
            // The newly known thread still has to consume every retained
            // section.
            for history in self.histories.values() {
                let pending = history.pending_for(thread);
                self.queue_entries += 2 * pending;
            }
            if self.queue_entries > self.stats.max_queue_entries {
                self.stats.max_queue_entries = self.queue_entries;
            }
        }
    }

    /// `C_t = P_t[t := N_t]`.
    fn current_time(&self, thread: ThreadId) -> VectorClock {
        let mut clock = self.wcp[thread.index()].clone();
        clock.set(thread, self.local[thread.index()]);
        clock
    }

    fn join_into_wcp(&mut self, thread: ThreadId, other: &VectorClock) {
        self.stats.clock_joins += 1;
        self.wcp[thread.index()].join(other);
    }

    fn join_into_hb(&mut self, thread: ThreadId, other: &VectorClock) {
        self.stats.clock_joins += 1;
        self.hb[thread.index()].join(other);
    }

    fn apply_pending_increment(&mut self, thread: ThreadId) {
        let index = thread.index();
        if self.pending_increment[index] {
            self.pending_increment[index] = false;
            self.local[index] += 1;
            let local = self.local[index];
            self.hb[index].set(thread, local);
        }
    }

    fn note_queue_sizes(&mut self) {
        if self.queue_entries > self.stats.max_queue_entries {
            self.stats.max_queue_entries = self.queue_entries;
        }
    }

    fn acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.locks_seen.insert(lock);
        if let Some(h_lock) = self.hb_lock.get(&lock).cloned() {
            self.join_into_hb(thread, &h_lock);
        }
        if let Some(p_lock) = self.wcp_lock.get(&lock).cloned() {
            self.join_into_wcp(thread, &p_lock);
        }
        // Snapshot `C_t` for Rule (b); it is published to the other threads
        // when the matching release closes the critical section (no other
        // thread can release `lock` while this section is open, so the
        // deferred publication is unobservable).
        let time = self.current_time(thread);
        self.open_acquires.entry((thread, lock)).or_default().push(time);
    }

    fn release(&mut self, thread: ThreadId, lock: LockId, reads: &[VarId], writes: &[VarId]) {
        self.locks_seen.insert(lock);
        // Rule (b): consume critical sections (of other threads) whose
        // acquire time is already known to `C_t`.  `C_t` is re-evaluated on
        // every iteration because joining a consumed release time into `P_t`
        // may make the next queued acquire comparable as well.
        let mut consumed = Vec::new();
        if let Some(history) = self.histories.get_mut(&lock) {
            let mut cursor = history.cursor(thread);
            // `C_t` grows incrementally: each consumed release time is
            // joined into the working copy (with the local component
            // re-pinned to `N_t`), which is exactly the re-evaluation the
            // algorithm asks for, in linear time.
            let mut time = {
                let mut clock = self.wcp[thread.index()].clone();
                clock.set(thread, self.local[thread.index()]);
                clock
            };
            while let Some(entry) = history.entries.get(cursor - history.base) {
                if entry.thread == thread {
                    cursor += 1;
                    continue;
                }
                if entry.acq.le(&time) {
                    time.join(&entry.rel_hb);
                    time.set(thread, self.local[thread.index()]);
                    consumed.push(entry.rel_hb.clone());
                    self.queue_entries -= 2;
                    cursor += 1;
                } else {
                    break;
                }
            }
            history.cursors.insert(thread, cursor);
            // Garbage-collect entries every known thread has passed.
            let active = &self.active;
            while let Some(front) = history.entries.front() {
                let position = history.base;
                let all_consumed = (0..active.len())
                    .filter(|&t| active[t])
                    .map(|t| ThreadId::new(t as u32))
                    .all(|t| t == front.thread || history.cursor(t) > position);
                if !all_consumed {
                    break;
                }
                history.entries.pop_front();
                history.base += 1;
            }
        }
        for release_time in &consumed {
            self.join_into_wcp(thread, release_time);
        }

        // Record the HB time of this release against every variable its
        // critical section accessed (feeding Rule (a) for later accesses).
        let hb_time = self.hb[thread.index()].clone();
        for &var in reads {
            self.stats.clock_joins += 1;
            self.release_read.entry((lock, var, thread)).or_default().join(&hb_time);
        }
        for &var in writes {
            self.stats.clock_joins += 1;
            self.release_write.entry((lock, var, thread)).or_default().join(&hb_time);
        }

        // `H_l := H_t ; P_l := P_t`.
        self.hb_lock.insert(lock, hb_time.clone());
        self.wcp_lock.insert(lock, self.wcp[thread.index()].clone());

        // Publish this closed critical section to the other threads.
        if let Some(acq) = self.open_acquires.get_mut(&(thread, lock)).and_then(Vec::pop) {
            let history = self.histories.entry(lock).or_default();
            history.entries.push_back(SectionEntry { thread, acq, rel_hb: hb_time });
            let others = self.active_count.saturating_sub(1);
            self.queue_entries += 2 * others;
            self.stats.queue_enqueues += 2 * others as u64;
        }
        self.note_queue_sizes();

        // The local clock ticks just before the thread's next event.
        self.pending_increment[thread.index()] = true;
    }

    fn read(&mut self, event: &Event, var: VarId) {
        let thread = event.thread();
        let threads = self.known_threads();
        // Rule (a): receive the HB times of earlier releases, *by other
        // threads*, whose critical sections wrote `var`, for every lock
        // currently held (a same-thread critical section cannot contain an
        // event conflicting with this read).
        for lock in self.lockctx.held(thread) {
            for other in (0..threads).map(|index| ThreadId::new(index as u32)) {
                if other == thread {
                    continue;
                }
                if let Some(clock) = self.release_write.get(&(lock, var, other)).cloned() {
                    self.join_into_wcp(thread, &clock);
                }
            }
        }
        let time = self.current_time(thread);

        // Race check: all earlier writes must be WCP-ordered before us.
        if let Some(write_clock) = self.write_clock.get(&var) {
            if !write_clock.le(&time) {
                self.record_races(event, var, &time, true, false);
            }
        }

        // Update `R_x` and the access history.
        self.stats.clock_joins += 1;
        self.read_clock.entry(var).or_default().join(&time);
        self.history.entry(var).or_default().reads.insert(
            thread,
            LastAccess {
                epoch: self.local[thread.index()],
                event: event.id(),
                location: event.location(),
            },
        );
    }

    fn write(&mut self, event: &Event, var: VarId) {
        let thread = event.thread();
        let threads = self.known_threads();
        // Rule (a): receive the HB times of earlier releases, *by other
        // threads*, whose critical sections read or wrote `var`, for every
        // lock currently held.
        for lock in self.lockctx.held(thread) {
            for other in (0..threads).map(|index| ThreadId::new(index as u32)) {
                if other == thread {
                    continue;
                }
                if let Some(clock) = self.release_read.get(&(lock, var, other)).cloned() {
                    self.join_into_wcp(thread, &clock);
                }
                if let Some(clock) = self.release_write.get(&(lock, var, other)).cloned() {
                    self.join_into_wcp(thread, &clock);
                }
            }
        }
        let time = self.current_time(thread);

        // Race check: all earlier reads and writes must be ordered before us.
        let writes_unordered =
            self.write_clock.get(&var).map(|clock| !clock.le(&time)).unwrap_or(false);
        let reads_unordered =
            self.read_clock.get(&var).map(|clock| !clock.le(&time)).unwrap_or(false);
        if writes_unordered || reads_unordered {
            self.record_races(event, var, &time, writes_unordered, reads_unordered);
        }

        // Update `W_x` and the access history.
        self.stats.clock_joins += 1;
        self.write_clock.entry(var).or_default().join(&time);
        self.history.entry(var).or_default().writes.insert(
            thread,
            LastAccess {
                epoch: self.local[thread.index()],
                event: event.id(),
                location: event.location(),
            },
        );
    }

    /// Recovers the earlier member(s) of the race flagged at `event`: every
    /// recorded last access (of the conflicting kind) whose local time is not
    /// known to `time` is unordered w.r.t. the current event.
    fn record_races(
        &mut self,
        event: &Event,
        var: VarId,
        time: &VectorClock,
        against_writes: bool,
        against_reads: bool,
    ) {
        let thread = event.thread();
        let mut priors = Vec::new();
        if let Some(history) = self.history.get(&var) {
            if against_writes {
                for (&other, access) in &history.writes {
                    if other != thread && access.epoch > time.get(other) {
                        priors.push(*access);
                    }
                }
            }
            if against_reads {
                for (&other, access) in &history.reads {
                    if other != thread && access.epoch > time.get(other) {
                        priors.push(*access);
                    }
                }
            }
        }
        for prior in priors {
            self.stats.race_events += 1;
            self.report.push(Race {
                first: prior.event,
                second: event.id(),
                variable: var,
                first_location: prior.location,
                second_location: event.location(),
                kind: RaceKind::Wcp,
            });
        }
    }

    /// Fork/join events are not part of the paper's trace alphabet (§2.1) but
    /// are present in RVPredict-logged traces (§4).  Following the authors'
    /// RAPID tool, fork/join edges are treated as *hard* orderings included
    /// in WCP itself (a parent's pre-fork accesses can never race with the
    /// child), so the child receives the parent's full `C_t`, not just `P_t`.
    fn fork(&mut self, parent: ThreadId, child: ThreadId) {
        let mut parent_time = self.hb[parent.index()].clone();
        parent_time.set(parent, self.local[parent.index()]);
        let parent_current = self.current_time(parent);
        self.join_into_hb(child, &parent_time);
        self.join_into_wcp(child, &parent_current);
        // The parent's next event starts a new "epoch" so that the child's
        // knowledge of the parent stays strictly before it.
        self.local[parent.index()] += 1;
        let local = self.local[parent.index()];
        self.hb[parent.index()].set(parent, local);
    }

    /// See [`WcpState::fork`]: join edges are likewise hard orderings.
    fn join(&mut self, parent: ThreadId, child: ThreadId) {
        let mut child_time = self.hb[child.index()].clone();
        child_time.set(child, self.local[child.index()]);
        let child_current = self.current_time(child);
        self.join_into_hb(parent, &child_time);
        self.join_into_wcp(parent, &child_current);
    }
}

/// The push-based streaming core of Algorithm 1.
///
/// Feed events in trace order with [`WcpStream::on_event`]; each call
/// returns the races flagged at that event, and [`WcpStream::finish`] yields
/// the accumulated [`WcpOutcome`].  The stream never holds the trace: its
/// live state is the per-thread/per-lock clocks, the per-variable summary
/// clocks, and the Rule (b) section FIFOs, whose occupancy is reported in
/// [`WcpStats`] (worst-case linear per Theorem 4, tiny in practice — Table 1
/// column 11).
///
/// Threads may be *discovered mid-stream* (their first event, or a `fork`
/// targeting them, registers them).  A thread discovered only after lock
/// sections were already consumed by every then-known thread starts from the
/// oldest retained Rule (b) entry; any earlier section it would have needed
/// is already reflected in the lock's `P_l` clock, which the thread joins at
/// its first acquire, so announced threads (the normal fork-before-use
/// pattern) see exactly the batch behaviour.  [`WcpDetector`] pre-registers
/// the full thread set, making batch runs report the same races, orderings
/// and timestamps as the original whole-trace algorithm.
pub struct WcpStream {
    state: WcpState,
    drain: RaceDrain,
}

impl Default for WcpStream {
    fn default() -> Self {
        WcpStream::new()
    }
}

impl WcpStream {
    /// Creates a stream that discovers threads on the fly.
    pub fn new() -> Self {
        WcpStream::with_threads(0)
    }

    /// Creates a stream with `threads` threads pre-registered (ids
    /// `0..threads`); used by the batch wrapper so that Rule (b) fan-out —
    /// and therefore every race verdict and ordering — matches the
    /// whole-trace algorithm exactly.  Queue telemetry is equivalent up to
    /// publication timing: sections are counted from the release rather
    /// than from the acquire, so `max_queue_entries` can sit slightly below
    /// the historical algorithm's peak while a critical section is open.
    pub fn with_threads(threads: usize) -> Self {
        WcpStream { state: WcpState::new(threads), drain: RaceDrain::new() }
    }

    /// Processes one event, returning the races flagged at it.
    pub fn on_event(&mut self, event: &Event) -> Vec<Race> {
        let state = &mut self.state;
        let thread = event.thread();
        state.ensure_thread(thread);
        if let Some(target) = event.kind().target_thread() {
            state.ensure_thread(target);
        }
        state.apply_pending_increment(thread);
        state.stats.events += 1;

        match event.kind() {
            EventKind::Acquire(lock) => {
                state.acquire(thread, lock);
                state.lockctx.on_event(event);
            }
            EventKind::Release(lock) => {
                let closed = state.lockctx.on_event(event);
                let (reads, writes) = match closed {
                    Some(section) => (section.reads, section.writes),
                    None => (Vec::new(), Vec::new()),
                };
                state.release(thread, lock, &reads, &writes);
            }
            EventKind::Read(var) => {
                state.read(event, var);
                state.lockctx.on_event(event);
            }
            EventKind::Write(var) => {
                state.write(event, var);
                state.lockctx.on_event(event);
            }
            EventKind::Fork(child) => state.fork(thread, child),
            EventKind::Join(child) => state.join(thread, child),
        }

        self.drain.fresh(&self.state.report)
    }

    /// The WCP time `C_t` of `thread` after the last processed event
    /// (`thread` must have been seen).  Used to collect per-event timestamps.
    pub fn current_time(&self, thread: ThreadId) -> VectorClock {
        self.state.current_time(thread)
    }

    /// Number of events processed so far.
    pub fn events_seen(&self) -> usize {
        self.state.stats.events
    }

    /// Races found so far.
    pub fn report(&self) -> &RaceReport {
        &self.state.report
    }

    /// Live logical occupancy of the Rule (b) queues — the quantity whose
    /// maximum Table 1 column 11 reports.  Bounded-memory tests watch this.
    pub fn live_queue_entries(&self) -> usize {
        self.state.queue_entries
    }

    /// Number of Rule (b) section entries currently retained across all
    /// locks (each entry is stored once, independent of the thread count).
    pub fn retained_sections(&self) -> usize {
        self.state.histories.values().map(|history| history.entries.len()).sum()
    }

    /// Ends the stream, returning races and telemetry.  Thread and lock
    /// counts in the stats reflect what the stream has seen.
    pub fn finish(&mut self) -> WcpOutcome {
        self.state.stats.threads = self.state.active_count;
        self.state.stats.locks = self.state.locks_seen.len();
        WcpOutcome {
            report: std::mem::take(&mut self.state.report),
            stats: std::mem::take(&mut self.state.stats),
            timestamps: None,
        }
    }
}

impl WcpDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        WcpDetector::default()
    }

    /// Runs Algorithm 1 over `trace`, returning races and telemetry.
    pub fn analyze(&self, trace: &Trace) -> WcpOutcome {
        self.run(trace, false)
    }

    /// Like [`WcpDetector::analyze`] but also collects the WCP timestamp of
    /// every event (linear extra memory; used by tests, the reference-closure
    /// cross-check and the offline race-pair pass).
    pub fn analyze_with_timestamps(&self, trace: &Trace) -> WcpOutcome {
        self.run(trace, true)
    }

    /// Convenience wrapper returning only the race report.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        self.analyze(trace).report
    }

    fn run(&self, trace: &Trace, keep_timestamps: bool) -> WcpOutcome {
        let mut stream = WcpStream::with_threads(trace.num_threads());
        let mut timestamps = keep_timestamps.then(|| Vec::with_capacity(trace.len()));

        for event in trace.events() {
            stream.on_event(event);
            if let Some(timestamps) = timestamps.as_mut() {
                timestamps.push(stream.current_time(event.thread()));
            }
        }

        let mut outcome = stream.finish();
        // The batch run knows the trace's full alphabet; report it even for
        // threads/locks that are interned but never perform an event.
        outcome.stats.threads = trace.num_threads();
        outcome.stats.locks = trace.num_locks();
        outcome.timestamps = timestamps.map(WcpTimestamps::new);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::figures;
    use rapid_gen::lower_bound::{bits_of, lower_bound_trace};
    use rapid_gen::random::RandomTraceConfig;
    use rapid_hb::HbDetector;
    use rapid_trace::TraceBuilder;
    use std::collections::BTreeSet;

    fn racy_variables(report: &RaceReport) -> BTreeSet<VarId> {
        report.races().iter().map(|race| race.variable).collect()
    }

    #[test]
    fn detects_unprotected_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let outcome = WcpDetector::new().analyze(&b.finish());
        assert_eq!(outcome.report.distinct_pairs(), 1);
        assert_eq!(outcome.stats.race_events, 1);
    }

    #[test]
    fn lock_protected_conflicting_accesses_do_not_race() {
        // Figure 1a's pattern: conflicting accesses inside critical sections
        // over the same lock are WCP ordered by Rule (a).
        let figure = figures::figure_1a();
        let outcome = WcpDetector::new().analyze(&figure.trace);
        assert!(outcome.report.is_empty());
    }

    #[test]
    fn focal_pair_verdicts_match_the_paper_on_all_figures() {
        for figure in figures::paper_figures() {
            let outcome = WcpDetector::new().analyze_with_timestamps(&figure.trace);
            let timestamps = outcome.timestamps.expect("timestamps requested");
            assert_eq!(
                timestamps.unordered(figure.first, figure.second),
                figure.wcp_race,
                "{}: WCP verdict on the focal pair should be {}",
                figure.name,
                figure.wcp_race
            );
        }
    }

    #[test]
    fn figure_2b_race_is_reported_with_the_right_locations() {
        let figure = figures::figure_2b();
        let report = WcpDetector::new().detect(&figure.trace);
        assert_eq!(report.distinct_pairs(), 1);
        let race = report.races()[0];
        assert_eq!(race.first, figure.first);
        assert_eq!(race.second, figure.second);
        assert_eq!(race.kind, RaceKind::Wcp);
    }

    #[test]
    fn every_hb_race_is_a_wcp_race_on_random_traces() {
        for seed in 0..10 {
            let config = RandomTraceConfig {
                seed,
                events: 400,
                threads: 4,
                locks: 3,
                variables: 6,
                disciplined_probability: 0.5,
                ..RandomTraceConfig::default()
            };
            let trace = config.generate();
            let hb = HbDetector::new().detect(&trace);
            let wcp = WcpDetector::new().detect(&trace);
            let hb_vars = racy_variables(&hb);
            let wcp_vars = racy_variables(&wcp);
            assert!(
                hb_vars.is_subset(&wcp_vars),
                "seed {seed}: HB races {hb_vars:?} must be a subset of WCP races {wcp_vars:?}"
            );
        }
    }

    #[test]
    fn wcp_timestamps_refine_hb_timestamps() {
        // ≤WCP ⊆ ≤HB: whenever WCP orders a pair, HB orders it too.
        for seed in 0..5 {
            let config = RandomTraceConfig { seed, events: 200, ..RandomTraceConfig::default() };
            let trace = config.generate();
            let wcp = WcpDetector::new().analyze_with_timestamps(&trace);
            let wcp_times = wcp.timestamps.unwrap();
            let (_, hb_times) = HbDetector::new().detect_with_timestamps(&trace);
            for (i, a) in trace.events().iter().enumerate() {
                for b in trace.events().iter().skip(i + 1) {
                    if a.thread() == b.thread() {
                        continue;
                    }
                    if wcp_times.ordered(a.id(), b.id()) {
                        assert!(
                            hb_times.ordered(a.id(), b.id()),
                            "seed {seed}: {} ≤WCP {} but not ≤HB",
                            a.id(),
                            b.id()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_family_races_iff_strings_differ() {
        for bits in 1..=3 {
            for u in 0..(1u64 << bits) {
                for v in 0..(1u64 << bits) {
                    let instance = lower_bound_trace(&bits_of(u, bits), &bits_of(v, bits));
                    let outcome = WcpDetector::new().analyze_with_timestamps(&instance.trace);
                    let timestamps = outcome.timestamps.unwrap();
                    let ordered =
                        timestamps.ordered(instance.first_write_z, instance.second_write_z);
                    assert_eq!(
                        ordered,
                        instance.expect_ordered(),
                        "u={u:0width$b} v={v:0width$b}: the w(z) events should be {} (Theorem 4 reduction)",
                        if instance.expect_ordered() { "ordered" } else { "unordered" },
                        width = bits
                    );
                }
            }
        }
    }

    #[test]
    fn queue_telemetry_is_collected() {
        let figure = figures::figure_6();
        let outcome = WcpDetector::new().analyze(&figure.trace);
        assert!(outcome.stats.queue_enqueues > 0);
        assert!(outcome.stats.max_queue_entries > 0);
        assert!(outcome.stats.max_queue_fraction() > 0.0);
        assert_eq!(outcome.stats.events, figure.trace.len());
    }

    #[test]
    fn fork_join_edges_are_respected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let x = b.variable("x");
        b.write(main, x);
        b.fork(main, worker);
        b.write(worker, x);
        b.join(main, worker);
        b.write(main, x);
        let report = WcpDetector::new().detect(&b.finish());
        assert!(report.is_empty(), "fork/join order all accesses");
    }

    #[test]
    fn far_apart_races_are_found_without_windowing() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let l = b.lock("l");
        let x = b.variable("x");
        let counter = b.variable("counter");
        b.write(t1, x);
        for i in 0..5_000 {
            let thread = if i % 2 == 0 { t1 } else { t3 };
            b.critical_section(thread, l, |b| {
                b.read(thread, counter);
                b.write(thread, counter);
            });
        }
        b.read(t2, x);
        let report = WcpDetector::new().detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
        assert!(report.max_distance() > 10_000);
    }

    #[test]
    fn streaming_rule_b_queues_stay_bounded_when_sections_drain() {
        // Two threads alternating over one lock: every section is consumed
        // by the other thread's next release, so the retained history stays
        // O(1) no matter how long the stream runs.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        for _ in 0..2_000 {
            b.critical_section(t1, l, |b| {
                b.write(t1, x);
            });
            b.critical_section(t2, l, |b| {
                b.write(t2, x);
            });
        }
        let trace = b.finish();
        let mut stream = WcpStream::with_threads(trace.num_threads());
        let mut max_retained = 0;
        for event in trace.events() {
            stream.on_event(event);
            max_retained = max_retained.max(stream.retained_sections());
        }
        assert!(
            max_retained <= 4,
            "retained Rule (b) sections must not scale with the trace: {max_retained}"
        );
    }

    #[test]
    fn thread_discovery_matches_preregistration_on_announced_traces() {
        // A stream that learns threads from the events agrees exactly with
        // the pre-registered batch wrapper when threads are *announced*
        // before any lock activity (the fork-before-use pattern of real
        // traces): every Rule (b) cursor then starts at entry zero on both
        // sides.  (A thread appearing out of nowhere after its lock history
        // was drained may see weaker Rule (b) information — that is the
        // documented streaming approximation.)
        for seed in 0..10 {
            let config = RandomTraceConfig {
                seed,
                events: 300,
                threads: 4,
                locks: 2,
                variables: 5,
                disciplined_probability: 0.4,
                ..RandomTraceConfig::default()
            };
            let body = config.generate();
            let mut announced = String::new();
            for t in 1..body.num_threads() {
                announced.push_str(&format!("t0|fork(t{t})\n"));
            }
            announced.push_str(&rapid_trace::format::write_std(&body));
            let trace = rapid_trace::format::parse_std(&announced).expect("valid trace text");

            let batch = WcpDetector::new().detect(&trace);
            let mut stream = WcpStream::new();
            for event in trace.events() {
                stream.on_event(event);
            }
            let streamed = stream.finish().report;
            // Races flagged at the same event surface in per-variable
            // HashMap order, which differs between detector instances —
            // compare as sets.
            let key = |report: &RaceReport| -> BTreeSet<(EventId, EventId, VarId)> {
                report.races().iter().map(|race| (race.first, race.second, race.variable)).collect()
            };
            assert_eq!(
                key(&batch),
                key(&streamed),
                "seed {seed}: discovery-mode stream diverged from batch"
            );
        }
    }
}
