//! Property-based tests of the trace substrate.
//!
//! A custom proptest strategy generates *well-formed* traces directly (events
//! are interpreted against per-thread lock stacks, so lock semantics and
//! well-nestedness hold by construction), and the structural invariants of
//! the trace layer are checked against them: validation, statistics, the
//! critical-section index, the online lock context and the text formats.

use proptest::prelude::*;
use rapid_trace::analysis::TraceIndex;
use rapid_trace::lockctx::LockContext;
use rapid_trace::{format, EventKind, Trace, TraceBuilder};

/// Abstract actions from which valid traces are interpreted.
#[derive(Debug, Clone, Copy)]
enum Action {
    Read(u8),
    Write(u8),
    Acquire(u8),
    Release,
    Fork,
    Join,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..6).prop_map(Action::Read),
        (0u8..6).prop_map(Action::Write),
        (0u8..4).prop_map(Action::Acquire),
        Just(Action::Release),
        Just(Action::Fork),
        Just(Action::Join),
    ]
}

/// Interprets a script of `(thread, action)` pairs into a well-formed trace.
fn interpret(script: &[(u8, Action)], threads: usize) -> Trace {
    let threads = threads.max(1);
    let mut builder = TraceBuilder::new();
    let thread_ids = builder.threads(threads);
    let lock_ids = builder.locks(4);
    let var_ids = builder.variables(6);

    // Per-thread stack of held locks, global holder map, fork/join state.
    let mut held: Vec<Vec<usize>> = vec![Vec::new(); threads];
    let mut holder: Vec<Option<usize>> = vec![None; lock_ids.len()];
    let mut started: Vec<bool> = vec![false; threads];
    let mut forked: Vec<bool> = vec![false; threads];
    let mut joined: Vec<bool> = vec![false; threads];

    for &(raw_thread, action) in script {
        let t = (raw_thread as usize) % threads;
        if joined[t] {
            continue; // a joined thread stays silent
        }
        let thread = thread_ids[t];
        started[t] = true;
        match action {
            Action::Read(var) => {
                builder.read(thread, var_ids[var as usize % var_ids.len()]);
            }
            Action::Write(var) => {
                builder.write(thread, var_ids[var as usize % var_ids.len()]);
            }
            Action::Acquire(lock) => {
                let lock = lock as usize % lock_ids.len();
                if holder[lock].is_none() && held[t].len() < 3 {
                    holder[lock] = Some(t);
                    held[t].push(lock);
                    builder.acquire(thread, lock_ids[lock]);
                }
            }
            Action::Release => {
                if let Some(lock) = held[t].pop() {
                    holder[lock] = None;
                    builder.release(thread, lock_ids[lock]);
                }
            }
            Action::Fork => {
                // Fork the next not-yet-started, not-yet-forked thread.
                if let Some(child) = (0..threads).find(|&u| u != t && !started[u] && !forked[u]) {
                    forked[child] = true;
                    builder.fork(thread, thread_ids[child]);
                }
            }
            Action::Join => {
                // Join a thread that has started, holds no locks and is not
                // yet joined.
                if let Some(child) =
                    (0..threads).find(|&u| u != t && started[u] && held[u].is_empty() && !joined[u])
                {
                    joined[child] = true;
                    builder.join(thread, thread_ids[child]);
                }
            }
        }
    }
    // Close open critical sections.
    for t in 0..threads {
        if joined[t] {
            continue;
        }
        while let Some(lock) = held[t].pop() {
            holder[lock] = None;
            builder.release(thread_ids[t], lock_ids[lock]);
        }
    }
    builder.finish()
}

fn generated_trace() -> impl Strategy<Value = Trace> {
    (2usize..5, prop::collection::vec((0u8..5, action()), 0..200))
        .prop_map(|(threads, script)| interpret(&script, threads))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn interpreted_traces_are_well_formed(trace in generated_trace()) {
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
    }

    #[test]
    fn stats_add_up(trace in generated_trace()) {
        let stats = trace.stats();
        prop_assert_eq!(stats.events, trace.len());
        prop_assert_eq!(
            stats.reads + stats.writes + stats.acquires + stats.releases + stats.forks
                + stats.joins,
            trace.len()
        );
        prop_assert_eq!(stats.acquires, stats.critical_sections);
        prop_assert!(stats.releases <= stats.acquires);
        prop_assert!(stats.shared_variables <= stats.variables);
    }

    #[test]
    fn index_matches_are_mutually_inverse(trace in generated_trace()) {
        let index = TraceIndex::build(&trace);
        for event in trace.events() {
            match event.kind() {
                EventKind::Acquire(_) => {
                    if let Some(release) = index.matching_release(event.id()) {
                        prop_assert_eq!(index.matching_acquire(release), Some(event.id()));
                        prop_assert!(release > event.id());
                        prop_assert_eq!(trace[release].thread(), event.thread());
                    }
                }
                EventKind::Release(_) => {
                    let acquire = index.matching_acquire(event.id());
                    prop_assert!(acquire.is_some(), "every release has a matching acquire");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn enclosing_sections_agree_with_online_lock_context(trace in generated_trace()) {
        let index = TraceIndex::build(&trace);
        let mut ctx = LockContext::new(trace.num_threads());
        for event in trace.events() {
            if event.kind().is_access() {
                let from_index = index.held_locks(&trace, event.id());
                let from_ctx = ctx.held(event.thread());
                prop_assert_eq!(from_index, from_ctx);
            }
            ctx.on_event(event);
        }
    }

    #[test]
    fn read_from_is_an_earlier_write_of_the_same_variable(trace in generated_trace()) {
        let index = TraceIndex::build(&trace);
        for event in trace.events() {
            if let EventKind::Read(var) = event.kind() {
                if let Some(write) = index.read_from(event.id()) {
                    prop_assert!(write < event.id());
                    prop_assert_eq!(trace[write].kind(), EventKind::Write(var));
                }
            }
        }
    }

    #[test]
    fn subtrace_windows_are_always_valid(trace in generated_trace(), start in 0usize..220, len in 0usize..220) {
        let end = (start + len).min(trace.len());
        let start = start.min(end);
        let (sub, mapping) = trace.subtrace(start, end);
        prop_assert!(sub.validate().is_ok());
        prop_assert!(sub.len() <= end - start);
        prop_assert_eq!(sub.len(), mapping.len());
    }

    #[test]
    fn std_and_csv_formats_parse_back(trace in generated_trace()) {
        let std_text = format::write_std(&trace);
        let csv_text = format::write_csv(&trace);
        let from_std = format::parse_std(&std_text).expect("std parses");
        let from_csv = format::parse_csv(&csv_text).expect("csv parses");
        prop_assert_eq!(from_std.len(), trace.len());
        prop_assert_eq!(from_csv.len(), trace.len());
        prop_assert!(from_std.validate().is_ok());
        // Event mnemonics survive both round trips.
        for ((original, a), b) in trace.events().iter().zip(from_std.events()).zip(from_csv.events()) {
            prop_assert_eq!(original.kind().mnemonic(), a.kind().mnemonic());
            prop_assert_eq!(original.kind().mnemonic(), b.kind().mnemonic());
        }
    }

    #[test]
    fn streamed_v2_equals_batch_v1_event_for_event(trace in generated_trace(), block in 1usize..48) {
        let batch = format::BinReader::from_bytes(format::to_rwf_bytes(&trace))
            .expect("batch v1 container is sound");
        let streamed = format::BinReader::from_bytes(format::to_rwf_stream_bytes(&trace, block))
            .expect("streamed v2 container is sound");
        prop_assert_eq!(streamed.frame_count(), batch.frame_count());
        // Final name tables are canonical (first-appearance order) in both
        // containers, so ids — and therefore detector timestamps — agree.
        prop_assert_eq!(streamed.names().num_threads(), batch.names().num_threads());
        prop_assert_eq!(streamed.names().num_locks(), batch.names().num_locks());
        prop_assert_eq!(streamed.names().num_variables(), batch.names().num_variables());
        prop_assert_eq!(streamed.names().num_locations(), batch.names().num_locations());
        let from_batch = format::collect_any(batch.into()).expect("batch decodes");
        let from_streamed = format::collect_any(streamed.into()).expect("streamed decodes");
        prop_assert_eq!(from_streamed.events(), from_batch.events());
        prop_assert_eq!(format::write_std(&from_streamed), format::write_std(&from_batch));
    }

    #[test]
    fn conflicting_pairs_are_symmetric_and_cross_thread(trace in generated_trace()) {
        for (first, second) in trace.conflicting_pairs() {
            prop_assert!(first < second);
            let a = trace[first];
            let b = trace[second];
            prop_assert!(a.conflicts_with(&b));
            prop_assert!(b.conflicts_with(&a));
            prop_assert_ne!(a.thread(), b.thread());
            prop_assert!(a.kind().is_write() || b.kind().is_write());
        }
    }
}
