//! Golden-file tests of the std and CSV trace formats.
//!
//! The fixtures under `tests/fixtures/` pin down the on-disk formats:
//! `figure2b.{std,csv,rwf}` are the canonical serializations of the paper's
//! Figure 2b trace (round-trip: format → parse → format must reproduce them
//! byte-for-byte, including the binary wire format of `docs/FORMAT.md` §3),
//! `optional_location.std` exercises the documented optional-location form
//! in every shape, and the `bad_*` fixtures assert that [`ParseError`]
//! reports the right kind *and line number*.

use rapid_trace::format::{self, BinReader, ParseErrorKind, StreamReader};
use rapid_trace::EventKind;

const FIGURE2B_STD: &str = include_str!("fixtures/figure2b.std");
const FIGURE2B_CSV: &str = include_str!("fixtures/figure2b.csv");
const FIGURE2B_RWF: &[u8] = include_bytes!("fixtures/figure2b.rwf");
const OPTIONAL_LOCATION: &str = include_str!("fixtures/optional_location.std");
const BAD_MISSING_FIELD: &str = include_str!("fixtures/bad_missing_field.std");
const BAD_UNKNOWN_OP: &str = include_str!("fixtures/bad_unknown_op.std");
const BAD_MALFORMED_OP: &str = include_str!("fixtures/bad_malformed_op.csv");

#[test]
fn figure2b_std_round_trips_byte_for_byte() {
    let trace = format::parse_std(FIGURE2B_STD).expect("golden fixture parses");
    assert_eq!(trace.len(), 8);
    assert_eq!(trace.num_threads(), 2);
    assert_eq!(format::write_std(&trace), FIGURE2B_STD);
}

#[test]
fn figure2b_csv_round_trips_byte_for_byte() {
    let trace = format::parse_csv(FIGURE2B_CSV).expect("golden fixture parses");
    assert_eq!(trace.len(), 8);
    assert_eq!(format::write_csv(&trace), FIGURE2B_CSV);
}

#[test]
fn figure2b_rwf_round_trips_byte_for_byte() {
    // std text -> .rwf reproduces the golden binary fixture exactly...
    let trace = format::parse_std(FIGURE2B_STD).expect("golden fixture parses");
    assert_eq!(format::to_rwf_bytes(&trace), FIGURE2B_RWF);

    // ...and .rwf -> std text reproduces the golden text fixture exactly.
    let reader = BinReader::from_bytes(FIGURE2B_RWF.to_vec()).expect("golden header is sound");
    assert_eq!(reader.frame_count(), 8);
    let decoded = format::collect_any(reader.into()).expect("golden fixture decodes");
    assert_eq!(format::write_std(&decoded), FIGURE2B_STD);
    assert_eq!(decoded.events(), trace.events(), "ids are canonical on both sides");
}

#[test]
fn figure2b_rwf_header_fields_match_the_spec() {
    // The first 12 bytes are fixed by docs/FORMAT.md §3.1: magic "RWF\0",
    // version 1 LE, reserved 0, event count LE.
    assert!(format::looks_binary(FIGURE2B_RWF));
    assert_eq!(&FIGURE2B_RWF[0..4], b"RWF\0");
    assert_eq!(u16::from_le_bytes(FIGURE2B_RWF[4..6].try_into().unwrap()), format::VERSION);
    assert_eq!(u16::from_le_bytes(FIGURE2B_RWF[6..8].try_into().unwrap()), 0);
    assert_eq!(u32::from_le_bytes(FIGURE2B_RWF[8..12].try_into().unwrap()), 8);
    // 8 frames of 13 bytes close the 127-byte header (no trailing bytes).
    assert_eq!(FIGURE2B_RWF.len(), 127 + 8 * format::FRAME_LEN);
}

#[test]
fn the_three_flavours_describe_the_same_trace() {
    let from_std = format::parse_std(FIGURE2B_STD).unwrap();
    let from_csv = format::parse_csv(FIGURE2B_CSV).unwrap();
    let from_rwf = format::collect_any(
        BinReader::from_bytes(FIGURE2B_RWF.to_vec()).expect("golden header is sound").into(),
    )
    .unwrap();
    assert_eq!(from_std.events(), from_csv.events());
    assert_eq!(from_std.events(), from_rwf.events());
    assert_eq!(from_std, from_csv);
}

#[test]
fn golden_fixture_matches_the_generated_figure() {
    // The fixture is the canonical serialization of the generator's Figure
    // 2b — if either drifts, this catches it.
    let generated = rapid_gen::figures::figure_2b().trace;
    assert_eq!(format::write_std(&generated), FIGURE2B_STD);
}

#[test]
fn optional_location_fixture_parses_in_every_shape() {
    let trace = format::parse_std(OPTIONAL_LOCATION).expect("optional-location forms parse");
    assert_eq!(trace.len(), 8);
    // Lines without a location get a synthetic, distinct one.
    assert!(matches!(trace[1].kind(), EventKind::Acquire(_)));
    assert_eq!(trace.location_name(trace[1].location()), Some("line2"));
    // Explicit locations survive.
    assert_eq!(trace.location_name(trace[2].location()), Some("Counter.java:7"));
    // An empty trailing field behaves like an absent one.
    assert_eq!(trace.location_name(trace[3].location()), Some("line4"));
    assert!(trace.validate().is_ok());

    // Reserialization is a fixpoint: once locations are synthesized, the
    // trace round-trips exactly.
    let canonical = format::write_std(&trace);
    let reparsed = format::parse_std(&canonical).unwrap();
    assert_eq!(format::write_std(&reparsed), canonical);
}

#[test]
fn missing_field_reports_its_line_number() {
    let error = format::parse_std(BAD_MISSING_FIELD).unwrap_err();
    assert_eq!(error.kind, ParseErrorKind::MissingField);
    assert_eq!(error.line, 4, "{error}");
}

#[test]
fn unknown_op_reports_its_line_number() {
    let error = format::parse_std(BAD_UNKNOWN_OP).unwrap_err();
    assert!(matches!(&error.kind, ParseErrorKind::UnknownOp(op) if op == "lock"));
    assert_eq!(error.line, 3, "{error}");
}

#[test]
fn malformed_op_reports_its_line_number() {
    let error = format::parse_csv(BAD_MALFORMED_OP).unwrap_err();
    assert!(matches!(&error.kind, ParseErrorKind::MalformedOp(op) if op == "rel l"));
    assert_eq!(error.line, 5, "{error}");
}

#[test]
fn streaming_reader_reports_the_same_errors() {
    // The batch entry points are stream + collect; the raw reader must
    // surface identical errors at identical lines.
    let mut reader = StreamReader::std(BAD_UNKNOWN_OP.as_bytes());
    assert!(reader.next().unwrap().is_ok());
    assert!(reader.next().unwrap().is_ok());
    let error = reader.next().unwrap().unwrap_err();
    assert_eq!(error.line, 3);
    assert!(matches!(error.kind, ParseErrorKind::UnknownOp(_)));
    assert!(reader.next().is_none());
}
