//! Property tests of the binary wire format (`.rwf`) against the text
//! formats: `std text → .rwf → std text` is byte-exact (modulo comments and
//! blank lines, which the text parser discards before conversion), and the
//! zero-copy readers agree with [`StreamReader`] event for event.
//!
//! Together with the golden fixture `tests/fixtures/figure2b.rwf`, these
//! back the encoding claims of `docs/FORMAT.md` §3.

use proptest::prelude::*;
use rapid_gen::random::RandomTraceConfig;
use rapid_trace::format::{self, BinReader, MmapReader, StreamReader};
use rapid_trace::Event;

/// Random valid traces of varying shape (threads × locks × variables ×
/// length), deterministic per seed.
fn generated_trace() -> impl Strategy<Value = rapid_trace::Trace> {
    (2usize..6, 1usize..4, 1usize..10, 0usize..300, 0u64..1_000).prop_map(
        |(threads, locks, variables, events, seed)| {
            RandomTraceConfig::sized(threads, locks, variables, events, seed).generate()
        },
    )
}

/// Sprinkles comments and blank lines between the content lines.
fn decorate_with_comments(text: &str) -> String {
    let mut decorated = String::from("# header comment\n\n");
    for (index, line) in text.lines().enumerate() {
        decorated.push_str(line);
        decorated.push('\n');
        if index % 3 == 0 {
            decorated.push_str("# interleaved comment\n");
        }
        if index % 5 == 0 {
            decorated.push('\n');
        }
    }
    decorated
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// std text → `.rwf` → std text reproduces the canonical serialization
    /// byte for byte.
    #[test]
    fn std_text_roundtrips_through_rwf(trace in generated_trace()) {
        let text = format::write_std(&trace);
        let parsed = format::parse_std(&text).expect("canonical text parses");
        let rwf = format::to_rwf_bytes(&parsed);
        let reader = BinReader::from_bytes(rwf).expect("fresh rwf has a sound header");
        let back = format::collect_any(reader.into()).expect("fresh rwf decodes");
        prop_assert_eq!(format::write_std(&back), text);
    }

    /// Comments and blank lines are the only permitted loss: decorated text
    /// converts to the same `.rwf` bytes as the undecorated text.
    #[test]
    fn comments_are_the_only_loss(trace in generated_trace()) {
        let text = format::write_std(&trace);
        let plain = format::to_rwf_bytes(&format::parse_std(&text).expect("parses"));
        let decorated =
            format::to_rwf_bytes(&format::parse_std(&decorate_with_comments(&text)).expect("parses"));
        prop_assert_eq!(plain, decorated);
    }

    /// A fresh conversion is a fixpoint: `.rwf` → std → `.rwf` is identity
    /// (ids are already canonical first-appearance order on both sides).
    #[test]
    fn rwf_is_a_conversion_fixpoint(trace in generated_trace()) {
        let rwf = format::to_rwf_bytes(&trace);
        let back = format::collect_any(
            BinReader::from_bytes(rwf.clone()).expect("sound header").into(),
        )
        .expect("decodes");
        prop_assert_eq!(format::to_rwf_bytes(&back), rwf);
    }

    /// All three readers yield identical event sequences — same kinds, same
    /// interned ids, same locations — over equivalent inputs.
    #[test]
    fn all_readers_agree_on_events_and_names(trace in generated_trace()) {
        let text = format::write_std(&trace);

        let mut stream = StreamReader::std(text.as_bytes());
        let stream_events: Vec<Event> =
            stream.by_ref().collect::<Result<_, _>>().expect("parses");

        let mut mapped = MmapReader::std_bytes(text.clone().into_bytes());
        let mapped_events: Vec<Event> =
            mapped.by_ref().collect::<Result<_, _>>().expect("parses");

        let rwf = format::to_rwf_bytes(&format::parse_std(&text).expect("parses"));
        let mut binary = BinReader::from_bytes(rwf).expect("sound header");
        let binary_events: Vec<Event> =
            binary.by_ref().collect::<Result<_, _>>().expect("decodes");

        prop_assert_eq!(&stream_events, &mapped_events);
        prop_assert_eq!(&stream_events, &binary_events);

        // Name tables agree id-for-id across all three.
        let stream_names = stream.into_names();
        let mapped_names = mapped.into_names();
        let binary_names = binary.into_names();
        for names in [&mapped_names, &binary_names] {
            prop_assert_eq!(stream_names.num_threads(), names.num_threads());
            prop_assert_eq!(stream_names.num_variables(), names.num_variables());
            prop_assert_eq!(stream_names.num_locks(), names.num_locks());
            prop_assert_eq!(stream_names.num_locations(), names.num_locations());
        }
        for event in &stream_events {
            prop_assert_eq!(
                stream_names.thread_name(event.thread()),
                binary_names.thread_name(event.thread())
            );
            prop_assert_eq!(
                stream_names.location_name(event.location()),
                binary_names.location_name(event.location())
            );
            prop_assert_eq!(
                stream_names.location_name(event.location()),
                mapped_names.location_name(event.location())
            );
        }
    }
}
