//! Summary statistics of a trace (Table 1, columns 3–5).

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::EventKind;
use crate::trace::Trace;

/// Counts of events, threads, locks and variables in a trace.
///
/// These are the per-benchmark characteristics reported in columns 3–5 of
/// the paper's Table 1 (#events, #threads, #locks), plus a few extra counts
/// that are useful when sizing generated workloads.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of events.
    pub events: usize,
    /// Number of threads that perform at least one event.
    pub threads: usize,
    /// Number of distinct locks acquired or released.
    pub locks: usize,
    /// Number of distinct variables read or written.
    pub variables: usize,
    /// Number of read events.
    pub reads: usize,
    /// Number of write events.
    pub writes: usize,
    /// Number of acquire events.
    pub acquires: usize,
    /// Number of release events.
    pub releases: usize,
    /// Number of fork events.
    pub forks: usize,
    /// Number of join events.
    pub joins: usize,
    /// Variables accessed by more than one thread with at least one write.
    pub shared_variables: usize,
    /// Number of critical sections (matched acquire/release pairs plus
    /// unmatched trailing acquires).
    pub critical_sections: usize,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    pub fn of(trace: &Trace) -> Self {
        let mut stats = TraceStats { events: trace.len(), ..TraceStats::default() };
        let mut threads = HashSet::new();
        let mut locks = HashSet::new();
        let mut variables = HashSet::new();
        let mut accessors: HashMap<_, HashSet<_>> = HashMap::new();
        let mut written: HashSet<_> = HashSet::new();

        for event in trace.events() {
            threads.insert(event.thread());
            match event.kind() {
                EventKind::Acquire(lock) => {
                    stats.acquires += 1;
                    stats.critical_sections += 1;
                    locks.insert(lock);
                }
                EventKind::Release(lock) => {
                    stats.releases += 1;
                    locks.insert(lock);
                }
                EventKind::Read(var) => {
                    stats.reads += 1;
                    variables.insert(var);
                    accessors.entry(var).or_default().insert(event.thread());
                }
                EventKind::Write(var) => {
                    stats.writes += 1;
                    variables.insert(var);
                    accessors.entry(var).or_default().insert(event.thread());
                    written.insert(var);
                }
                EventKind::Fork(_) => stats.forks += 1,
                EventKind::Join(_) => stats.joins += 1,
            }
        }

        stats.threads = threads.len();
        stats.locks = locks.len();
        stats.variables = variables.len();
        stats.shared_variables = accessors
            .iter()
            .filter(|(var, threads)| threads.len() > 1 && written.contains(*var))
            .count();
        stats
    }

    /// Number of access (read/write) events.
    pub fn accesses(&self) -> usize {
        self.reads + self.writes
    }

    /// Number of synchronization (acquire/release/fork/join) events.
    pub fn sync_events(&self) -> usize {
        self.acquires + self.releases + self.forks + self.joins
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} threads, {} locks, {} variables ({} shared), {} reads, {} writes, {} critical sections",
            self.events,
            self.threads,
            self.locks,
            self.variables,
            self.shared_variables,
            self.reads,
            self.writes,
            self.critical_sections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    #[test]
    fn counts_all_event_kinds() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let l = b.lock("l");
        let x = b.variable("x");
        let y = b.variable("y");
        b.fork(main, worker);
        b.acquire(main, l);
        b.write(main, x);
        b.release(main, l);
        b.acquire(worker, l);
        b.read(worker, x);
        b.release(worker, l);
        b.write(worker, y);
        b.join(main, worker);
        let stats = b.finish().stats();

        assert_eq!(stats.events, 9);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.locks, 1);
        assert_eq!(stats.variables, 2);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.releases, 2);
        assert_eq!(stats.forks, 1);
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.critical_sections, 2);
        assert_eq!(stats.accesses(), 3);
        assert_eq!(stats.sync_events(), 6);
    }

    #[test]
    fn shared_variables_require_write_and_two_threads() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let shared = b.variable("shared");
        let read_only = b.variable("read_only");
        let local = b.variable("local");
        b.write(t1, shared);
        b.read(t2, shared);
        b.read(t1, read_only);
        b.read(t2, read_only);
        b.write(t1, local);
        b.read(t1, local);
        let stats = b.finish().stats();
        assert_eq!(stats.variables, 3);
        assert_eq!(stats.shared_variables, 1);
    }

    #[test]
    fn empty_trace_stats() {
        let stats = Trace::new().stats();
        assert_eq!(stats, TraceStats::default());
        assert!(stats.to_string().contains("0 events"));
    }
}
