//! Events: the atoms of a trace.

use std::fmt;

use rapid_vc::ThreadId;
use serde::{Deserialize, Serialize};

use crate::ids::{Location, LockId, VarId};

/// The position of an event within its trace (0-based, in trace order `<tr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(u32);

impl EventId {
    /// Creates an event id from a 0-based trace index.
    pub const fn new(index: u32) -> Self {
        EventId(index)
    }

    /// Returns the 0-based trace index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for EventId {
    fn from(value: u32) -> Self {
        EventId(value)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The operation an event performs.
///
/// The paper's trace alphabet (§2.1) consists of lock acquires/releases and
/// variable reads/writes; fork/join events are additionally recorded by the
/// RVPredict logger RAPID consumes (§4) and are modelled here as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// `acq(l)`: the thread acquires lock `l`.
    Acquire(LockId),
    /// `rel(l)`: the thread releases lock `l`.
    Release(LockId),
    /// `r(x)`: the thread reads variable `x`.
    Read(VarId),
    /// `w(x)`: the thread writes variable `x`.
    Write(VarId),
    /// `fork(u)`: the thread spawns thread `u`.
    Fork(ThreadId),
    /// `join(u)`: the thread joins on thread `u`.
    Join(ThreadId),
}

impl EventKind {
    /// Returns the lock operated on, if this is an acquire or release.
    pub fn lock(self) -> Option<LockId> {
        match self {
            EventKind::Acquire(lock) | EventKind::Release(lock) => Some(lock),
            _ => None,
        }
    }

    /// Returns the variable accessed, if this is a read or write.
    pub fn variable(self) -> Option<VarId> {
        match self {
            EventKind::Read(var) | EventKind::Write(var) => Some(var),
            _ => None,
        }
    }

    /// Returns the target thread, if this is a fork or join.
    pub fn target_thread(self) -> Option<ThreadId> {
        match self {
            EventKind::Fork(thread) | EventKind::Join(thread) => Some(thread),
            _ => None,
        }
    }

    /// Returns true for `acq(l)` events.
    pub fn is_acquire(self) -> bool {
        matches!(self, EventKind::Acquire(_))
    }

    /// Returns true for `rel(l)` events.
    pub fn is_release(self) -> bool {
        matches!(self, EventKind::Release(_))
    }

    /// Returns true for `r(x)` events.
    pub fn is_read(self) -> bool {
        matches!(self, EventKind::Read(_))
    }

    /// Returns true for `w(x)` events.
    pub fn is_write(self) -> bool {
        matches!(self, EventKind::Write(_))
    }

    /// Returns true for read or write events.
    pub fn is_access(self) -> bool {
        self.is_read() || self.is_write()
    }

    /// Returns true for fork or join events.
    pub fn is_thread_op(self) -> bool {
        matches!(self, EventKind::Fork(_) | EventKind::Join(_))
    }

    /// Returns a short mnemonic (`acq`, `rel`, `r`, `w`, `fork`, `join`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            EventKind::Acquire(_) => "acq",
            EventKind::Release(_) => "rel",
            EventKind::Read(_) => "r",
            EventKind::Write(_) => "w",
            EventKind::Fork(_) => "fork",
            EventKind::Join(_) => "join",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Acquire(lock) => write!(f, "acq({lock})"),
            EventKind::Release(lock) => write!(f, "rel({lock})"),
            EventKind::Read(var) => write!(f, "r({var})"),
            EventKind::Write(var) => write!(f, "w({var})"),
            EventKind::Fork(thread) => write!(f, "fork({thread})"),
            EventKind::Join(thread) => write!(f, "join({thread})"),
        }
    }
}

/// One event of a trace: an operation performed by a thread at a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    id: EventId,
    thread: ThreadId,
    kind: EventKind,
    location: Location,
}

impl Event {
    /// Creates an event.  Normally events are created through
    /// [`TraceBuilder`](crate::TraceBuilder) which assigns ids densely.
    pub fn new(id: EventId, thread: ThreadId, kind: EventKind, location: Location) -> Self {
        Event { id, thread, kind, location }
    }

    /// The event's position in trace order.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The thread `t(e)` performing the event.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The operation performed.
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The program location the event was emitted from.
    pub fn location(&self) -> Location {
        self.location
    }

    /// Returns true when `self` and `other` are *conflicting*: they access
    /// the same variable, at least one is a write, and the threads differ
    /// (the paper's `e1 ≍ e2`).
    pub fn conflicts_with(&self, other: &Event) -> bool {
        if self.thread == other.thread {
            return false;
        }
        match (self.kind.variable(), other.kind.variable()) {
            (Some(a), Some(b)) if a == b => self.kind.is_write() || other.kind.is_write(),
            _ => false,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} {}", self.id, self.thread, self.kind)?;
        if !self.location.is_unknown() {
            write!(f, " @{}", self.location)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u32, thread: u32, kind: EventKind) -> Event {
        Event::new(EventId::new(id), ThreadId::new(thread), kind, Location::new(id))
    }

    #[test]
    fn kind_accessors() {
        let acq = EventKind::Acquire(LockId::new(1));
        assert!(acq.is_acquire() && !acq.is_release());
        assert_eq!(acq.lock(), Some(LockId::new(1)));
        assert_eq!(acq.variable(), None);

        let read = EventKind::Read(VarId::new(2));
        assert!(read.is_read() && read.is_access() && !read.is_write());
        assert_eq!(read.variable(), Some(VarId::new(2)));

        let fork = EventKind::Fork(ThreadId::new(3));
        assert!(fork.is_thread_op());
        assert_eq!(fork.target_thread(), Some(ThreadId::new(3)));
    }

    #[test]
    fn kind_display() {
        assert_eq!(EventKind::Acquire(LockId::new(0)).to_string(), "acq(L0)");
        assert_eq!(EventKind::Write(VarId::new(7)).to_string(), "w(x7)");
        assert_eq!(EventKind::Join(ThreadId::new(2)).to_string(), "join(T2)");
    }

    #[test]
    fn conflict_requires_same_variable_different_threads_one_write() {
        let w1 = event(0, 0, EventKind::Write(VarId::new(0)));
        let r2 = event(1, 1, EventKind::Read(VarId::new(0)));
        let r3 = event(2, 2, EventKind::Read(VarId::new(0)));
        let w_same_thread = event(3, 0, EventKind::Write(VarId::new(0)));
        let w_other_var = event(4, 1, EventKind::Write(VarId::new(9)));
        let acq = event(5, 1, EventKind::Acquire(LockId::new(0)));

        assert!(w1.conflicts_with(&r2));
        assert!(r2.conflicts_with(&w1));
        assert!(!r2.conflicts_with(&r3), "two reads never conflict");
        assert!(!w1.conflicts_with(&w_same_thread), "same thread never conflicts");
        assert!(!w1.conflicts_with(&w_other_var), "different variables never conflict");
        assert!(!w1.conflicts_with(&acq), "lock events never conflict");
    }

    #[test]
    fn event_display_includes_location() {
        let e = event(3, 1, EventKind::Read(VarId::new(0)));
        assert_eq!(e.to_string(), "e3:T1 r(x0) @pc3");
        let unknown = Event::new(
            EventId::new(0),
            ThreadId::new(0),
            EventKind::Write(VarId::new(1)),
            Location::UNKNOWN,
        );
        assert_eq!(unknown.to_string(), "e0:T0 w(x1)");
    }

    #[test]
    fn mnemonics() {
        assert_eq!(EventKind::Acquire(LockId::new(0)).mnemonic(), "acq");
        assert_eq!(EventKind::Release(LockId::new(0)).mnemonic(), "rel");
        assert_eq!(EventKind::Read(VarId::new(0)).mnemonic(), "r");
        assert_eq!(EventKind::Write(VarId::new(0)).mnemonic(), "w");
        assert_eq!(EventKind::Fork(ThreadId::new(0)).mnemonic(), "fork");
        assert_eq!(EventKind::Join(ThreadId::new(0)).mnemonic(), "join");
    }
}
