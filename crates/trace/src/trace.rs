//! The [`Trace`] container.

use std::fmt;
use std::ops::Index;

use rapid_vc::ThreadId;
use serde::{Deserialize, Serialize};

use crate::event::{Event, EventId};
use crate::ids::{Location, LockId, VarId};
use crate::stats::TraceStats;
use crate::validate::{self, TraceError};

/// A sequence of events together with the names interned while building it.
///
/// A `Trace` is ordered by the paper's `<tr` (trace order): event `i` was
/// performed before event `j` iff `i < j`.  Use [`TraceBuilder`](crate::TraceBuilder)
/// to construct traces and [`Trace::validate`] to check lock semantics and
/// well-nestedness.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    pub(crate) events: Vec<Event>,
    pub(crate) thread_names: Vec<String>,
    pub(crate) lock_names: Vec<String>,
    pub(crate) var_names: Vec<String>,
    pub(crate) location_names: Vec<String>,
}

impl Trace {
    /// Creates an empty trace with no interned names.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in trace order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events in trace order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Returns the event with the given id, if it exists.
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events.get(id.index())
    }

    /// Returns the event with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// Number of distinct threads appearing in the trace.
    pub fn num_threads(&self) -> usize {
        self.thread_names.len()
    }

    /// Number of distinct locks appearing in the trace.
    pub fn num_locks(&self) -> usize {
        self.lock_names.len()
    }

    /// Number of distinct variables appearing in the trace.
    pub fn num_variables(&self) -> usize {
        self.var_names.len()
    }

    /// Number of distinct program locations appearing in the trace.
    pub fn num_locations(&self) -> usize {
        self.location_names.len()
    }

    /// Looks up a thread's name, if it was given one.
    pub fn thread_name(&self, thread: ThreadId) -> Option<&str> {
        self.thread_names.get(thread.index()).map(String::as_str)
    }

    /// Looks up a lock's name, if it was given one.
    pub fn lock_name(&self, lock: LockId) -> Option<&str> {
        self.lock_names.get(lock.index()).map(String::as_str)
    }

    /// Looks up a variable's name, if it was given one.
    pub fn variable_name(&self, var: VarId) -> Option<&str> {
        self.var_names.get(var.index()).map(String::as_str)
    }

    /// Looks up a location's name, if it was given one.
    pub fn location_name(&self, location: Location) -> Option<&str> {
        if location.is_unknown() {
            return None;
        }
        self.location_names.get(location.index()).map(String::as_str)
    }

    /// The projection `σ|t`: ids of the events performed by `thread`, in
    /// trace order.
    pub fn projection(&self, thread: ThreadId) -> Vec<EventId> {
        self.events.iter().filter(|event| event.thread() == thread).map(Event::id).collect()
    }

    /// All thread ids that perform at least one event, in id order.
    pub fn active_threads(&self) -> Vec<ThreadId> {
        let mut seen = vec![false; self.num_threads().max(1)];
        for event in &self.events {
            let index = event.thread().index();
            if index >= seen.len() {
                seen.resize(index + 1, false);
            }
            seen[index] = true;
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &active)| active)
            .map(|(index, _)| ThreadId::new(index as u32))
            .collect()
    }

    /// Checks lock semantics, well-nestedness and fork/join sanity.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered in trace order.
    pub fn validate(&self) -> Result<(), TraceError> {
        validate::validate(self)
    }

    /// Computes summary statistics about the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Returns the sub-trace consisting of events `[start, end)`, reusing the
    /// interned names.  Event ids are preserved (they keep referring to
    /// positions in the *original* trace); used by windowed detectors.
    pub fn window(&self, start: usize, end: usize) -> Vec<Event> {
        let end = end.min(self.events.len());
        let start = start.min(end);
        self.events[start..end].to_vec()
    }

    /// Extracts the events `[start, end)` into a standalone [`Trace`] with
    /// fresh, dense event ids, returning it together with the mapping from
    /// new event ids back to the original ones.
    ///
    /// Windowed analyses (the CP baseline and the RVPredict-style MCM
    /// search) analyze such sub-traces independently.  Release events whose
    /// matching acquire lies before the window are dropped so that the
    /// sub-trace satisfies lock semantics on its own (acquires without a
    /// matching release are legal and kept).
    pub fn subtrace(&self, start: usize, end: usize) -> (Trace, Vec<EventId>) {
        let end = end.min(self.events.len());
        let start = start.min(end);
        let mut events = Vec::new();
        let mut mapping = Vec::new();
        // Locks acquired inside the window, per thread, to identify releases
        // whose acquire lies before the window.
        let mut acquired: std::collections::HashMap<(ThreadId, LockId), usize> =
            std::collections::HashMap::new();
        for original in &self.events[start..end] {
            match original.kind() {
                crate::event::EventKind::Acquire(lock) => {
                    *acquired.entry((original.thread(), lock)).or_insert(0) += 1;
                }
                crate::event::EventKind::Release(lock) => {
                    let counter = acquired.entry((original.thread(), lock)).or_insert(0);
                    if *counter == 0 {
                        continue; // matching acquire is outside the window
                    }
                    *counter -= 1;
                }
                _ => {}
            }
            let new_id = EventId::new(events.len() as u32);
            events.push(Event::new(
                new_id,
                original.thread(),
                original.kind(),
                original.location(),
            ));
            mapping.push(original.id());
        }
        let trace = Trace::from_parts(
            events,
            self.thread_names.clone(),
            self.lock_names.clone(),
            self.var_names.clone(),
            self.location_names.clone(),
        );
        (trace, mapping)
    }

    /// Like [`Trace::subtrace`], but re-establishes the lock context at the
    /// window boundary: for every thread, the locks it already holds at
    /// `start` (as computed by the caller, e.g. with
    /// [`lockctx::LockContext`](crate::lockctx::LockContext)) are re-acquired
    /// by synthetic events at the beginning of the window, outermost first.
    /// Releases inside the window then match those synthetic acquires, so no
    /// event of the window has to be dropped and accesses that are protected
    /// in the full trace remain protected in the window view.
    ///
    /// The returned mapping has `None` for the synthetic acquire events and
    /// `Some(original_id)` for real window events.
    pub fn windowed_subtrace(
        &self,
        start: usize,
        end: usize,
        held_at_start: &[(ThreadId, Vec<LockId>)],
    ) -> (Trace, Vec<Option<EventId>>) {
        let end = end.min(self.events.len());
        let start = start.min(end);
        let (mut trace, mapping) = Trace::assemble_window(&self.events[start..end], held_at_start);
        trace.thread_names = self.thread_names.clone();
        trace.lock_names = self.lock_names.clone();
        trace.var_names = self.var_names.clone();
        trace.location_names = self.location_names.clone();
        (trace, mapping)
    }

    /// Assembles a standalone window [`Trace`] (fresh dense event ids, no
    /// interned names) from a slice of buffered events, re-establishing the
    /// lock context at the window boundary exactly like
    /// [`Trace::windowed_subtrace`].  This is the streaming counterpart used
    /// by windowed detectors that buffer events instead of holding a full
    /// trace; the returned mapping has `None` for the synthetic boundary
    /// acquires and `Some(original_id)` for real window events.
    pub fn assemble_window(
        window: &[Event],
        held_at_start: &[(ThreadId, Vec<LockId>)],
    ) -> (Trace, Vec<Option<EventId>>) {
        let mut events = Vec::with_capacity(window.len());
        let mut mapping = Vec::with_capacity(window.len());
        for &(thread, ref locks) in held_at_start {
            for &lock in locks {
                let new_id = EventId::new(events.len() as u32);
                events.push(Event::new(
                    new_id,
                    thread,
                    crate::event::EventKind::Acquire(lock),
                    Location::UNKNOWN,
                ));
                mapping.push(None);
            }
        }
        for original in window {
            let new_id = EventId::new(events.len() as u32);
            events.push(Event::new(
                new_id,
                original.thread(),
                original.kind(),
                original.location(),
            ));
            mapping.push(Some(original.id()));
        }
        let trace = Trace::from_parts(events, Vec::new(), Vec::new(), Vec::new(), Vec::new());
        (trace, mapping)
    }

    /// Returns the pairs `(i, j)` with `i < j` of conflicting access events.
    ///
    /// This is quadratic and intended for tests and small reference
    /// computations (the CP closure, reordering witnesses), not for the
    /// streaming detectors.
    pub fn conflicting_pairs(&self) -> Vec<(EventId, EventId)> {
        let mut pairs = Vec::new();
        for (i, first) in self.events.iter().enumerate() {
            if !first.kind().is_access() {
                continue;
            }
            for second in &self.events[i + 1..] {
                if first.conflicts_with(second) {
                    pairs.push((first.id(), second.id()));
                }
            }
        }
        pairs
    }

    /// Internal constructor used by the builder and parsers.
    pub(crate) fn from_parts(
        events: Vec<Event>,
        thread_names: Vec<String>,
        lock_names: Vec<String>,
        var_names: Vec<String>,
        location_names: Vec<String>,
    ) -> Self {
        Trace { events, thread_names, lock_names, var_names, location_names }
    }

    /// Renders a human-readable table of the trace, one column per thread,
    /// mirroring the figures in the paper.
    pub fn to_table(&self) -> String {
        let threads = self.num_threads();
        let width = 12;
        let mut out = String::new();
        out.push_str("     ");
        for t in 0..threads {
            let name = self
                .thread_name(ThreadId::new(t as u32))
                .map(str::to_owned)
                .unwrap_or_else(|| format!("T{t}"));
            out.push_str(&format!("{name:width$}"));
        }
        out.push('\n');
        for (i, event) in self.events.iter().enumerate() {
            out.push_str(&format!("{:>4} ", i + 1));
            for t in 0..threads {
                if event.thread().index() == t {
                    out.push_str(&format!("{:width$}", event.kind().to_string()));
                } else {
                    out.push_str(&" ".repeat(width));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl Index<EventId> for Trace {
    type Output = Event;

    fn index(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }
}

impl Index<usize> for Trace {
    type Output = Event;

    fn index(&self, index: usize) -> &Event {
        &self.events[index]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::TraceBuilder;

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        b.acquire(t1, l);
        b.write(t1, x);
        b.release(t1, l);
        b.acquire(t2, l);
        b.read(t2, x);
        b.release(t2, l);
        b.finish()
    }

    #[test]
    fn len_and_indexing() {
        let trace = small_trace();
        assert_eq!(trace.len(), 6);
        assert!(!trace.is_empty());
        assert_eq!(trace[0].kind(), EventKind::Acquire(LockId::new(0)));
        assert_eq!(trace[EventId::new(4)].kind(), EventKind::Read(VarId::new(0)));
        assert_eq!(trace.get(EventId::new(99)), None);
    }

    #[test]
    fn names_are_interned() {
        let trace = small_trace();
        assert_eq!(trace.num_threads(), 2);
        assert_eq!(trace.num_locks(), 1);
        assert_eq!(trace.num_variables(), 1);
        assert_eq!(trace.thread_name(ThreadId::new(0)), Some("t1"));
        assert_eq!(trace.lock_name(LockId::new(0)), Some("l"));
        assert_eq!(trace.variable_name(VarId::new(0)), Some("x"));
        assert_eq!(trace.thread_name(ThreadId::new(9)), None);
    }

    #[test]
    fn projection_filters_by_thread() {
        let trace = small_trace();
        let p1 = trace.projection(ThreadId::new(0));
        let p2 = trace.projection(ThreadId::new(1));
        assert_eq!(p1, vec![EventId::new(0), EventId::new(1), EventId::new(2)]);
        assert_eq!(p2, vec![EventId::new(3), EventId::new(4), EventId::new(5)]);
    }

    #[test]
    fn active_threads_lists_threads_with_events() {
        let trace = small_trace();
        assert_eq!(trace.active_threads(), vec![ThreadId::new(0), ThreadId::new(1)]);
    }

    #[test]
    fn conflicting_pairs_finds_cross_thread_write_read() {
        let trace = small_trace();
        let pairs = trace.conflicting_pairs();
        assert_eq!(pairs, vec![(EventId::new(1), EventId::new(4))]);
    }

    #[test]
    fn subtrace_remaps_ids_and_drops_unmatched_releases() {
        let trace = small_trace();
        // Window [2, 6): starts with t1's rel(l) whose acquire is outside.
        let (sub, mapping) = trace.subtrace(2, 6);
        assert!(sub.validate().is_ok());
        // The unmatched release is dropped; the remaining 3 events are kept.
        assert_eq!(sub.len(), 3);
        assert_eq!(mapping.len(), 3);
        assert_eq!(mapping[0], EventId::new(3));
        assert_eq!(sub[0].id(), EventId::new(0));
        assert_eq!(sub[0].kind(), trace[3].kind());
        // Names are carried over.
        assert_eq!(sub.thread_name(ThreadId::new(1)), Some("t2"));
        // Full-range subtrace is the identity (no unmatched releases).
        let (full, full_map) = trace.subtrace(0, trace.len());
        assert_eq!(full.len(), trace.len());
        assert_eq!(full_map.len(), trace.len());
    }

    #[test]
    fn windowed_subtrace_reestablishes_lock_context() {
        let trace = small_trace();
        // Window [1, 3): t1's w(x) and rel(l); t1 holds l at the boundary.
        let held = vec![(ThreadId::new(0), vec![LockId::new(0)])];
        let (sub, mapping) = trace.windowed_subtrace(1, 3, &held);
        assert!(sub.validate().is_ok());
        assert_eq!(sub.len(), 3, "synthetic acquire + two real events");
        assert!(sub[0].kind().is_acquire());
        assert_eq!(mapping[0], None);
        assert_eq!(mapping[1], Some(EventId::new(1)));
        assert_eq!(sub[2].kind(), trace[2].kind());
        // Without held locks the window would have had to drop the release.
        let (plain, _) = trace.subtrace(1, 3);
        assert_eq!(plain.len(), 1);
    }

    #[test]
    fn window_slices_events() {
        let trace = small_trace();
        let window = trace.window(2, 4);
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].id(), EventId::new(2));
        assert!(trace.window(5, 100).len() == 1);
        assert!(trace.window(10, 2).is_empty());
    }

    #[test]
    fn display_and_table_render() {
        let trace = small_trace();
        let text = trace.to_string();
        assert!(text.contains("acq(L0)"));
        let table = trace.to_table();
        assert!(table.contains("t1"));
        assert!(table.contains("w(x0)"));
    }

    #[test]
    fn iteration_visits_all_events() {
        let trace = small_trace();
        assert_eq!(trace.iter().count(), 6);
        assert_eq!((&trace).into_iter().count(), 6);
    }
}
