//! Name resolution: one trait over every source of interned names.
//!
//! A [`Trace`] interns names at build time; the streaming readers intern
//! them on the fly into [`StreamNames`](crate::format::StreamNames).  Both
//! assign dense per-trace ids, so ids from *different* traces (or different
//! readers over the same file) are not comparable — but the names are.  The
//! [`NameResolver`] trait abstracts over every id→name table in the
//! workspace so consumers that need cross-trace identity (the engine's
//! mergeable `Outcome`, the multi-shard driver) can resolve ids to names at
//! the boundary of one run and compare by name from then on.

use crate::format::StreamNames;
use crate::ids::{Location, LockId, VarId};
use crate::trace::Trace;
use rapid_vc::ThreadId;

/// Resolves interned per-trace ids back to the names they intern.
///
/// Implemented by [`Trace`] (builder-time interning) and
/// [`StreamNames`](crate::format::StreamNames) (reader-time interning).
/// The `*_label` helpers never fail: ids without a recorded name (e.g. the
/// unknown location) fall back to the id's own display form, which is stable
/// within one resolver.
pub trait NameResolver {
    /// Looks up a thread's name.
    fn thread_name(&self, thread: ThreadId) -> Option<&str>;

    /// Looks up a lock's name.
    fn lock_name(&self, lock: LockId) -> Option<&str>;

    /// Looks up a variable's name.
    fn variable_name(&self, variable: VarId) -> Option<&str>;

    /// Looks up a program location's name.
    fn location_name(&self, location: Location) -> Option<&str>;

    /// The variable's name, falling back to the id's display form.
    fn variable_label(&self, variable: VarId) -> String {
        self.variable_name(variable).map(str::to_owned).unwrap_or_else(|| variable.to_string())
    }

    /// The location's name, falling back to the id's display form.
    fn location_label(&self, location: Location) -> String {
        self.location_name(location).map(str::to_owned).unwrap_or_else(|| location.to_string())
    }
}

impl NameResolver for Trace {
    fn thread_name(&self, thread: ThreadId) -> Option<&str> {
        Trace::thread_name(self, thread)
    }

    fn lock_name(&self, lock: LockId) -> Option<&str> {
        Trace::lock_name(self, lock)
    }

    fn variable_name(&self, variable: VarId) -> Option<&str> {
        Trace::variable_name(self, variable)
    }

    fn location_name(&self, location: Location) -> Option<&str> {
        Trace::location_name(self, location)
    }
}

impl NameResolver for StreamNames {
    fn thread_name(&self, thread: ThreadId) -> Option<&str> {
        StreamNames::thread_name(self, thread)
    }

    fn lock_name(&self, lock: LockId) -> Option<&str> {
        StreamNames::lock_name(self, lock)
    }

    fn variable_name(&self, variable: VarId) -> Option<&str> {
        StreamNames::variable_name(self, variable)
    }

    fn location_name(&self, location: Location) -> Option<&str> {
        StreamNames::location_name(self, location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::format;

    fn resolver_smoke(names: &dyn NameResolver) {
        assert_eq!(names.thread_name(ThreadId::new(0)), Some("t1"));
        assert_eq!(names.variable_name(VarId::new(0)), Some("x"));
        assert_eq!(names.variable_label(VarId::new(0)), "x");
        assert_eq!(names.location_name(Location::new(0)), Some("A.java:1"));
        assert_eq!(names.location_label(Location::new(0)), "A.java:1");
    }

    #[test]
    fn trace_and_stream_names_resolve_identically() {
        let mut builder = TraceBuilder::new();
        let t1 = builder.thread("t1");
        let x = builder.variable("x");
        builder.at("A.java:1");
        builder.write(t1, x);
        let trace = builder.finish();
        resolver_smoke(&trace);

        let text = format::write_std(&trace);
        let mut reader = format::StreamReader::std(text.as_bytes());
        assert!(reader.by_ref().all(|event| event.is_ok()));
        resolver_smoke(reader.names());
    }

    #[test]
    fn labels_fall_back_to_id_display() {
        let trace = TraceBuilder::new().finish();
        let missing_var = VarId::new(7);
        let missing_location = Location::new(9);
        assert_eq!(NameResolver::variable_name(&trace, missing_var), None);
        assert_eq!(NameResolver::variable_label(&trace, missing_var), missing_var.to_string());
        assert_eq!(
            NameResolver::location_label(&trace, missing_location),
            missing_location.to_string()
        );
    }
}
