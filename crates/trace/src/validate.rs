//! Trace well-formedness: lock semantics, well-nestedness, fork/join sanity.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rapid_vc::ThreadId;

use crate::event::{EventId, EventKind};
use crate::ids::LockId;
use crate::trace::Trace;

/// Why a sequence of events is not a valid trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    /// `acq(l)` while `l` is already held by some thread (possibly the same
    /// one — the model has no reentrant locks).  Violates *lock semantics*.
    LockAlreadyHeld {
        /// The lock being re-acquired.
        lock: LockId,
        /// The thread currently holding it.
        holder: ThreadId,
    },
    /// `rel(l)` by a thread that does not hold `l`.
    ReleaseWithoutAcquire {
        /// The lock being released.
        lock: LockId,
    },
    /// `rel(l)` while a more recently acquired lock is still held — critical
    /// sections must be properly nested (*well-nestedness*).
    UnnestedRelease {
        /// The lock being released out of order.
        lock: LockId,
        /// The lock on top of the thread's lock stack.
        innermost: LockId,
    },
    /// `fork(u)` where thread `u` has already performed an event.
    ForkAfterChildStarted {
        /// The child thread.
        child: ThreadId,
    },
    /// Thread `u` performs an event after some thread executed `join(u)`.
    EventAfterJoin {
        /// The joined thread that kept running.
        child: ThreadId,
    },
    /// `fork(u)` or `join(u)` where `u` is the forking/joining thread itself.
    SelfThreadOp,
}

/// A well-formedness violation, located at a specific event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// The offending event.
    pub event: EventId,
    /// The thread performing the offending event.
    pub thread: ThreadId,
    /// The specific violation.
    pub kind: ValidationErrorKind,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace at {} ({}): ", self.event, self.thread)?;
        match &self.kind {
            ValidationErrorKind::LockAlreadyHeld { lock, holder } => {
                write!(f, "acquire of {lock} which is already held by {holder}")
            }
            ValidationErrorKind::ReleaseWithoutAcquire { lock } => {
                write!(f, "release of {lock} which the thread does not hold")
            }
            ValidationErrorKind::UnnestedRelease { lock, innermost } => {
                write!(f, "release of {lock} while {innermost} is still held (not well nested)")
            }
            ValidationErrorKind::ForkAfterChildStarted { child } => {
                write!(f, "fork of {child} which has already performed events")
            }
            ValidationErrorKind::EventAfterJoin { child } => {
                write!(f, "{child} performs an event after having been joined")
            }
            ValidationErrorKind::SelfThreadOp => write!(f, "thread forks or joins itself"),
        }
    }
}

impl Error for TraceError {}

/// Checks the two trace axioms of §2.1 (lock semantics, well-nestedness) plus
/// fork/join sanity.  Locks still held at the end of the trace are allowed:
/// the paper explicitly permits critical sections whose matching release is
/// absent.
pub fn validate(trace: &Trace) -> Result<(), TraceError> {
    let mut holder: HashMap<LockId, ThreadId> = HashMap::new();
    let mut stacks: HashMap<ThreadId, Vec<LockId>> = HashMap::new();
    let mut started: HashMap<ThreadId, bool> = HashMap::new();
    let mut joined: HashMap<ThreadId, bool> = HashMap::new();

    for event in trace.events() {
        let thread = event.thread();
        let fail = |kind| Err(TraceError { event: event.id(), thread, kind });

        if joined.get(&thread).copied().unwrap_or(false) {
            return fail(ValidationErrorKind::EventAfterJoin { child: thread });
        }
        started.insert(thread, true);

        match event.kind() {
            EventKind::Acquire(lock) => {
                if let Some(&current) = holder.get(&lock) {
                    return fail(ValidationErrorKind::LockAlreadyHeld { lock, holder: current });
                }
                holder.insert(lock, thread);
                stacks.entry(thread).or_default().push(lock);
            }
            EventKind::Release(lock) => {
                match holder.get(&lock) {
                    Some(&current) if current == thread => {}
                    _ => return fail(ValidationErrorKind::ReleaseWithoutAcquire { lock }),
                }
                let stack = stacks.entry(thread).or_default();
                match stack.last() {
                    Some(&innermost) if innermost == lock => {
                        stack.pop();
                        holder.remove(&lock);
                    }
                    Some(&innermost) => {
                        return fail(ValidationErrorKind::UnnestedRelease { lock, innermost })
                    }
                    None => return fail(ValidationErrorKind::ReleaseWithoutAcquire { lock }),
                }
            }
            EventKind::Fork(child) => {
                if child == thread {
                    return fail(ValidationErrorKind::SelfThreadOp);
                }
                if started.get(&child).copied().unwrap_or(false) {
                    return fail(ValidationErrorKind::ForkAfterChildStarted { child });
                }
            }
            EventKind::Join(child) => {
                if child == thread {
                    return fail(ValidationErrorKind::SelfThreadOp);
                }
                joined.insert(child, true);
            }
            EventKind::Read(_) | EventKind::Write(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    #[test]
    fn valid_nested_critical_sections() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let m = b.lock("m");
        let x = b.variable("x");
        b.acquire(t, l);
        b.acquire(t, m);
        b.write(t, x);
        b.release(t, m);
        b.release(t, l);
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn unreleased_lock_at_end_is_allowed() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let x = b.variable("x");
        b.acquire(t, l);
        b.write(t, x);
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn double_acquire_is_rejected() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        b.acquire(t1, l);
        b.acquire(t2, l);
        let err = b.finish().validate().unwrap_err();
        assert_eq!(err.event, EventId::new(1));
        assert!(matches!(err.kind, ValidationErrorKind::LockAlreadyHeld { .. }));
        assert!(err.to_string().contains("already held"));
    }

    #[test]
    fn reentrant_acquire_is_rejected() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        b.acquire(t, l);
        b.acquire(t, l);
        let err = b.finish().validate().unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::LockAlreadyHeld { .. }));
    }

    #[test]
    fn release_without_acquire_is_rejected() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        b.release(t, l);
        let err = b.finish().validate().unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::ReleaseWithoutAcquire { .. }));
    }

    #[test]
    fn release_by_non_holder_is_rejected() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        b.acquire(t1, l);
        b.release(t2, l);
        let err = b.finish().validate().unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::ReleaseWithoutAcquire { .. }));
    }

    #[test]
    fn unnested_release_is_rejected() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let m = b.lock("m");
        b.acquire(t, l);
        b.acquire(t, m);
        b.release(t, l); // should release m first
        let err = b.finish().validate().unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::UnnestedRelease { .. }));
        assert!(err.to_string().contains("not well nested"));
    }

    #[test]
    fn fork_after_child_started_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let child = b.thread("child");
        let x = b.variable("x");
        b.write(child, x);
        b.fork(main, child);
        let err = b.finish().validate().unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::ForkAfterChildStarted { .. }));
    }

    #[test]
    fn event_after_join_is_rejected() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let child = b.thread("child");
        let x = b.variable("x");
        b.fork(main, child);
        b.write(child, x);
        b.join(main, child);
        b.write(child, x);
        let err = b.finish().validate().unwrap_err();
        assert!(matches!(err.kind, ValidationErrorKind::EventAfterJoin { .. }));
    }

    #[test]
    fn self_fork_is_rejected() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        b.fork(t, t);
        let err = b.finish().validate().unwrap_err();
        assert_eq!(err.kind, ValidationErrorKind::SelfThreadOp);
    }

    #[test]
    fn empty_trace_is_valid() {
        assert!(Trace::new().validate().is_ok());
    }
}
