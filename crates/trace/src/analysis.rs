//! Precomputed structural information about a trace.
//!
//! [`TraceIndex`] computes, in one pass, the structural facts the offline
//! algorithms (CP closure, the MCM window search, the reordering checker)
//! need repeatedly: matching acquire/release events, enclosing critical
//! sections, per-critical-section access sets, thread order links and the
//! write each read observes.

use std::collections::HashMap;

use rapid_vc::ThreadId;

use crate::event::{EventId, EventKind};
use crate::ids::{LockId, VarId};
use crate::trace::Trace;

/// Precomputed per-event structural data for a trace.
#[derive(Debug, Clone)]
pub struct TraceIndex {
    /// For each acquire event index: the matching release, if present.
    match_release: Vec<Option<EventId>>,
    /// For each release event index: the matching acquire.
    match_acquire: Vec<Option<EventId>>,
    /// For each event index: acquire events of the critical sections that
    /// contain it, outermost first (including the event itself when it is an
    /// acquire/release of that section).
    enclosing: Vec<Vec<EventId>>,
    /// For each acquire event index: variables read in its critical section.
    cs_reads: HashMap<EventId, Vec<VarId>>,
    /// For each acquire event index: variables written in its critical section.
    cs_writes: HashMap<EventId, Vec<VarId>>,
    /// For each read event index: the last write to the same variable that
    /// precedes it in trace order, if any.
    read_from: Vec<Option<EventId>>,
    /// For each event index: the previous event of the same thread.
    prev_in_thread: Vec<Option<EventId>>,
    /// For each event index: the next event of the same thread.
    next_in_thread: Vec<Option<EventId>>,
}

impl TraceIndex {
    /// Builds the index for `trace` in `O(N · depth + N)` time.
    pub fn build(trace: &Trace) -> Self {
        let n = trace.len();
        let mut match_release = vec![None; n];
        let mut match_acquire = vec![None; n];
        let mut enclosing = vec![Vec::new(); n];
        let mut cs_reads: HashMap<EventId, Vec<VarId>> = HashMap::new();
        let mut cs_writes: HashMap<EventId, Vec<VarId>> = HashMap::new();
        let mut read_from = vec![None; n];
        let mut prev_in_thread = vec![None; n];
        let mut next_in_thread = vec![None; n];

        // Per-thread stack of open acquires.
        let mut open: HashMap<ThreadId, Vec<EventId>> = HashMap::new();
        // Last write per variable.
        let mut last_write: HashMap<VarId, EventId> = HashMap::new();
        // Last event per thread.
        let mut last_of_thread: HashMap<ThreadId, EventId> = HashMap::new();

        for event in trace.events() {
            let id = event.id();
            let index = id.index();
            let thread = event.thread();

            if let Some(&prev) = last_of_thread.get(&thread) {
                prev_in_thread[index] = Some(prev);
                next_in_thread[prev.index()] = Some(id);
            }
            last_of_thread.insert(thread, id);

            let stack = open.entry(thread).or_default();
            match event.kind() {
                EventKind::Acquire(_) => {
                    stack.push(id);
                    enclosing[index] = stack.clone();
                    cs_reads.entry(id).or_default();
                    cs_writes.entry(id).or_default();
                }
                EventKind::Release(_) => {
                    enclosing[index] = stack.clone();
                    if let Some(acquire) = stack.pop() {
                        match_release[acquire.index()] = Some(id);
                        match_acquire[index] = Some(acquire);
                    }
                }
                EventKind::Read(var) => {
                    enclosing[index] = stack.clone();
                    read_from[index] = last_write.get(&var).copied();
                    for &acquire in stack.iter() {
                        let reads = cs_reads.entry(acquire).or_default();
                        if !reads.contains(&var) {
                            reads.push(var);
                        }
                    }
                }
                EventKind::Write(var) => {
                    enclosing[index] = stack.clone();
                    last_write.insert(var, id);
                    for &acquire in stack.iter() {
                        let writes = cs_writes.entry(acquire).or_default();
                        if !writes.contains(&var) {
                            writes.push(var);
                        }
                    }
                }
                EventKind::Fork(_) | EventKind::Join(_) => {
                    enclosing[index] = stack.clone();
                }
            }
        }

        TraceIndex {
            match_release,
            match_acquire,
            enclosing,
            cs_reads,
            cs_writes,
            read_from,
            prev_in_thread,
            next_in_thread,
        }
    }

    /// `match(a)` for an acquire event: its matching release, if present.
    pub fn matching_release(&self, acquire: EventId) -> Option<EventId> {
        self.match_release.get(acquire.index()).copied().flatten()
    }

    /// `match(r)` for a release event: its matching acquire.
    pub fn matching_acquire(&self, release: EventId) -> Option<EventId> {
        self.match_acquire.get(release.index()).copied().flatten()
    }

    /// Acquire events of the critical sections containing `event`, outermost
    /// first.  An acquire/release is contained in its own critical section.
    pub fn enclosing_acquires(&self, event: EventId) -> &[EventId] {
        &self.enclosing[event.index()]
    }

    /// Locks whose critical sections contain `event` (`e ∈ ℓ`), outermost
    /// first.
    pub fn held_locks(&self, trace: &Trace, event: EventId) -> Vec<LockId> {
        self.enclosing_acquires(event)
            .iter()
            .filter_map(|&acquire| trace.event(acquire).kind().lock())
            .collect()
    }

    /// Returns true when `event` lies inside some critical section over
    /// `lock` (`e ∈ ℓ`).
    pub fn inside_lock(&self, trace: &Trace, event: EventId, lock: LockId) -> bool {
        self.held_locks(trace, event).contains(&lock)
    }

    /// Variables read inside the critical section started by `acquire`.
    pub fn section_reads(&self, acquire: EventId) -> &[VarId] {
        self.cs_reads.get(&acquire).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Variables written inside the critical section started by `acquire`.
    pub fn section_writes(&self, acquire: EventId) -> &[VarId] {
        self.cs_writes.get(&acquire).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Event ids of the events inside the critical section `(acquire,
    /// match(acquire))` performed by the acquiring thread, including the
    /// acquire and (if present) the release.
    pub fn section_events(&self, trace: &Trace, acquire: EventId) -> Vec<EventId> {
        let thread = trace.event(acquire).thread();
        let end = self.matching_release(acquire).map(EventId::index).unwrap_or(trace.len() - 1);
        (acquire.index()..=end)
            .map(|index| EventId::new(index as u32))
            .filter(|&id| trace.event(id).thread() == thread)
            .collect()
    }

    /// The write event each read observes (the last same-variable write
    /// before it in trace order), if any.
    pub fn read_from(&self, read: EventId) -> Option<EventId> {
        self.read_from.get(read.index()).copied().flatten()
    }

    /// The previous event performed by the same thread.
    pub fn prev_in_thread(&self, event: EventId) -> Option<EventId> {
        self.prev_in_thread.get(event.index()).copied().flatten()
    }

    /// The next event performed by the same thread.
    pub fn next_in_thread(&self, event: EventId) -> Option<EventId> {
        self.next_in_thread.get(event.index()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    fn sample() -> (Trace, Vec<EventId>) {
        // t1: acq(l) r(x) w(y) acq(m) w(x) rel(m) rel(l)
        // t2: r(y)
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let m = b.lock("m");
        let x = b.variable("x");
        let y = b.variable("y");
        let ids = vec![
            b.acquire(t1, l), // 0
            b.read(t1, x),    // 1
            b.write(t1, y),   // 2
            b.acquire(t1, m), // 3
            b.write(t1, x),   // 4
            b.release(t1, m), // 5
            b.release(t1, l), // 6
            b.read(t2, y),    // 7
        ];
        (b.finish(), ids)
    }

    #[test]
    fn matching_acquire_release() {
        let (trace, ids) = sample();
        let index = TraceIndex::build(&trace);
        assert_eq!(index.matching_release(ids[0]), Some(ids[6]));
        assert_eq!(index.matching_release(ids[3]), Some(ids[5]));
        assert_eq!(index.matching_acquire(ids[6]), Some(ids[0]));
        assert_eq!(index.matching_acquire(ids[5]), Some(ids[3]));
        assert_eq!(index.matching_release(ids[1]), None, "non-acquire has no match");
    }

    #[test]
    fn enclosing_sections_are_tracked() {
        let (trace, ids) = sample();
        let index = TraceIndex::build(&trace);
        assert_eq!(index.enclosing_acquires(ids[1]), &[ids[0]]);
        assert_eq!(index.enclosing_acquires(ids[4]), &[ids[0], ids[3]]);
        assert_eq!(index.enclosing_acquires(ids[7]), &[] as &[EventId]);
        assert_eq!(index.held_locks(&trace, ids[4]), vec![LockId::new(0), LockId::new(1)]);
        assert!(index.inside_lock(&trace, ids[4], LockId::new(0)));
        assert!(!index.inside_lock(&trace, ids[7], LockId::new(0)));
    }

    #[test]
    fn section_access_sets() {
        let (trace, ids) = sample();
        let index = TraceIndex::build(&trace);
        let x = VarId::new(0);
        let y = VarId::new(1);
        assert_eq!(index.section_reads(ids[0]), &[x]);
        let mut outer_writes = index.section_writes(ids[0]).to_vec();
        outer_writes.sort();
        assert_eq!(outer_writes, vec![x, y]);
        assert_eq!(index.section_writes(ids[3]), &[x]);
        assert!(index.section_reads(ids[3]).is_empty());
        let _ = trace;
    }

    #[test]
    fn section_events_span_acquire_to_release() {
        let (trace, ids) = sample();
        let index = TraceIndex::build(&trace);
        assert_eq!(index.section_events(&trace, ids[3]), vec![ids[3], ids[4], ids[5]]);
        assert_eq!(index.section_events(&trace, ids[0]).len(), 7);
    }

    #[test]
    fn unmatched_acquire_section_extends_to_trace_end() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let x = b.variable("x");
        let acq = b.acquire(t, l);
        let write = b.write(t, x);
        let trace = b.finish();
        let index = TraceIndex::build(&trace);
        assert_eq!(index.matching_release(acq), None);
        assert_eq!(index.section_events(&trace, acq), vec![acq, write]);
        assert_eq!(index.section_writes(acq), &[x]);
    }

    #[test]
    fn read_from_points_at_last_write() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        let w1 = b.write(t1, x);
        let w2 = b.write(t2, x);
        let r = b.read(t1, x);
        let r_before = {
            let mut b2 = TraceBuilder::new();
            let t = b2.thread("t");
            let x2 = b2.variable("x");
            let r = b2.read(t, x2);
            (b2.finish(), r)
        };
        let trace = b.finish();
        let index = TraceIndex::build(&trace);
        assert_eq!(index.read_from(r), Some(w2));
        assert_ne!(index.read_from(r), Some(w1));

        let (trace2, r2) = r_before;
        let index2 = TraceIndex::build(&trace2);
        assert_eq!(index2.read_from(r2), None, "read before any write observes the initial value");
    }

    #[test]
    fn thread_order_links() {
        let (trace, ids) = sample();
        let index = TraceIndex::build(&trace);
        assert_eq!(index.prev_in_thread(ids[0]), None);
        assert_eq!(index.prev_in_thread(ids[1]), Some(ids[0]));
        assert_eq!(index.next_in_thread(ids[1]), Some(ids[2]));
        assert_eq!(index.next_in_thread(ids[6]), None);
        assert_eq!(index.prev_in_thread(ids[7]), None);
        let _ = trace;
    }
}
