//! Correct reorderings, race witnesses and deadlock witnesses.
//!
//! A trace `σ'` is a *correct reordering* of `σ` (§2.1) when
//!
//! 1. for every thread `t`, `σ'|t` is a prefix of `σ|t`, and
//! 2. every read event in `σ'` observes the same last write as it did in `σ`.
//!
//! In addition `σ'` must itself be a trace (lock semantics hold).  A
//! *predictable race* is a correct reordering in which two conflicting events
//! are adjacent; a *predictable deadlock* is a correct reordering after which
//! a set of threads is mutually blocked on each other's locks.
//!
//! [`check_correct_reordering`] verifies the definition for a candidate
//! schedule; [`find_race_witness`] and [`find_deadlock_witness`] perform a
//! budget-bounded search over interleavings, used by tests to certify that
//! detector output on the paper's figure traces is genuinely predictable.

use std::collections::{HashMap, HashSet};

use rapid_vc::ThreadId;

use crate::analysis::TraceIndex;
use crate::event::{EventId, EventKind};
use crate::ids::{LockId, VarId};
use crate::trace::Trace;

/// Why a candidate schedule is not a correct reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReorderError {
    /// The schedule references an event id not present in the trace.
    UnknownEvent(EventId),
    /// The schedule lists an event twice.
    DuplicateEvent(EventId),
    /// Some thread's events do not form a prefix of its original projection.
    NotThreadPrefix {
        /// The offending thread.
        thread: ThreadId,
    },
    /// Lock semantics violated: an acquire of a lock that is already held.
    LockViolation {
        /// The offending acquire event.
        event: EventId,
        /// The lock involved.
        lock: LockId,
    },
    /// A release of a lock the thread does not hold.
    ReleaseViolation {
        /// The offending release event.
        event: EventId,
        /// The lock involved.
        lock: LockId,
    },
    /// A read observes a different last write than in the original trace.
    ReadObservesDifferentWrite {
        /// The read event.
        read: EventId,
        /// The write it observed in the original trace (`None` = initial value).
        expected: Option<EventId>,
        /// The write it observes in the candidate schedule.
        actual: Option<EventId>,
    },
}

impl std::fmt::Display for ReorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderError::UnknownEvent(event) => write!(f, "unknown event {event}"),
            ReorderError::DuplicateEvent(event) => write!(f, "event {event} scheduled twice"),
            ReorderError::NotThreadPrefix { thread } => {
                write!(f, "events of {thread} are not a prefix of its original projection")
            }
            ReorderError::LockViolation { event, lock } => {
                write!(f, "acquire {event} of {lock} while it is held")
            }
            ReorderError::ReleaseViolation { event, lock } => {
                write!(f, "release {event} of {lock} which is not held by the thread")
            }
            ReorderError::ReadObservesDifferentWrite { read, expected, actual } => {
                write!(f, "read {read} observes {actual:?} instead of {expected:?}")
            }
        }
    }
}

impl std::error::Error for ReorderError {}

/// Checks that `schedule` is a correct reordering of `trace`.
///
/// # Errors
///
/// Returns the first violated condition.
pub fn check_correct_reordering(
    trace: &Trace,
    index: &TraceIndex,
    schedule: &[EventId],
) -> Result<(), ReorderError> {
    let mut seen = HashSet::new();
    let mut positions: HashMap<ThreadId, usize> = HashMap::new();
    let mut projections: HashMap<ThreadId, Vec<EventId>> = HashMap::new();
    let mut holder: HashMap<LockId, ThreadId> = HashMap::new();
    let mut last_write: HashMap<VarId, EventId> = HashMap::new();

    for &id in schedule {
        let event = match trace.get(id) {
            Some(event) => event,
            None => return Err(ReorderError::UnknownEvent(id)),
        };
        if !seen.insert(id) {
            return Err(ReorderError::DuplicateEvent(id));
        }
        let thread = event.thread();
        let projection = projections.entry(thread).or_insert_with(|| trace.projection(thread));
        let position = positions.entry(thread).or_insert(0);
        if projection.get(*position) != Some(&id) {
            return Err(ReorderError::NotThreadPrefix { thread });
        }
        *position += 1;

        match event.kind() {
            EventKind::Acquire(lock) => {
                if holder.contains_key(&lock) {
                    return Err(ReorderError::LockViolation { event: id, lock });
                }
                holder.insert(lock, thread);
            }
            EventKind::Release(lock) => match holder.get(&lock) {
                Some(&current) if current == thread => {
                    holder.remove(&lock);
                }
                _ => return Err(ReorderError::ReleaseViolation { event: id, lock }),
            },
            EventKind::Read(var) => {
                let expected = index.read_from(id);
                let actual = last_write.get(&var).copied();
                if expected != actual {
                    return Err(ReorderError::ReadObservesDifferentWrite {
                        read: id,
                        expected,
                        actual,
                    });
                }
            }
            EventKind::Write(var) => {
                last_write.insert(var, id);
            }
            EventKind::Fork(_) | EventKind::Join(_) => {}
        }
    }
    Ok(())
}

/// Returns true when `schedule` is a correct reordering of `trace` that ends
/// with the two conflicting events `e1` and `e2` adjacent (in either order),
/// i.e. a witness that `(e1, e2)` is a predictable race.
pub fn check_race_witness(
    trace: &Trace,
    index: &TraceIndex,
    schedule: &[EventId],
    e1: EventId,
    e2: EventId,
) -> bool {
    if schedule.len() < 2 {
        return false;
    }
    if check_correct_reordering(trace, index, schedule).is_err() {
        return false;
    }
    let last = schedule[schedule.len() - 1];
    let before_last = schedule[schedule.len() - 2];
    let adjacent = (last == e1 && before_last == e2) || (last == e2 && before_last == e1);
    adjacent && trace.event(e1).conflicts_with(trace.event(e2))
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SearchState {
    /// Number of events of each thread already scheduled.
    positions: Vec<usize>,
    /// Last write scheduled per variable (only variables written so far).
    last_writes: std::collections::BTreeMap<VarId, EventId>,
}

/// One node of the iterative race-witness search.
struct RaceFrame {
    state: SearchState,
    holder: HashMap<LockId, ThreadId>,
    candidates: Vec<(usize, EventId)>,
    next: usize,
}

/// Outcome of entering a race-search node.
enum RaceStep {
    /// A witness schedule was completed.
    Success(Vec<EventId>),
    /// The node has children to explore.
    Expand(RaceFrame),
    /// Budget exhausted or state already visited.
    Pruned,
}

struct Searcher<'a> {
    trace: &'a Trace,
    index: &'a TraceIndex,
    projections: Vec<Vec<EventId>>,
    budget: usize,
    expanded: usize,
    visited: HashSet<SearchState>,
}

impl<'a> Searcher<'a> {
    fn new(trace: &'a Trace, index: &'a TraceIndex, budget: usize) -> Self {
        let threads = trace
            .active_threads()
            .iter()
            .map(|thread| thread.index() + 1)
            .max()
            .unwrap_or(0)
            .max(trace.num_threads());
        let projections = (0..threads).map(|t| trace.projection(ThreadId::new(t as u32))).collect();
        Searcher { trace, index, projections, budget, expanded: 0, visited: HashSet::new() }
    }

    fn initial_state(&self) -> SearchState {
        SearchState {
            positions: vec![0; self.projections.len()],
            last_writes: std::collections::BTreeMap::new(),
        }
    }

    fn held_locks(&self, state: &SearchState) -> HashMap<LockId, ThreadId> {
        // A lock is held by thread `t` iff `t`'s scheduled prefix acquires it
        // without releasing it.  Each thread's prefix is replayed into its own
        // balance so that another thread's completed critical section over the
        // same lock cannot clobber a still-held entry.
        let mut holder = HashMap::new();
        for (t, &position) in state.positions.iter().enumerate() {
            let mut open: Vec<LockId> = Vec::new();
            for &id in &self.projections[t][..position] {
                match self.trace.event(id).kind() {
                    EventKind::Acquire(lock) => open.push(lock),
                    EventKind::Release(lock) => {
                        if let Some(found) = open.iter().rposition(|&held| held == lock) {
                            open.remove(found);
                        }
                    }
                    _ => {}
                }
            }
            for lock in open {
                holder.insert(lock, ThreadId::new(t as u32));
            }
        }
        holder
    }

    /// The next unscheduled event of thread `t`, if any.
    fn next_event(&self, state: &SearchState, t: usize) -> Option<EventId> {
        self.projections[t].get(state.positions[t]).copied()
    }

    /// Whether `event` can be appended to the schedule in `state` without
    /// violating lock semantics or read-consistency.
    fn can_schedule(
        &self,
        state: &SearchState,
        holder: &HashMap<LockId, ThreadId>,
        event: EventId,
    ) -> bool {
        let thread = self.trace.event(event).thread();
        match self.trace.event(event).kind() {
            EventKind::Acquire(lock) => !holder.contains_key(&lock),
            EventKind::Release(lock) => holder.get(&lock) == Some(&thread),
            EventKind::Read(var) => {
                let expected = self.index.read_from(event);
                let actual = state.last_writes.get(&var).copied();
                expected == actual
            }
            _ => true,
        }
    }

    fn apply(&self, state: &SearchState, t: usize, event: EventId) -> SearchState {
        let mut next = state.clone();
        next.positions[t] += 1;
        if let EventKind::Write(var) = self.trace.event(event).kind() {
            next.last_writes.insert(var, event);
        }
        next
    }

    /// Entering a search node: prune on budget/revisit, report success when
    /// both racing events are next and co-enabled, otherwise hand back the
    /// node's frame (its candidate moves in exploration order).
    fn enter_race_state(
        &mut self,
        state: SearchState,
        schedule: &[EventId],
        e1: EventId,
        e2: EventId,
    ) -> RaceStep {
        if self.expanded >= self.budget {
            return RaceStep::Pruned;
        }
        self.expanded += 1;
        if !self.visited.insert(state.clone()) {
            return RaceStep::Pruned;
        }

        let holder = self.held_locks(&state);
        let t1 = self.trace.event(e1).thread().index();
        let t2 = self.trace.event(e2).thread().index();

        // Success: both racing events are next and co-enabled.
        if self.next_event(&state, t1) == Some(e1)
            && self.next_event(&state, t2) == Some(e2)
            && self.can_schedule(&state, &holder, e1)
        {
            // Schedule e1 then e2; e2 must stay schedulable after e1.
            let mid = self.apply(&state, t1, e1);
            let holder_mid = self.held_locks(&mid);
            if self.can_schedule(&mid, &holder_mid, e2) {
                let mut witness = schedule.to_vec();
                witness.push(e1);
                witness.push(e2);
                return RaceStep::Success(witness);
            }
        }

        // Explore schedulable events in original trace order first: the
        // original interleaving is itself a correct reordering, so this
        // greedy descent reaches co-enabled racing pairs without backtracking
        // whenever no reordering is actually needed.
        let mut candidates: Vec<(usize, EventId)> = (0..self.projections.len())
            .filter_map(|t| self.next_event(&state, t).map(|event| (t, event)))
            .filter(|&(_, event)| event != e1 && event != e2)
            .collect();
        candidates.sort_by_key(|&(_, event)| event);
        RaceStep::Expand(RaceFrame { state, holder, candidates, next: 0 })
    }

    /// Iterative (explicit-stack) depth-first search for a race witness.
    /// An explicit stack is required because windowed callers search traces
    /// of tens of thousands of events, where the greedy descent alone is
    /// deeper than the call stack allows.
    fn race_search(&mut self, e1: EventId, e2: EventId) -> Option<Vec<EventId>> {
        let mut schedule: Vec<EventId> = Vec::new();
        let mut stack: Vec<RaceFrame> = Vec::new();
        match self.enter_race_state(self.initial_state(), &schedule, e1, e2) {
            RaceStep::Success(witness) => return Some(witness),
            RaceStep::Expand(frame) => stack.push(frame),
            RaceStep::Pruned => return None,
        }
        while let Some(frame) = stack.last_mut() {
            if frame.next >= frame.candidates.len() {
                stack.pop();
                if !stack.is_empty() {
                    schedule.pop();
                }
                continue;
            }
            let (t, event) = frame.candidates[frame.next];
            frame.next += 1;
            if !self.trace_can_schedule(frame, event) {
                continue;
            }
            let next_state = {
                let frame = stack.last().expect("frame present");
                self.apply(&frame.state, t, event)
            };
            schedule.push(event);
            match self.enter_race_state(next_state, &schedule, e1, e2) {
                RaceStep::Success(witness) => return Some(witness),
                RaceStep::Expand(frame) => stack.push(frame),
                RaceStep::Pruned => {
                    schedule.pop();
                }
            }
        }
        None
    }

    /// `can_schedule` against a frame's cached holder map.
    fn trace_can_schedule(&self, frame: &RaceFrame, event: EventId) -> bool {
        let thread = self.trace.event(event).thread();
        match self.trace.event(event).kind() {
            EventKind::Acquire(lock) => !frame.holder.contains_key(&lock),
            EventKind::Release(lock) => frame.holder.get(&lock) == Some(&thread),
            EventKind::Read(var) => {
                let expected = self.index.read_from(event);
                let actual = frame.state.last_writes.get(&var).copied();
                expected == actual
            }
            _ => true,
        }
    }

    /// DFS for a state in which a set of ≥2 threads is mutually blocked:
    /// each one's next event acquires a lock held by another member.
    fn deadlock_dfs(
        &mut self,
        state: SearchState,
        schedule: &mut Vec<EventId>,
    ) -> Option<(Vec<EventId>, Vec<ThreadId>)> {
        if self.expanded >= self.budget {
            return None;
        }
        self.expanded += 1;
        if !self.visited.insert(state.clone()) {
            return None;
        }

        let holder = self.held_locks(&state);
        if let Some(cycle) = self.blocked_cycle(&state, &holder) {
            return Some((schedule.clone(), cycle));
        }

        for t in 0..self.projections.len() {
            let Some(event) = self.next_event(&state, t) else { continue };
            if !self.can_schedule(&state, &holder, event) {
                continue;
            }
            let next = self.apply(&state, t, event);
            schedule.push(event);
            if let Some(found) = self.deadlock_dfs(next, schedule) {
                return Some(found);
            }
            schedule.pop();
        }
        None
    }

    /// Finds a cycle of threads each waiting on a lock held by the next.
    fn blocked_cycle(
        &self,
        state: &SearchState,
        holder: &HashMap<LockId, ThreadId>,
    ) -> Option<Vec<ThreadId>> {
        // waiting_on[t] = thread holding the lock t's next acquire needs.
        let mut waiting_on: HashMap<ThreadId, ThreadId> = HashMap::new();
        for t in 0..self.projections.len() {
            let thread = ThreadId::new(t as u32);
            let Some(event) = self.next_event(state, t) else { continue };
            if let EventKind::Acquire(lock) = self.trace.event(event).kind() {
                if let Some(&owner) = holder.get(&lock) {
                    if owner != thread {
                        waiting_on.insert(thread, owner);
                    }
                }
            }
        }
        // Look for a cycle in the waiting_on graph.
        for &start in waiting_on.keys() {
            let mut seen = vec![start];
            let mut current = start;
            while let Some(&next) = waiting_on.get(&current) {
                if next == start {
                    return Some(seen);
                }
                if seen.contains(&next) {
                    break;
                }
                seen.push(next);
                current = next;
            }
        }
        None
    }
}

/// Searches (bounded by `budget` node expansions) for a correct reordering
/// witnessing the race `(e1, e2)`.
///
/// Returns the witness schedule (ending with `e1, e2` adjacent) when found.
/// A `None` result means no witness was found *within the budget*; it is not
/// a proof of absence.
pub fn find_race_witness(
    trace: &Trace,
    index: &TraceIndex,
    e1: EventId,
    e2: EventId,
    budget: usize,
) -> Option<Vec<EventId>> {
    if !trace.event(e1).conflicts_with(trace.event(e2)) {
        return None;
    }
    let (e1, e2) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
    let mut searcher = Searcher::new(trace, index, budget);
    searcher.race_search(e1, e2)
}

/// Searches (bounded by `budget` node expansions) for a correct reordering
/// after which a set of threads deadlocks.
///
/// Returns the schedule and the deadlocked thread set when found.
pub fn find_deadlock_witness(
    trace: &Trace,
    index: &TraceIndex,
    budget: usize,
) -> Option<(Vec<EventId>, Vec<ThreadId>)> {
    let mut searcher = Searcher::new(trace, index, budget);
    let initial = searcher.initial_state();
    let mut schedule = Vec::new();
    searcher.deadlock_dfs(initial, &mut schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    /// Figure 1b of the paper: swapping critical sections exposes a race on y.
    fn figure_1b() -> (Trace, Vec<EventId>) {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        let y = b.variable("y");
        let ids = vec![
            b.write(t1, y),   // 0
            b.acquire(t1, l), // 1
            b.read(t1, x),    // 2
            b.release(t1, l), // 3
            b.acquire(t2, l), // 4
            b.read(t2, x),    // 5
            b.release(t2, l), // 6
            b.read(t2, y),    // 7
        ];
        (b.finish(), ids)
    }

    /// Figure 1a: two conflicting writes inside critical sections — no race.
    fn figure_1a() -> (Trace, Vec<EventId>) {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        let ids = vec![
            b.acquire(t1, l), // 0
            b.read(t1, x),    // 1
            b.write(t1, x),   // 2
            b.release(t1, l), // 3
            b.acquire(t2, l), // 4
            b.read(t2, x),    // 5
            b.write(t2, x),   // 6
            b.release(t2, l), // 7
        ];
        (b.finish(), ids)
    }

    #[test]
    fn original_order_is_a_correct_reordering() {
        let (trace, ids) = figure_1b();
        let index = TraceIndex::build(&trace);
        assert_eq!(check_correct_reordering(&trace, &index, &ids), Ok(()));
    }

    #[test]
    fn prefix_of_each_thread_is_allowed() {
        let (trace, ids) = figure_1b();
        let index = TraceIndex::build(&trace);
        // Just t2's critical section before t1 ran at all (reads x initial value —
        // same as original since t1 never writes x).
        let schedule = vec![ids[4], ids[5], ids[6]];
        assert_eq!(check_correct_reordering(&trace, &index, &schedule), Ok(()));
    }

    #[test]
    fn non_prefix_is_rejected() {
        let (trace, ids) = figure_1b();
        let index = TraceIndex::build(&trace);
        // Skipping t1's first event.
        let schedule = vec![ids[1], ids[2]];
        assert!(matches!(
            check_correct_reordering(&trace, &index, &schedule),
            Err(ReorderError::NotThreadPrefix { .. })
        ));
    }

    #[test]
    fn duplicate_and_unknown_events_are_rejected() {
        let (trace, ids) = figure_1b();
        let index = TraceIndex::build(&trace);
        assert!(matches!(
            check_correct_reordering(&trace, &index, &[ids[0], ids[0]]),
            Err(ReorderError::DuplicateEvent(_))
        ));
        assert!(matches!(
            check_correct_reordering(&trace, &index, &[EventId::new(100)]),
            Err(ReorderError::UnknownEvent(_))
        ));
    }

    #[test]
    fn overlapping_critical_sections_are_rejected() {
        let (trace, ids) = figure_1a();
        let index = TraceIndex::build(&trace);
        // acq by t1 then acq by t2 without the release in between.
        let schedule = vec![ids[0], ids[4]];
        assert!(matches!(
            check_correct_reordering(&trace, &index, &schedule),
            Err(ReorderError::LockViolation { .. })
        ));
    }

    #[test]
    fn read_must_observe_same_write() {
        let (trace, ids) = figure_1a();
        let index = TraceIndex::build(&trace);
        // Schedule t2's critical section first: its r(x) then observes the
        // initial value instead of t1's w(x) — not a correct reordering.
        let schedule = vec![ids[4], ids[5]];
        assert!(matches!(
            check_correct_reordering(&trace, &index, &schedule),
            Err(ReorderError::ReadObservesDifferentWrite { .. })
        ));
    }

    #[test]
    fn figure_1b_race_witness_is_found_and_checked() {
        let (trace, ids) = figure_1b();
        let index = TraceIndex::build(&trace);
        let witness = find_race_witness(&trace, &index, ids[0], ids[7], 10_000)
            .expect("Figure 1b has a predictable race on y");
        assert!(check_race_witness(&trace, &index, &witness, ids[0], ids[7]));
        // The paper's own witness: e5 e6 e7(e of t2) then w(y); equivalently
        // t2's critical section first, then the racing pair.
        assert!(witness.len() >= 2);
    }

    #[test]
    fn figure_1a_has_no_race_witness() {
        let (trace, ids) = figure_1a();
        let index = TraceIndex::build(&trace);
        // The conflicting accesses on x cannot be brought together.
        assert_eq!(find_race_witness(&trace, &index, ids[2], ids[5], 100_000), None);
        assert_eq!(find_race_witness(&trace, &index, ids[2], ids[6], 100_000), None);
    }

    #[test]
    fn witness_search_rejects_non_conflicting_pairs() {
        let (trace, ids) = figure_1b();
        let index = TraceIndex::build(&trace);
        assert_eq!(find_race_witness(&trace, &index, ids[2], ids[5], 1_000), None);
    }

    #[test]
    fn deadlock_witness_on_classic_abba() {
        // t1: acq(a) acq(b) rel(b) rel(a) ; t2: acq(b) acq(a) rel(a) rel(b)
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.lock("a");
        let l_b = b.lock("b");
        b.acquire(t1, a);
        b.acquire(t1, l_b);
        b.release(t1, l_b);
        b.release(t1, a);
        b.acquire(t2, l_b);
        b.acquire(t2, a);
        b.release(t2, a);
        b.release(t2, l_b);
        let trace = b.finish();
        let index = TraceIndex::build(&trace);
        let (schedule, threads) =
            find_deadlock_witness(&trace, &index, 100_000).expect("ABBA deadlock is predictable");
        assert_eq!(threads.len(), 2);
        assert!(check_correct_reordering(&trace, &index, &schedule).is_ok());
    }

    #[test]
    fn no_deadlock_witness_when_lock_order_is_consistent() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let a = b.lock("a");
        let l_b = b.lock("b");
        b.acquire(t1, a);
        b.acquire(t1, l_b);
        b.release(t1, l_b);
        b.release(t1, a);
        b.acquire(t2, a);
        b.acquire(t2, l_b);
        b.release(t2, l_b);
        b.release(t2, a);
        let trace = b.finish();
        let index = TraceIndex::build(&trace);
        assert_eq!(find_deadlock_witness(&trace, &index, 100_000), None);
    }
}
