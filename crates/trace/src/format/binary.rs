//! The rapid wire format (`.rwf`): a fixed-width binary event encoding.
//!
//! The text formats pay a per-line parse and up to three interner lookups
//! per event; the wire format removes string handling from the hot path
//! entirely.  A file is one *header* — magic, version, event count and the
//! four string tables (threads, locks, variables, locations) — followed by
//! one fixed-width 13-byte *frame* per event:
//!
//! ```text
//! frame := thread u32 LE | op u8 | target u32 LE | loc u32 LE
//! ```
//!
//! so decoding an event is four loads and a bounds check.  All ids are
//! indices into the header's tables, assigned in order of *first appearance
//! in the event stream* — the same order the text readers intern in — so a
//! `.rwf` converted from text yields bit-identical ids (and therefore
//! identical detector timestamps) to streaming the original text.  The full
//! normative layout, including endianness and error semantics, is specified
//! in `docs/FORMAT.md` §3; the golden fixture
//! `crates/trace/tests/fixtures/figure2b.rwf` pins it byte for byte.
//!
//! # Examples
//!
//! Convert a textual trace to the wire format and stream it back (what
//! `engine convert` does):
//!
//! ```
//! use rapid_trace::format::{self, BinReader};
//!
//! let text = "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n";
//! let trace = format::parse_std(text).unwrap();
//! let rwf = format::to_rwf_bytes(&trace);
//! assert!(format::looks_binary(&rwf));
//!
//! let reader = BinReader::from_bytes(rwf).unwrap();
//! let roundtrip = format::collect_any(reader.into()).unwrap();
//! assert_eq!(format::write_std(&roundtrip), text);
//! ```

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use memmap2::Mmap;
use rapid_vc::ThreadId;

use crate::event::{Event, EventId, EventKind};
use crate::ids::{Location, LockId, VarId};
use crate::trace::Trace;

use super::wire;
use super::{ParseError, ParseErrorKind, StreamNames};

/// The four magic bytes opening every `.rwf` file: `"RWF"` plus a NUL, which
/// cannot occur at the start of either text format.
pub const MAGIC: [u8; 4] = *b"RWF\0";

/// The wire-format version this build reads and writes.
pub const VERSION: u16 = 1;

/// The `loc` field value encoding "no location recorded"
/// ([`Location::UNKNOWN`]).
pub const NO_LOCATION: u32 = u32::MAX;

/// Size in bytes of one event frame.
pub const FRAME_LEN: usize = 13;

const OP_ACQUIRE: u8 = 0;
const OP_RELEASE: u8 = 1;
const OP_READ: u8 = 2;
const OP_WRITE: u8 = 3;
const OP_FORK: u8 = 4;
const OP_JOIN: u8 = 5;

/// Returns true when `bytes` starts with the `.rwf` magic — the sniff the
/// `engine` CLI uses to auto-detect binary inputs.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Renumbers one id space in order of first appearance in the event stream.
struct Renumber {
    forward: Vec<u32>,
    names: Vec<String>,
}

const UNASSIGNED: u32 = u32::MAX;

impl Renumber {
    fn new(len: usize) -> Self {
        Renumber { forward: vec![UNASSIGNED; len], names: Vec::new() }
    }

    /// Maps an old id to its dense first-appearance id, resolving the
    /// display name through `resolve` the first time it is seen.
    fn visit(&mut self, old: u32, resolve: impl FnOnce() -> String) -> u32 {
        let slot = &mut self.forward[old as usize];
        if *slot == UNASSIGNED {
            *slot = self.names.len() as u32;
            self.names.push(resolve());
        }
        *slot
    }
}

/// Serializes `trace` into wire-format bytes.
///
/// Ids are canonicalized to first-appearance order (threads, locks,
/// variables and locations alike), matching the interning order of the text
/// readers; names never reached by an event are dropped.  Converting a
/// parsed text trace and re-reading it therefore reproduces the text
/// reader's ids, names and events exactly.
pub fn to_rwf_bytes(trace: &Trace) -> Vec<u8> {
    let mut threads = Renumber::new(trace.num_threads());
    let mut locks = Renumber::new(trace.num_locks());
    let mut variables = Renumber::new(trace.num_variables());
    let mut locations = Renumber::new(trace.num_locations());

    // First pass: assign canonical ids in the order the text readers would
    // intern them (per event: performing thread, target, location) and
    // translate every event into its frame fields.
    let mut frames: Vec<(u32, u8, u32, u32)> = Vec::with_capacity(trace.len());
    for event in trace.events() {
        let thread = event.thread();
        let thread_id = threads.visit(thread.raw(), || {
            trace.thread_name(thread).map(str::to_owned).unwrap_or_else(|| thread.to_string())
        });
        let (op, target) = match event.kind() {
            EventKind::Acquire(lock) | EventKind::Release(lock) => {
                let target = locks.visit(lock.raw(), || {
                    trace.lock_name(lock).map(str::to_owned).unwrap_or_else(|| lock.to_string())
                });
                (if event.kind().is_acquire() { OP_ACQUIRE } else { OP_RELEASE }, target)
            }
            EventKind::Read(var) | EventKind::Write(var) => {
                let target = variables.visit(var.raw(), || {
                    trace.variable_name(var).map(str::to_owned).unwrap_or_else(|| var.to_string())
                });
                (if event.kind().is_read() { OP_READ } else { OP_WRITE }, target)
            }
            EventKind::Fork(child) | EventKind::Join(child) => {
                let target = threads.visit(child.raw(), || {
                    trace.thread_name(child).map(str::to_owned).unwrap_or_else(|| child.to_string())
                });
                (if matches!(event.kind(), EventKind::Fork(_)) { OP_FORK } else { OP_JOIN }, target)
            }
        };
        let loc = if event.location().is_unknown() {
            NO_LOCATION
        } else {
            locations.visit(event.location().raw(), || {
                trace
                    .location_name(event.location())
                    .map(str::to_owned)
                    .unwrap_or_else(|| event.location().to_string())
            })
        };
        frames.push((thread_id, op, target, loc));
    }

    // Second pass: emit header, tables, frames — all through the shared
    // wire primitives, so this codec and the outcome codec stay in lockstep.
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    wire::put_u16(&mut out, VERSION);
    wire::put_u16(&mut out, 0); // reserved
    wire::put_u32(&mut out, frames.len() as u32);
    for table in [&threads.names, &locks.names, &variables.names, &locations.names] {
        wire::put_u32(&mut out, table.len() as u32);
        for name in table {
            wire::put_str(&mut out, name);
        }
    }
    for (thread, op, target, loc) in frames {
        wire::put_u32(&mut out, thread);
        wire::put_u8(&mut out, op);
        wire::put_u32(&mut out, target);
        wire::put_u32(&mut out, loc);
    }
    out
}

/// Incremental writer of the wire format over any [`Write`] sink.
///
/// The header carries the complete string tables, so the trace must be
/// materialized before writing — the writer exists for symmetry with
/// [`BinReader`] and for picking the output sink; the encoding itself is
/// [`to_rwf_bytes`].
#[derive(Debug)]
pub struct BinWriter<W: Write> {
    out: W,
}

impl<W: Write> BinWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        BinWriter { out }
    }

    /// Writes `trace` as one complete `.rwf` stream.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        self.out.write_all(&to_rwf_bytes(trace))
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes `trace` to `path` in the wire format.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_rwf_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<()> {
    let mut writer = BinWriter::new(File::create(path)?);
    writer.write_trace(trace)?;
    writer.finish().map(drop)
}

/// Maps the shared cursor's only error into this codec's typed form:
/// [`ParseErrorKind::Truncated`] at header position 0.
fn truncated(_: wire::Truncated) -> ParseError {
    ParseError { line: 0, kind: ParseErrorKind::Truncated }
}

/// A zero-copy reader of wire-format traces, yielding [`Event`]s straight
/// from the mapped frame bytes — no string handling after the header.
///
/// Constructors validate the header eagerly (magic, version, table layout,
/// exact frame-section length), so iteration can only fail on out-of-range
/// ids or op codes; the error's `line` field carries the 1-based *frame*
/// number (0 for header errors).
#[derive(Debug)]
pub struct BinReader {
    data: Mmap,
    /// Byte offset of the next frame.
    pos: usize,
    frames: u32,
    read: u32,
    names: StreamNames,
    failed: bool,
}

impl BinReader {
    /// Wraps mapped bytes, validating the header.
    ///
    /// # Errors
    ///
    /// [`ParseErrorKind::BadMagic`], [`ParseErrorKind::BadVersion`],
    /// [`ParseErrorKind::Truncated`] or [`ParseErrorKind::TrailingBytes`]
    /// when the container structure is unsound.
    pub fn from_mmap(data: Mmap) -> Result<Self, ParseError> {
        let mut cursor = wire::Cursor::new(&data);
        if cursor.take(MAGIC.len()).map_err(truncated)? != MAGIC {
            return Err(ParseError { line: 0, kind: ParseErrorKind::BadMagic });
        }
        let version = cursor.u16().map_err(truncated)?;
        if version != VERSION {
            return Err(ParseError { line: 0, kind: ParseErrorKind::BadVersion(version) });
        }
        cursor.u16().map_err(truncated)?; // reserved
        let frames = cursor.u32().map_err(truncated)?;
        let mut tables: [Vec<String>; 4] = Default::default();
        for table in &mut tables {
            let count = cursor.u32().map_err(truncated)?;
            // Each entry needs at least its 4-byte length prefix, bounding
            // `count` by the remaining input (guards hostile headers).
            cursor.check_count(count, 4).map_err(truncated)?;
            table.reserve(count as usize);
            for _ in 0..count {
                table.push(cursor.str().map_err(truncated)?);
            }
        }
        let body = frames as usize * FRAME_LEN;
        match cursor.remaining().cmp(&body) {
            std::cmp::Ordering::Less => return Err(truncated(wire::Truncated)),
            std::cmp::Ordering::Greater => {
                return Err(ParseError { line: 0, kind: ParseErrorKind::TrailingBytes })
            }
            std::cmp::Ordering::Equal => {}
        }
        let pos = cursor.pos();
        let [threads, locks, variables, locations] = tables;
        Ok(BinReader {
            data,
            pos,
            frames,
            read: 0,
            names: StreamNames::from_tables(threads, locks, variables, locations),
            failed: false,
        })
    }

    /// Wraps an in-memory buffer, validating the header.
    ///
    /// # Errors
    ///
    /// Same as [`BinReader::from_mmap`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ParseError> {
        BinReader::from_mmap(Mmap::from_vec(bytes))
    }

    /// Memory-maps an open `.rwf` file and validates its header.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`ParseErrorKind::Io`]; header failures as in
    /// [`BinReader::from_mmap`].
    pub fn map(file: &File) -> Result<Self, ParseError> {
        let data = Mmap::map(file)
            .map_err(|error| ParseError { line: 0, kind: ParseErrorKind::Io(error.to_string()) })?;
        BinReader::from_mmap(data)
    }

    /// Opens and memory-maps a `.rwf` file by path.
    ///
    /// # Errors
    ///
    /// Same as [`BinReader::map`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ParseError> {
        let file = File::open(path)
            .map_err(|error| ParseError { line: 0, kind: ParseErrorKind::Io(error.to_string()) })?;
        BinReader::map(&file)
    }

    /// The header's name tables (complete before the first event, unlike the
    /// text readers' progressively-grown tables).
    pub fn names(&self) -> &StreamNames {
        &self.names
    }

    /// Consumes the reader, returning the name tables.
    pub fn into_names(self) -> StreamNames {
        self.names
    }

    /// Number of events produced so far.
    pub fn events_read(&self) -> usize {
        self.read as usize
    }

    /// Total number of frames the header declares.
    pub fn frame_count(&self) -> usize {
        self.frames as usize
    }

    fn decode_frame(&mut self) -> Result<Event, ParseError> {
        let frame = &self.data[self.pos..self.pos + FRAME_LEN];
        let line = self.read as usize + 1;
        let thread = u32::from_le_bytes(frame[0..4].try_into().expect("13-byte frame"));
        let op = frame[4];
        let target = u32::from_le_bytes(frame[5..9].try_into().expect("13-byte frame"));
        let loc = u32::from_le_bytes(frame[9..13].try_into().expect("13-byte frame"));

        let check = |table: &'static str, id: u32, len: usize| {
            if (id as usize) < len {
                Ok(id)
            } else {
                Err(ParseError {
                    line,
                    kind: ParseErrorKind::BadNameId { table, id, len: len as u32 },
                })
            }
        };
        let thread = ThreadId::new(check("threads", thread, self.names.num_threads())?);
        let kind = match op {
            OP_ACQUIRE | OP_RELEASE => {
                let lock = LockId::new(check("locks", target, self.names.num_locks())?);
                if op == OP_ACQUIRE {
                    EventKind::Acquire(lock)
                } else {
                    EventKind::Release(lock)
                }
            }
            OP_READ | OP_WRITE => {
                let var = VarId::new(check("variables", target, self.names.num_variables())?);
                if op == OP_READ {
                    EventKind::Read(var)
                } else {
                    EventKind::Write(var)
                }
            }
            OP_FORK | OP_JOIN => {
                let child = ThreadId::new(check("threads", target, self.names.num_threads())?);
                if op == OP_FORK {
                    EventKind::Fork(child)
                } else {
                    EventKind::Join(child)
                }
            }
            other => return Err(ParseError { line, kind: ParseErrorKind::BadOpCode(other) }),
        };
        let location = if loc == NO_LOCATION {
            Location::UNKNOWN
        } else {
            Location::new(check("locations", loc, self.names.num_locations())?)
        };
        let event = Event::new(EventId::new(self.read), thread, kind, location);
        self.pos += FRAME_LEN;
        self.read += 1;
        Ok(event)
    }
}

impl Iterator for BinReader {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.read >= self.frames {
            return None;
        }
        match self.decode_frame() {
            Ok(event) => Some(Ok(event)),
            Err(error) => {
                self.failed = true;
                Some(Err(error))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{collect_any, parse_std, write_std};
    use super::*;

    const SAMPLE: &str = "\
t1|w(y)|A.java:1
t1|acq(l)|A.java:2
t1|fork(t2)|A.java:3
t2|r(y)|B.java:1
t1|rel(l)|A.java:4
";

    #[test]
    fn round_trips_text_exactly() {
        let trace = parse_std(SAMPLE).unwrap();
        let bytes = to_rwf_bytes(&trace);
        assert!(looks_binary(&bytes));
        let reader = BinReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.frame_count(), 5);
        let roundtrip = collect_any(reader.into()).unwrap();
        assert_eq!(roundtrip.events(), trace.events(), "ids are canonical on both sides");
        assert_eq!(write_std(&roundtrip), SAMPLE);
    }

    #[test]
    fn header_rejects_bad_magic_version_truncation_and_trailing_bytes() {
        let trace = parse_std(SAMPLE).unwrap();
        let good = to_rwf_bytes(&trace);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(BinReader::from_bytes(bad_magic).unwrap_err().kind, ParseErrorKind::BadMagic);

        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            BinReader::from_bytes(bad_version).unwrap_err().kind,
            ParseErrorKind::BadVersion(0xEE)
        ));

        let truncated = good[..good.len() - 1].to_vec();
        assert_eq!(BinReader::from_bytes(truncated).unwrap_err().kind, ParseErrorKind::Truncated);

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            BinReader::from_bytes(trailing).unwrap_err().kind,
            ParseErrorKind::TrailingBytes
        );

        assert_eq!(
            BinReader::from_bytes(b"RW".to_vec()).unwrap_err().kind,
            ParseErrorKind::Truncated
        );
    }

    #[test]
    fn frames_reject_bad_op_codes_and_out_of_range_ids() {
        let trace = parse_std(SAMPLE).unwrap();
        let good = to_rwf_bytes(&trace);
        let first_frame = good.len() - 5 * FRAME_LEN;

        let mut bad_op = good.clone();
        bad_op[first_frame + FRAME_LEN + 4] = 9; // second frame's op byte
        let mut reader = BinReader::from_bytes(bad_op).unwrap();
        assert!(reader.next().unwrap().is_ok());
        let error = reader.next().unwrap().unwrap_err();
        assert_eq!(error.line, 2, "frame number, 1-based");
        assert!(matches!(error.kind, ParseErrorKind::BadOpCode(9)));
        assert!(reader.next().is_none(), "the reader fuses after an error");

        let mut bad_id = good.clone();
        bad_id[first_frame] = 0xFE; // first frame's thread id
        let mut reader = BinReader::from_bytes(bad_id).unwrap();
        let error = reader.next().unwrap().unwrap_err();
        assert_eq!(error.line, 1);
        assert!(matches!(
            error.kind,
            ParseErrorKind::BadNameId { table: "threads", id: 0xFE, len: 2 }
        ));
    }

    #[test]
    fn builder_traces_are_canonicalized_to_first_appearance_order() {
        use crate::TraceBuilder;
        // Declare names in an order that differs from use order.
        let mut b = TraceBuilder::new();
        let t_unused = b.thread("never-used");
        let t2 = b.thread("t2");
        let t1 = b.thread("t1");
        let x = b.variable("x");
        b.write(t1, x);
        b.read(t2, x);
        let _ = t_unused;
        let trace = b.finish();

        let reader = BinReader::from_bytes(to_rwf_bytes(&trace)).unwrap();
        // First-appearance order: t1 first, unused name dropped.
        assert_eq!(reader.names().num_threads(), 2);
        assert_eq!(reader.names().thread_name(ThreadId::new(0)), Some("t1"));
        assert_eq!(reader.names().thread_name(ThreadId::new(1)), Some("t2"));
    }

    #[test]
    fn unknown_location_round_trips() {
        let event = Event::new(
            EventId::new(0),
            ThreadId::new(0),
            EventKind::Write(VarId::new(0)),
            Location::UNKNOWN,
        );
        let trace = Trace::from_parts(
            vec![event],
            vec!["t".to_owned()],
            Vec::new(),
            vec!["x".to_owned()],
            Vec::new(),
        );
        let mut reader = BinReader::from_bytes(to_rwf_bytes(&trace)).unwrap();
        let decoded = reader.next().unwrap().unwrap();
        assert!(decoded.location().is_unknown());
    }

    #[test]
    fn writer_writes_files() {
        let trace = parse_std(SAMPLE).unwrap();
        let path = std::env::temp_dir().join(format!("rapid-rwf-{}.rwf", std::process::id()));
        write_rwf_file(&trace, &path).unwrap();
        let reader = BinReader::open(&path).unwrap();
        assert_eq!(reader.frame_count(), trace.len());
        std::fs::remove_file(&path).ok();
    }
}
