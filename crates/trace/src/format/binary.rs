//! The rapid wire format (`.rwf`): a fixed-width binary event encoding.
//!
//! The text formats pay a per-line parse and up to three interner lookups
//! per event; the wire format removes string handling from the hot path
//! entirely.  A file is one *header* — magic, version, event count and the
//! four string tables (threads, locks, variables, locations) — followed by
//! one fixed-width 13-byte *frame* per event:
//!
//! ```text
//! frame := thread u32 LE | op u8 | target u32 LE | loc u32 LE
//! ```
//!
//! so decoding an event is four loads and a bounds check.  All ids are
//! indices into the header's tables, assigned in order of *first appearance
//! in the event stream* — the same order the text readers intern in — so a
//! `.rwf` converted from text yields bit-identical ids (and therefore
//! identical detector timestamps) to streaming the original text.  The full
//! normative layout, including endianness and error semantics, is specified
//! in `docs/FORMAT.md` §3; the golden fixture
//! `crates/trace/tests/fixtures/figure2b.rwf` pins it byte for byte.
//!
//! Version 2 is the *streamed* container ([`RwfStreamWriter`]): the same
//! 13-byte frames, but grouped into blocks interleaved with string-table
//! *deltas*, so a producer can append events as they happen without
//! materializing the trace (or even knowing the final name tables) first.
//! [`BinReader`] accepts both versions and yields identical events for
//! equivalent content — `docs/FORMAT.md` §3.5 is the normative spec.
//!
//! # Examples
//!
//! Convert a textual trace to the wire format and stream it back (what
//! `engine convert` does):
//!
//! ```
//! use rapid_trace::format::{self, BinReader};
//!
//! let text = "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n";
//! let trace = format::parse_std(text).unwrap();
//! let rwf = format::to_rwf_bytes(&trace);
//! assert!(format::looks_binary(&rwf));
//!
//! let reader = BinReader::from_bytes(rwf).unwrap();
//! let roundtrip = format::collect_any(reader.into()).unwrap();
//! assert_eq!(format::write_std(&roundtrip), text);
//! ```

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use memmap2::Mmap;
use rapid_vc::ThreadId;

use crate::builder::Interner;
use crate::event::{Event, EventId, EventKind};
use crate::ids::{Location, LockId, VarId};
use crate::names::NameResolver;
use crate::trace::Trace;

use super::wire;
use super::{ParseError, ParseErrorKind, StreamNames};

/// The four magic bytes opening every `.rwf` file: `"RWF"` plus a NUL, which
/// cannot occur at the start of either text format.
pub const MAGIC: [u8; 4] = *b"RWF\0";

/// The batch wire-format version ([`to_rwf_bytes`] writes it; readers accept
/// it alongside [`VERSION_STREAM`]).
pub const VERSION: u16 = 1;

/// The streamed wire-format version written by [`RwfStreamWriter`]: frames
/// arrive in blocks interleaved with string-table deltas, terminated by an
/// END block carrying the authoritative event count.
pub const VERSION_STREAM: u16 = 2;

/// The `loc` field value encoding "no location recorded"
/// ([`Location::UNKNOWN`]).
pub const NO_LOCATION: u32 = u32::MAX;

/// Size in bytes of one event frame.
pub const FRAME_LEN: usize = 13;

const OP_ACQUIRE: u8 = 0;
const OP_RELEASE: u8 = 1;
const OP_READ: u8 = 2;
const OP_WRITE: u8 = 3;
const OP_FORK: u8 = 4;
const OP_JOIN: u8 = 5;

/// Block tags of the streamed (version-2) container body.
const BLOCK_NAMES: u8 = 0;
const BLOCK_EVENTS: u8 = 1;
const BLOCK_END: u8 = 2;

/// Table indices used by NAMES deltas, in the §3.2 table order.
const TABLE_THREADS: usize = 0;
const TABLE_LOCKS: usize = 1;
const TABLE_VARIABLES: usize = 2;
const TABLE_LOCATIONS: usize = 3;

/// Events buffered before [`RwfStreamWriter`] flushes a block (about 53 KiB
/// of frames — small enough to bound producer memory, large enough that the
/// per-block tag overhead vanishes).
const DEFAULT_BLOCK_EVENTS: usize = 4096;

/// Returns true when `bytes` starts with the `.rwf` magic — the sniff the
/// `engine` CLI uses to auto-detect binary inputs.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Renumbers one id space in order of first appearance in the event stream.
struct Renumber {
    forward: Vec<u32>,
    names: Vec<String>,
}

const UNASSIGNED: u32 = u32::MAX;

impl Renumber {
    fn new(len: usize) -> Self {
        Renumber { forward: vec![UNASSIGNED; len], names: Vec::new() }
    }

    /// Maps an old id to its dense first-appearance id, resolving the
    /// display name through `resolve` the first time it is seen.
    fn visit(&mut self, old: u32, resolve: impl FnOnce() -> String) -> u32 {
        let slot = &mut self.forward[old as usize];
        if *slot == UNASSIGNED {
            *slot = self.names.len() as u32;
            self.names.push(resolve());
        }
        *slot
    }
}

/// Serializes `trace` into wire-format bytes.
///
/// Ids are canonicalized to first-appearance order (threads, locks,
/// variables and locations alike), matching the interning order of the text
/// readers; names never reached by an event are dropped.  Converting a
/// parsed text trace and re-reading it therefore reproduces the text
/// reader's ids, names and events exactly.
pub fn to_rwf_bytes(trace: &Trace) -> Vec<u8> {
    let mut threads = Renumber::new(trace.num_threads());
    let mut locks = Renumber::new(trace.num_locks());
    let mut variables = Renumber::new(trace.num_variables());
    let mut locations = Renumber::new(trace.num_locations());

    // First pass: assign canonical ids in the order the text readers would
    // intern them (per event: performing thread, target, location) and
    // translate every event into its frame fields.
    let mut frames: Vec<(u32, u8, u32, u32)> = Vec::with_capacity(trace.len());
    for event in trace.events() {
        let thread = event.thread();
        let thread_id = threads.visit(thread.raw(), || {
            trace.thread_name(thread).map(str::to_owned).unwrap_or_else(|| thread.to_string())
        });
        let (op, target) = match event.kind() {
            EventKind::Acquire(lock) | EventKind::Release(lock) => {
                let target = locks.visit(lock.raw(), || {
                    trace.lock_name(lock).map(str::to_owned).unwrap_or_else(|| lock.to_string())
                });
                (if event.kind().is_acquire() { OP_ACQUIRE } else { OP_RELEASE }, target)
            }
            EventKind::Read(var) | EventKind::Write(var) => {
                let target = variables.visit(var.raw(), || {
                    trace.variable_name(var).map(str::to_owned).unwrap_or_else(|| var.to_string())
                });
                (if event.kind().is_read() { OP_READ } else { OP_WRITE }, target)
            }
            EventKind::Fork(child) | EventKind::Join(child) => {
                let target = threads.visit(child.raw(), || {
                    trace.thread_name(child).map(str::to_owned).unwrap_or_else(|| child.to_string())
                });
                (if matches!(event.kind(), EventKind::Fork(_)) { OP_FORK } else { OP_JOIN }, target)
            }
        };
        let loc = if event.location().is_unknown() {
            NO_LOCATION
        } else {
            locations.visit(event.location().raw(), || {
                trace
                    .location_name(event.location())
                    .map(str::to_owned)
                    .unwrap_or_else(|| event.location().to_string())
            })
        };
        frames.push((thread_id, op, target, loc));
    }

    // Second pass: emit header, tables, frames — all through the shared
    // wire primitives, so this codec and the outcome codec stay in lockstep.
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    wire::put_u16(&mut out, VERSION);
    wire::put_u16(&mut out, 0); // reserved
    wire::put_u32(&mut out, frames.len() as u32);
    for table in [&threads.names, &locks.names, &variables.names, &locations.names] {
        wire::put_u32(&mut out, table.len() as u32);
        for name in table {
            wire::put_str(&mut out, name);
        }
    }
    for (thread, op, target, loc) in frames {
        wire::put_u32(&mut out, thread);
        wire::put_u8(&mut out, op);
        wire::put_u32(&mut out, target);
        wire::put_u32(&mut out, loc);
    }
    out
}

/// Incremental writer of the wire format over any [`Write`] sink.
///
/// The header carries the complete string tables, so the trace must be
/// materialized before writing — the writer exists for symmetry with
/// [`BinReader`] and for picking the output sink; the encoding itself is
/// [`to_rwf_bytes`].
#[derive(Debug)]
pub struct BinWriter<W: Write> {
    out: W,
}

impl<W: Write> BinWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        BinWriter { out }
    }

    /// Writes `trace` as one complete `.rwf` stream.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        self.out.write_all(&to_rwf_bytes(trace))
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes `trace` to `path` in the wire format.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_rwf_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<()> {
    let mut writer = BinWriter::new(File::create(path)?);
    writer.write_trace(trace)?;
    writer.finish().map(drop)
}

/// Streaming encoder of the version-2 `.rwf` container.
///
/// Unlike [`to_rwf_bytes`] / [`BinWriter`], which need the whole trace (the
/// v1 header carries the complete string tables up front), this writer
/// appends events as they happen: frames are buffered into fixed-size
/// blocks, and each block is preceded by NAMES *deltas* carrying only the
/// names first seen since the previous flush.  Ids are assigned in first-
/// appearance order — the normative §1.4 order — so a streamed encoding of
/// a trace decodes to exactly the events, ids and names of its batch v1
/// encoding, and therefore identical detector timestamps.
///
/// Two entry points:
///
/// * the **producer API** ([`acquire`](Self::acquire),
///   [`release`](Self::release), [`read`](Self::read),
///   [`write`](Self::write), [`fork`](Self::fork), [`join`](Self::join))
///   takes names directly — what a tracer emitting events live uses;
/// * the **transcode API** ([`append`](Self::append)) re-encodes existing
///   [`Event`]s, resolving ids through any [`NameResolver`].
///
/// [`finish`](Self::finish) must be called to emit the END block; a
/// container without one is `Truncated` by construction.
///
/// # Examples
///
/// ```
/// use rapid_trace::format::{self, BinReader, RwfStreamWriter};
///
/// let mut writer = RwfStreamWriter::new(Vec::new()).unwrap();
/// writer.write("t1", "x", Some("A.java:1")).unwrap();
/// writer.read("t2", "x", Some("B.java:2")).unwrap();
/// let bytes = writer.finish().unwrap();
///
/// let reader = BinReader::from_bytes(bytes).unwrap();
/// let trace = format::collect_any(reader.into()).unwrap();
/// assert_eq!(format::write_std(&trace), "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n");
/// ```
#[derive(Debug)]
pub struct RwfStreamWriter<W: Write> {
    sink: W,
    tables: [Interner; 4],
    /// Per-table count of names already emitted in a NAMES delta.
    flushed: [usize; 4],
    /// Encoded frames of the block under construction.
    frames: Vec<u8>,
    pending: u32,
    total: u64,
    block_events: usize,
}

impl<W: Write> RwfStreamWriter<W> {
    /// Starts a streamed container on `sink`, writing the v2 header.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn new(sink: W) -> io::Result<Self> {
        RwfStreamWriter::with_block_events(sink, DEFAULT_BLOCK_EVENTS)
    }

    /// Like [`RwfStreamWriter::new`] with an explicit events-per-block
    /// budget (clamped to ≥ 1) — tests use tiny blocks to exercise the
    /// multi-block paths.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn with_block_events(mut sink: W, block_events: usize) -> io::Result<Self> {
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&MAGIC);
        wire::put_u16(&mut header, VERSION_STREAM);
        wire::put_u16(&mut header, 0); // reserved
        wire::put_u32(&mut header, 0); // count lives in the END block
        sink.write_all(&header)?;
        Ok(RwfStreamWriter {
            sink,
            tables: Default::default(),
            flushed: [0; 4],
            frames: Vec::new(),
            pending: 0,
            total: 0,
            block_events: block_events.max(1),
        })
    }

    /// Appends a lock-acquire event.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn acquire(&mut self, thread: &str, lock: &str, location: Option<&str>) -> io::Result<()> {
        self.push(thread, OP_ACQUIRE, TABLE_LOCKS, lock, location)
    }

    /// Appends a lock-release event.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn release(&mut self, thread: &str, lock: &str, location: Option<&str>) -> io::Result<()> {
        self.push(thread, OP_RELEASE, TABLE_LOCKS, lock, location)
    }

    /// Appends a variable read.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn read(&mut self, thread: &str, variable: &str, location: Option<&str>) -> io::Result<()> {
        self.push(thread, OP_READ, TABLE_VARIABLES, variable, location)
    }

    /// Appends a variable write.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn write(
        &mut self,
        thread: &str,
        variable: &str,
        location: Option<&str>,
    ) -> io::Result<()> {
        self.push(thread, OP_WRITE, TABLE_VARIABLES, variable, location)
    }

    /// Appends a thread fork.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn fork(&mut self, thread: &str, child: &str, location: Option<&str>) -> io::Result<()> {
        self.push(thread, OP_FORK, TABLE_THREADS, child, location)
    }

    /// Appends a thread join.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn join(&mut self, thread: &str, child: &str, location: Option<&str>) -> io::Result<()> {
        self.push(thread, OP_JOIN, TABLE_THREADS, child, location)
    }

    /// Re-encodes an existing event, resolving its ids through `names` — the
    /// transcode path (`Trace` → v2, or any reader's names).  Unknown
    /// locations stay unknown; ids without a recorded name fall back to
    /// their display form, exactly like [`to_rwf_bytes`].
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn append(&mut self, event: &Event, names: &dyn NameResolver) -> io::Result<()> {
        fn label(name: Option<&str>, id: impl ToString) -> String {
            name.map(str::to_owned).unwrap_or_else(|| id.to_string())
        }
        let thread = label(names.thread_name(event.thread()), event.thread());
        let location = if event.location().is_unknown() {
            None
        } else {
            Some(names.location_label(event.location()))
        };
        let location = location.as_deref();
        match event.kind() {
            EventKind::Acquire(lock) => {
                self.acquire(&thread, &label(names.lock_name(lock), lock), location)
            }
            EventKind::Release(lock) => {
                self.release(&thread, &label(names.lock_name(lock), lock), location)
            }
            EventKind::Read(var) => {
                self.read(&thread, &label(names.variable_name(var), var), location)
            }
            EventKind::Write(var) => {
                self.write(&thread, &label(names.variable_name(var), var), location)
            }
            EventKind::Fork(child) => {
                self.fork(&thread, &label(names.thread_name(child), child), location)
            }
            EventKind::Join(child) => {
                self.join(&thread, &label(names.thread_name(child), child), location)
            }
        }
    }

    /// Number of events appended so far.
    pub fn events_written(&self) -> u64 {
        self.total
    }

    /// Flushes any buffered frames and writes the END block, returning the
    /// sink.  Dropping the writer without calling this leaves a container
    /// that decodes as `Truncated` — deliberately: a crashed producer must
    /// not pass for a complete trace.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        if self.pending > 0 {
            self.flush_block()?;
        }
        let mut end = Vec::with_capacity(9);
        wire::put_u8(&mut end, BLOCK_END);
        wire::put_u64(&mut end, self.total);
        self.sink.write_all(&end)?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Encodes one frame, interning in the normative per-event order
    /// (thread, target, location) so ids match the batch encoder's.
    fn push(
        &mut self,
        thread: &str,
        op: u8,
        table: usize,
        target: &str,
        location: Option<&str>,
    ) -> io::Result<()> {
        let thread_id = self.tables[TABLE_THREADS].intern(thread);
        let target_id = self.tables[table].intern(target);
        let loc = match location {
            None => NO_LOCATION,
            Some(name) => self.tables[TABLE_LOCATIONS].intern(name),
        };
        wire::put_u32(&mut self.frames, thread_id);
        wire::put_u8(&mut self.frames, op);
        wire::put_u32(&mut self.frames, target_id);
        wire::put_u32(&mut self.frames, loc);
        self.pending += 1;
        self.total += 1;
        if self.pending as usize >= self.block_events {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Emits the NAMES deltas for names first interned since the last flush,
    /// then one EVENTS block with the buffered frames.
    fn flush_block(&mut self) -> io::Result<()> {
        let mut block = Vec::with_capacity(self.frames.len() + 64);
        for (table, interner) in self.tables.iter().enumerate() {
            let (start, end) = (self.flushed[table], interner.len());
            if start == end {
                continue;
            }
            wire::put_u8(&mut block, BLOCK_NAMES);
            wire::put_u8(&mut block, table as u8);
            wire::put_u32(&mut block, (end - start) as u32);
            for id in start..end {
                wire::put_str(&mut block, interner.name(id as u32).expect("interned name"));
            }
            self.flushed[table] = end;
        }
        wire::put_u8(&mut block, BLOCK_EVENTS);
        wire::put_u32(&mut block, self.pending);
        block.extend_from_slice(&self.frames);
        self.sink.write_all(&block)?;
        self.frames.clear();
        self.pending = 0;
        Ok(())
    }
}

/// Serializes `trace` into *streamed* (version-2) wire-format bytes with the
/// given events-per-block budget — [`to_rwf_bytes`]'s v2 sibling, used by
/// tests and benchmarks to pin streamed ≡ batch equivalence.
pub fn to_rwf_stream_bytes(trace: &Trace, block_events: usize) -> Vec<u8> {
    const VEC: &str = "writing to a Vec cannot fail";
    let mut writer = RwfStreamWriter::with_block_events(Vec::new(), block_events).expect(VEC);
    for event in trace.events() {
        writer.append(event, trace).expect(VEC);
    }
    writer.finish().expect(VEC)
}

/// Maps the shared cursor's only error into this codec's typed form:
/// [`ParseErrorKind::Truncated`] at header position 0.
fn truncated(_: wire::Truncated) -> ParseError {
    ParseError { line: 0, kind: ParseErrorKind::Truncated }
}

/// One run of contiguous frames, with the name-table lengths its frames may
/// legally reference (a v2 frame must not use a name from a *later* delta).
/// A v1 file is a single block over the complete tables.
#[derive(Debug, Clone, Copy)]
struct EventBlock {
    /// Byte offset of the block's first frame.
    offset: usize,
    frames: u32,
    /// Per-table name counts visible to this block, in §3.2 table order.
    lens: [u32; 4],
}

/// What a container scan yields: total frame count, the four complete name
/// tables (§3.2 order), and the event blocks in file order.
type ScannedBody = (u32, [Vec<String>; 4], Vec<EventBlock>);

/// A zero-copy reader of wire-format traces, yielding [`Event`]s straight
/// from the mapped frame bytes — no string handling after the container
/// scan.  Accepts both the batch (v1) and streamed (v2) containers.
///
/// Constructors validate the container eagerly (magic, version, table
/// layout, block structure, exact frame-section lengths, v2 END count), so
/// iteration can only fail on out-of-range ids or op codes; the error's
/// `line` field carries the 1-based *frame* number (0 for container
/// errors).
#[derive(Debug)]
pub struct BinReader {
    data: Mmap,
    /// Byte offset of the next frame.
    pos: usize,
    frames: u32,
    read: u32,
    names: StreamNames,
    failed: bool,
    blocks: Vec<EventBlock>,
    next_block: usize,
    /// Frames left in the current block.
    block_left: u32,
    /// Id bounds for the current block's frames.
    lens: [u32; 4],
}

impl BinReader {
    /// Wraps mapped bytes, validating the container (either version).
    ///
    /// # Errors
    ///
    /// [`ParseErrorKind::BadMagic`], [`ParseErrorKind::BadVersion`],
    /// [`ParseErrorKind::Truncated`], [`ParseErrorKind::TrailingBytes`] or
    /// [`ParseErrorKind::BadBlockTag`] (v2 only) when the container
    /// structure is unsound.
    pub fn from_mmap(data: Mmap) -> Result<Self, ParseError> {
        let mut cursor = wire::Cursor::new(&data);
        if cursor.take(MAGIC.len()).map_err(truncated)? != MAGIC {
            return Err(ParseError { line: 0, kind: ParseErrorKind::BadMagic });
        }
        let version = cursor.u16().map_err(truncated)?;
        cursor.u16().map_err(truncated)?; // reserved
        let declared = cursor.u32().map_err(truncated)?;
        let (frames, tables, blocks) = match version {
            VERSION => Self::scan_v1(&mut cursor, declared)?,
            VERSION_STREAM => Self::scan_v2(&mut cursor)?,
            other => return Err(ParseError { line: 0, kind: ParseErrorKind::BadVersion(other) }),
        };
        let [threads, locks, variables, locations] = tables;
        Ok(BinReader {
            data,
            pos: 0,
            frames,
            read: 0,
            names: StreamNames::from_tables(threads, locks, variables, locations),
            failed: false,
            blocks,
            next_block: 0,
            block_left: 0,
            lens: [0; 4],
        })
    }

    /// Validates a v1 body — four complete tables, then exactly `declared`
    /// frames — as one block over the full tables.
    fn scan_v1(cursor: &mut wire::Cursor<'_>, declared: u32) -> Result<ScannedBody, ParseError> {
        let mut tables: [Vec<String>; 4] = Default::default();
        for table in &mut tables {
            let count = cursor.u32().map_err(truncated)?;
            // Each entry needs at least its 4-byte length prefix, bounding
            // `count` by the remaining input (guards hostile headers).
            cursor.check_count(count, 4).map_err(truncated)?;
            table.reserve(count as usize);
            for _ in 0..count {
                table.push(cursor.str().map_err(truncated)?);
            }
        }
        let body = declared as usize * FRAME_LEN;
        match cursor.remaining().cmp(&body) {
            std::cmp::Ordering::Less => return Err(truncated(wire::Truncated)),
            std::cmp::Ordering::Greater => {
                return Err(ParseError { line: 0, kind: ParseErrorKind::TrailingBytes })
            }
            std::cmp::Ordering::Equal => {}
        }
        let lens = [
            tables[0].len() as u32,
            tables[1].len() as u32,
            tables[2].len() as u32,
            tables[3].len() as u32,
        ];
        let block = EventBlock { offset: cursor.pos(), frames: declared, lens };
        Ok((declared, tables, vec![block]))
    }

    /// Walks a v2 body block by block: NAMES deltas grow the tables, EVENTS
    /// blocks are recorded with the table lengths *visible at that point*
    /// (so frames cannot reference later deltas), and END must carry the
    /// exact event total with nothing after it.
    fn scan_v2(cursor: &mut wire::Cursor<'_>) -> Result<ScannedBody, ParseError> {
        let mut tables: [Vec<String>; 4] = Default::default();
        let mut blocks = Vec::new();
        let mut total: u64 = 0;
        loop {
            match cursor.u8().map_err(truncated)? {
                BLOCK_NAMES => {
                    let index = cursor.u8().map_err(truncated)?;
                    let Some(table) = tables.get_mut(index as usize) else {
                        return Err(ParseError {
                            line: 0,
                            kind: ParseErrorKind::BadBlockTag(index),
                        });
                    };
                    let count = cursor.u32().map_err(truncated)?;
                    cursor.check_count(count, 4).map_err(truncated)?;
                    table.reserve(count as usize);
                    for _ in 0..count {
                        table.push(cursor.str().map_err(truncated)?);
                    }
                }
                BLOCK_EVENTS => {
                    let count = cursor.u32().map_err(truncated)?;
                    let offset = cursor.pos();
                    cursor.take(count as usize * FRAME_LEN).map_err(truncated)?;
                    let lens = [
                        tables[0].len() as u32,
                        tables[1].len() as u32,
                        tables[2].len() as u32,
                        tables[3].len() as u32,
                    ];
                    blocks.push(EventBlock { offset, frames: count, lens });
                    total += count as u64;
                }
                BLOCK_END => {
                    let declared = cursor.u64().map_err(truncated)?;
                    if declared != total || total > u32::MAX as u64 {
                        return Err(truncated(wire::Truncated));
                    }
                    if !cursor.at_end() {
                        return Err(ParseError { line: 0, kind: ParseErrorKind::TrailingBytes });
                    }
                    return Ok((total as u32, tables, blocks));
                }
                other => {
                    return Err(ParseError { line: 0, kind: ParseErrorKind::BadBlockTag(other) })
                }
            }
        }
    }

    /// Wraps an in-memory buffer, validating the header.
    ///
    /// # Errors
    ///
    /// Same as [`BinReader::from_mmap`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ParseError> {
        BinReader::from_mmap(Mmap::from_vec(bytes))
    }

    /// Memory-maps an open `.rwf` file and validates its header.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`ParseErrorKind::Io`]; header failures as in
    /// [`BinReader::from_mmap`].
    pub fn map(file: &File) -> Result<Self, ParseError> {
        let data = Mmap::map(file)
            .map_err(|error| ParseError { line: 0, kind: ParseErrorKind::Io(error.to_string()) })?;
        BinReader::from_mmap(data)
    }

    /// Opens and memory-maps a `.rwf` file by path.
    ///
    /// # Errors
    ///
    /// Same as [`BinReader::map`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ParseError> {
        let file = File::open(path)
            .map_err(|error| ParseError { line: 0, kind: ParseErrorKind::Io(error.to_string()) })?;
        BinReader::map(&file)
    }

    /// The header's name tables (complete before the first event, unlike the
    /// text readers' progressively-grown tables).
    pub fn names(&self) -> &StreamNames {
        &self.names
    }

    /// Consumes the reader, returning the name tables.
    pub fn into_names(self) -> StreamNames {
        self.names
    }

    /// Number of events produced so far.
    pub fn events_read(&self) -> usize {
        self.read as usize
    }

    /// Total number of frames the header declares.
    pub fn frame_count(&self) -> usize {
        self.frames as usize
    }

    fn decode_frame(&mut self) -> Result<Event, ParseError> {
        // Skip to the next non-empty block (total frame count guarantees one
        // exists whenever the iterator lets us in here).
        while self.block_left == 0 {
            let block = self.blocks[self.next_block];
            self.next_block += 1;
            self.pos = block.offset;
            self.block_left = block.frames;
            self.lens = block.lens;
        }
        let frame = &self.data[self.pos..self.pos + FRAME_LEN];
        let line = self.read as usize + 1;
        let thread = u32::from_le_bytes(frame[0..4].try_into().expect("13-byte frame"));
        let op = frame[4];
        let target = u32::from_le_bytes(frame[5..9].try_into().expect("13-byte frame"));
        let loc = u32::from_le_bytes(frame[9..13].try_into().expect("13-byte frame"));

        // Ids are checked against the tables visible to *this block* — in a
        // streamed container a frame must not reference a later delta.
        let lens = self.lens;
        let check = |table: &'static str, id: u32, len: u32| {
            if id < len {
                Ok(id)
            } else {
                Err(ParseError { line, kind: ParseErrorKind::BadNameId { table, id, len } })
            }
        };
        let thread = ThreadId::new(check("threads", thread, lens[0])?);
        let kind = match op {
            OP_ACQUIRE | OP_RELEASE => {
                let lock = LockId::new(check("locks", target, lens[1])?);
                if op == OP_ACQUIRE {
                    EventKind::Acquire(lock)
                } else {
                    EventKind::Release(lock)
                }
            }
            OP_READ | OP_WRITE => {
                let var = VarId::new(check("variables", target, lens[2])?);
                if op == OP_READ {
                    EventKind::Read(var)
                } else {
                    EventKind::Write(var)
                }
            }
            OP_FORK | OP_JOIN => {
                let child = ThreadId::new(check("threads", target, lens[0])?);
                if op == OP_FORK {
                    EventKind::Fork(child)
                } else {
                    EventKind::Join(child)
                }
            }
            other => return Err(ParseError { line, kind: ParseErrorKind::BadOpCode(other) }),
        };
        let location = if loc == NO_LOCATION {
            Location::UNKNOWN
        } else {
            Location::new(check("locations", loc, lens[3])?)
        };
        let event = Event::new(EventId::new(self.read), thread, kind, location);
        self.pos += FRAME_LEN;
        self.read += 1;
        self.block_left -= 1;
        Ok(event)
    }
}

impl Iterator for BinReader {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.read >= self.frames {
            return None;
        }
        match self.decode_frame() {
            Ok(event) => Some(Ok(event)),
            Err(error) => {
                self.failed = true;
                Some(Err(error))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{collect_any, parse_std, write_std};
    use super::*;

    const SAMPLE: &str = "\
t1|w(y)|A.java:1
t1|acq(l)|A.java:2
t1|fork(t2)|A.java:3
t2|r(y)|B.java:1
t1|rel(l)|A.java:4
";

    #[test]
    fn round_trips_text_exactly() {
        let trace = parse_std(SAMPLE).unwrap();
        let bytes = to_rwf_bytes(&trace);
        assert!(looks_binary(&bytes));
        let reader = BinReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.frame_count(), 5);
        let roundtrip = collect_any(reader.into()).unwrap();
        assert_eq!(roundtrip.events(), trace.events(), "ids are canonical on both sides");
        assert_eq!(write_std(&roundtrip), SAMPLE);
    }

    #[test]
    fn header_rejects_bad_magic_version_truncation_and_trailing_bytes() {
        let trace = parse_std(SAMPLE).unwrap();
        let good = to_rwf_bytes(&trace);

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(BinReader::from_bytes(bad_magic).unwrap_err().kind, ParseErrorKind::BadMagic);

        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        assert!(matches!(
            BinReader::from_bytes(bad_version).unwrap_err().kind,
            ParseErrorKind::BadVersion(0xEE)
        ));

        let truncated = good[..good.len() - 1].to_vec();
        assert_eq!(BinReader::from_bytes(truncated).unwrap_err().kind, ParseErrorKind::Truncated);

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            BinReader::from_bytes(trailing).unwrap_err().kind,
            ParseErrorKind::TrailingBytes
        );

        assert_eq!(
            BinReader::from_bytes(b"RW".to_vec()).unwrap_err().kind,
            ParseErrorKind::Truncated
        );
    }

    #[test]
    fn frames_reject_bad_op_codes_and_out_of_range_ids() {
        let trace = parse_std(SAMPLE).unwrap();
        let good = to_rwf_bytes(&trace);
        let first_frame = good.len() - 5 * FRAME_LEN;

        let mut bad_op = good.clone();
        bad_op[first_frame + FRAME_LEN + 4] = 9; // second frame's op byte
        let mut reader = BinReader::from_bytes(bad_op).unwrap();
        assert!(reader.next().unwrap().is_ok());
        let error = reader.next().unwrap().unwrap_err();
        assert_eq!(error.line, 2, "frame number, 1-based");
        assert!(matches!(error.kind, ParseErrorKind::BadOpCode(9)));
        assert!(reader.next().is_none(), "the reader fuses after an error");

        let mut bad_id = good.clone();
        bad_id[first_frame] = 0xFE; // first frame's thread id
        let mut reader = BinReader::from_bytes(bad_id).unwrap();
        let error = reader.next().unwrap().unwrap_err();
        assert_eq!(error.line, 1);
        assert!(matches!(
            error.kind,
            ParseErrorKind::BadNameId { table: "threads", id: 0xFE, len: 2 }
        ));
    }

    #[test]
    fn builder_traces_are_canonicalized_to_first_appearance_order() {
        use crate::TraceBuilder;
        // Declare names in an order that differs from use order.
        let mut b = TraceBuilder::new();
        let t_unused = b.thread("never-used");
        let t2 = b.thread("t2");
        let t1 = b.thread("t1");
        let x = b.variable("x");
        b.write(t1, x);
        b.read(t2, x);
        let _ = t_unused;
        let trace = b.finish();

        let reader = BinReader::from_bytes(to_rwf_bytes(&trace)).unwrap();
        // First-appearance order: t1 first, unused name dropped.
        assert_eq!(reader.names().num_threads(), 2);
        assert_eq!(reader.names().thread_name(ThreadId::new(0)), Some("t1"));
        assert_eq!(reader.names().thread_name(ThreadId::new(1)), Some("t2"));
    }

    #[test]
    fn unknown_location_round_trips() {
        let event = Event::new(
            EventId::new(0),
            ThreadId::new(0),
            EventKind::Write(VarId::new(0)),
            Location::UNKNOWN,
        );
        let trace = Trace::from_parts(
            vec![event],
            vec!["t".to_owned()],
            Vec::new(),
            vec!["x".to_owned()],
            Vec::new(),
        );
        let mut reader = BinReader::from_bytes(to_rwf_bytes(&trace)).unwrap();
        let decoded = reader.next().unwrap().unwrap();
        assert!(decoded.location().is_unknown());
    }

    #[test]
    fn writer_writes_files() {
        let trace = parse_std(SAMPLE).unwrap();
        let path = std::env::temp_dir().join(format!("rapid-rwf-{}.rwf", std::process::id()));
        write_rwf_file(&trace, &path).unwrap();
        let reader = BinReader::open(&path).unwrap();
        assert_eq!(reader.frame_count(), trace.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_v2_decodes_to_the_batch_v1_trace() {
        let trace = parse_std(SAMPLE).unwrap();
        // Block size 2 forces multiple EVENTS blocks and NAMES deltas.
        let bytes = to_rwf_stream_bytes(&trace, 2);
        assert!(looks_binary(&bytes));
        assert_eq!(bytes[4], VERSION_STREAM as u8);
        let reader = BinReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.frame_count(), 5);
        let roundtrip = collect_any(reader.into()).unwrap();
        assert_eq!(roundtrip.events(), trace.events(), "ids are canonical on both sides");
        assert_eq!(write_std(&roundtrip), SAMPLE);
    }

    #[test]
    fn stream_writer_producer_api_matches_the_transcode_path() {
        let mut writer = RwfStreamWriter::with_block_events(Vec::new(), 3).unwrap();
        writer.write("t1", "y", Some("A.java:1")).unwrap();
        writer.acquire("t1", "l", Some("A.java:2")).unwrap();
        writer.fork("t1", "t2", Some("A.java:3")).unwrap();
        writer.read("t2", "y", Some("B.java:1")).unwrap();
        writer.release("t1", "l", Some("A.java:4")).unwrap();
        assert_eq!(writer.events_written(), 5);
        let bytes = writer.finish().unwrap();
        let roundtrip = collect_any(BinReader::from_bytes(bytes).unwrap().into()).unwrap();
        assert_eq!(write_std(&roundtrip), SAMPLE);
    }

    #[test]
    fn stream_writer_handles_empty_traces_and_unknown_locations() {
        let empty = RwfStreamWriter::new(Vec::new()).unwrap().finish().unwrap();
        let reader = BinReader::from_bytes(empty).unwrap();
        assert_eq!(reader.frame_count(), 0);
        assert!(collect_any(reader.into()).unwrap().is_empty());

        let mut writer = RwfStreamWriter::new(Vec::new()).unwrap();
        writer.write("t", "x", None).unwrap();
        let bytes = writer.finish().unwrap();
        let mut reader = BinReader::from_bytes(bytes).unwrap();
        assert!(reader.next().unwrap().unwrap().location().is_unknown());
    }

    #[test]
    fn v2_containers_reject_structural_damage_with_typed_errors() {
        let trace = parse_std(SAMPLE).unwrap();
        let good = to_rwf_stream_bytes(&trace, 2);

        // A writer that died before `finish` left no END block: Truncated.
        let unfinished = good[..good.len() - 9].to_vec();
        assert_eq!(BinReader::from_bytes(unfinished).unwrap_err().kind, ParseErrorKind::Truncated);

        let truncated_bytes = good[..good.len() - 1].to_vec();
        assert_eq!(
            BinReader::from_bytes(truncated_bytes).unwrap_err().kind,
            ParseErrorKind::Truncated
        );

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            BinReader::from_bytes(trailing).unwrap_err().kind,
            ParseErrorKind::TrailingBytes
        );

        // First body byte is a block tag; 9 is not a known block.
        let mut bad_tag = good.clone();
        bad_tag[12] = 9;
        assert!(matches!(
            BinReader::from_bytes(bad_tag).unwrap_err().kind,
            ParseErrorKind::BadBlockTag(9)
        ));

        // An END total disagreeing with the frames actually present.
        let mut mismatch = Vec::new();
        mismatch.extend_from_slice(&MAGIC);
        wire::put_u16(&mut mismatch, VERSION_STREAM);
        wire::put_u16(&mut mismatch, 0);
        wire::put_u32(&mut mismatch, 0);
        wire::put_u8(&mut mismatch, BLOCK_END);
        wire::put_u64(&mut mismatch, 1);
        assert_eq!(BinReader::from_bytes(mismatch).unwrap_err().kind, ParseErrorKind::Truncated);
    }

    #[test]
    fn v2_frames_cannot_reference_later_name_deltas() {
        // Hand-build: one thread + one variable, then a frame referencing
        // variable 1 *before* the delta that defines it.  The final tables
        // contain the name, but the per-block snapshot must reject it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        wire::put_u16(&mut bytes, VERSION_STREAM);
        wire::put_u16(&mut bytes, 0);
        wire::put_u32(&mut bytes, 0);
        wire::put_u8(&mut bytes, BLOCK_NAMES);
        wire::put_u8(&mut bytes, TABLE_THREADS as u8);
        wire::put_u32(&mut bytes, 1);
        wire::put_str(&mut bytes, "t");
        wire::put_u8(&mut bytes, BLOCK_NAMES);
        wire::put_u8(&mut bytes, TABLE_VARIABLES as u8);
        wire::put_u32(&mut bytes, 1);
        wire::put_str(&mut bytes, "x");
        wire::put_u8(&mut bytes, BLOCK_EVENTS);
        wire::put_u32(&mut bytes, 1);
        wire::put_u32(&mut bytes, 0);
        wire::put_u8(&mut bytes, OP_WRITE);
        wire::put_u32(&mut bytes, 1); // defined only by the *next* delta
        wire::put_u32(&mut bytes, NO_LOCATION);
        wire::put_u8(&mut bytes, BLOCK_NAMES);
        wire::put_u8(&mut bytes, TABLE_VARIABLES as u8);
        wire::put_u32(&mut bytes, 1);
        wire::put_str(&mut bytes, "late");
        wire::put_u8(&mut bytes, BLOCK_EVENTS);
        wire::put_u32(&mut bytes, 1);
        wire::put_u32(&mut bytes, 0);
        wire::put_u8(&mut bytes, OP_READ);
        wire::put_u32(&mut bytes, 1); // legal here: the delta has landed
        wire::put_u32(&mut bytes, NO_LOCATION);
        wire::put_u8(&mut bytes, BLOCK_END);
        wire::put_u64(&mut bytes, 2);

        let mut reader = BinReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.names().num_variables(), 2, "final tables hold both names");
        let error = reader.next().unwrap().unwrap_err();
        assert_eq!(error.line, 1);
        assert!(matches!(
            error.kind,
            ParseErrorKind::BadNameId { table: "variables", id: 1, len: 1 }
        ));
        assert!(reader.next().is_none(), "the reader fuses after an error");

        // An out-of-range table index in a NAMES delta is a typed error too.
        let mut bad_table = Vec::new();
        bad_table.extend_from_slice(&MAGIC);
        wire::put_u16(&mut bad_table, VERSION_STREAM);
        wire::put_u16(&mut bad_table, 0);
        wire::put_u32(&mut bad_table, 0);
        wire::put_u8(&mut bad_table, BLOCK_NAMES);
        wire::put_u8(&mut bad_table, 4);
        assert!(matches!(
            BinReader::from_bytes(bad_table).unwrap_err().kind,
            ParseErrorKind::BadBlockTag(4)
        ));
    }
}
