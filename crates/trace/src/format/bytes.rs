//! Zero-copy ingestion of the text formats: byte-slice line parsing and the
//! memory-mapped [`MmapReader`].
//!
//! [`StreamReader`](super::StreamReader) pays one `read_line` per event: a
//! copy into a `String` buffer plus UTF-8 validation of the whole line.
//! This module removes both costs.  [`parse_std_bytes`] parses a single line
//! directly from `&[u8]` — only the three *name* fields are ever inspected
//! as text (and interned, so after first sight a name costs one hash
//! lookup).  [`MmapReader`] memory-maps a whole trace file (via the
//! `memmap2` shim, falling back to one read into an owned buffer where
//! `mmap(2)` is unavailable) and walks it line by line with no per-line
//! allocation at all.
//!
//! Both the `&str` and the `&[u8]` entry points run the *same* parsing core
//! (the string version delegates here), so the grammar of `docs/FORMAT.md`
//! (at the repository root) has exactly one implementation and the two
//! readers cannot drift.

use std::fs::File;
use std::io;
use std::path::Path;

use memmap2::Mmap;
use rapid_vc::ThreadId;

use crate::event::{Event, EventId, EventKind};
use crate::ids::{Location, LockId, VarId};

use super::{ParseError, ParseErrorKind, StreamNames};

/// Splits `op` as `mnemonic(target)`, both non-empty.
fn split_op_bytes(op: &[u8]) -> Option<(&[u8], &[u8])> {
    let open = op.iter().position(|&byte| byte == b'(')?;
    if op.last() != Some(&b')') {
        return None;
    }
    let mnemonic = &op[..open];
    let target = &op[open + 1..op.len() - 1];
    if mnemonic.is_empty() || target.is_empty() {
        return None;
    }
    Some((mnemonic, target))
}

/// Renders a raw field for an error payload (lossy only for invalid UTF-8).
fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// The one definition of the lines every text reader ignores: blank and
/// `#`-comment (FORMAT.md §1.1).  Shared by [`StreamReader`], [`MmapReader`]
/// and the parsing core so the rule cannot drift between readers.
///
/// [`StreamReader`]: super::StreamReader
pub(super) fn is_ignored_line(line: &[u8]) -> bool {
    let trimmed = line.trim_ascii();
    trimmed.is_empty() || trimmed.first() == Some(&b'#')
}

/// Parses one line of a text-format trace from raw bytes, interning names
/// through `names` — the shared core of every text reader in this module
/// tree.
///
/// Comment (`#`) and blank lines yield `Ok(None)`, as does the CSV header
/// when `is_first_content` is set.  No UTF-8 validation is performed on the
/// line as a whole; only the individual name fields are checked when first
/// interned (invalid UTF-8 in a *name* is replaced, not rejected — see
/// `docs/FORMAT.md` §1.4).
pub(super) fn parse_content_line_bytes(
    line: &[u8],
    line_number: usize,
    separator: u8,
    is_first_content: bool,
    names: &mut StreamNames,
    next_event: &mut u32,
) -> Result<Option<Event>, ParseError> {
    if is_ignored_line(line) {
        return Ok(None);
    }
    let line = line.trim_ascii();
    // Skip a CSV header if it is the first content line of the input.
    if separator == b','
        && is_first_content
        && line.len() >= 7
        && line[..7].eq_ignore_ascii_case(b"thread,")
    {
        return Ok(None);
    }
    let mut fields = line.split(|&byte| byte == separator).map(<[u8]>::trim_ascii);
    let thread = fields
        .next()
        .filter(|field| !field.is_empty())
        .ok_or(ParseError { line: line_number, kind: ParseErrorKind::MissingField })?;
    let op = fields
        .next()
        .filter(|field| !field.is_empty())
        .ok_or(ParseError { line: line_number, kind: ParseErrorKind::MissingField })?;
    let location = fields.next().filter(|field| !field.is_empty());

    let (mnemonic, target) = split_op_bytes(op).ok_or_else(|| ParseError {
        line: line_number,
        kind: ParseErrorKind::MalformedOp(lossy(op)),
    })?;

    let thread_id = ThreadId::new(names.threads.intern_bytes(thread));
    let kind = match mnemonic {
        b"acq" | b"acquire" => EventKind::Acquire(LockId::new(names.locks.intern_bytes(target))),
        b"rel" | b"release" => EventKind::Release(LockId::new(names.locks.intern_bytes(target))),
        b"r" | b"read" => EventKind::Read(VarId::new(names.variables.intern_bytes(target))),
        b"w" | b"write" => EventKind::Write(VarId::new(names.variables.intern_bytes(target))),
        b"fork" => EventKind::Fork(ThreadId::new(names.threads.intern_bytes(target))),
        b"join" => EventKind::Join(ThreadId::new(names.threads.intern_bytes(target))),
        other => {
            return Err(ParseError {
                line: line_number,
                kind: ParseErrorKind::UnknownOp(lossy(other)),
            })
        }
    };

    let id = EventId::new(*next_event);
    *next_event += 1;
    // Like `TraceBuilder`, events without an explicit location get a
    // synthetic `line<N>` one (N = 1-based event index), so that race
    // *location pairs* stay meaningful.
    let location_id = match location {
        Some(name) => Location::new(names.locations.intern_bytes(name)),
        None => {
            let synthetic = format!("line{}", *next_event);
            Location::new(names.locations.intern(&synthetic))
        }
    };
    Ok(Some(Event::new(id, thread_id, kind, location_id)))
}

/// Parses one std-format (pipe-separated) line from raw bytes without UTF-8
/// validation or per-line allocation, interning names through `names`.
///
/// Returns `Ok(None)` for comment and blank lines.  `line_number` (1-based)
/// is carried into any [`ParseError`]; `next_event` numbers the produced
/// events densely, exactly like [`StreamReader`](super::StreamReader).
///
/// # Errors
///
/// The same error cases as the string parser, at the same lines — the two
/// share one implementation.
///
/// # Examples
///
/// ```
/// use rapid_trace::format::{parse_std_bytes, StreamNames};
///
/// let mut names = StreamNames::default();
/// let mut next_event = 0;
/// let event = parse_std_bytes(b"t1|w(x)|A.java:1", 1, &mut names, &mut next_event)
///     .unwrap()
///     .expect("a content line");
/// assert!(event.kind().is_write());
/// assert_eq!(names.num_threads(), 1);
/// assert!(parse_std_bytes(b"# comment", 2, &mut names, &mut next_event).unwrap().is_none());
/// ```
pub fn parse_std_bytes(
    line: &[u8],
    line_number: usize,
    names: &mut StreamNames,
    next_event: &mut u32,
) -> Result<Option<Event>, ParseError> {
    parse_content_line_bytes(line, line_number, b'|', false, names, next_event)
}

/// A zero-copy reader over a memory-mapped text trace file: the file's bytes
/// are paged in lazily by the OS and every line is parsed in place — no
/// per-line `String`, no whole-line UTF-8 validation, no `BufRead` copies.
///
/// Yields exactly the same events, names and errors as
/// [`StreamReader`](super::StreamReader) over the same input (both drive
/// [`parse_std_bytes`]'s core); the differential suite in
/// `crates/engine/tests/differential.rs` pins that equivalence down to
/// per-event detector timestamps.
///
/// # Examples
///
/// ```
/// use rapid_trace::format::MmapReader;
///
/// let mut reader = MmapReader::std_bytes(b"t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n".to_vec());
/// let events: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
/// assert_eq!(events.len(), 2);
/// assert_eq!(reader.names().num_variables(), 1);
/// ```
#[derive(Debug)]
pub struct MmapReader {
    data: Mmap,
    pos: usize,
    separator: u8,
    /// 1-based number of the line most recently read.
    line: usize,
    /// Whether a content line has been consumed already — the CSV header is
    /// only recognized as the first one.
    seen_content: bool,
    names: StreamNames,
    next_event: u32,
    failed: bool,
}

impl MmapReader {
    fn new(data: Mmap, separator: u8) -> Self {
        MmapReader {
            data,
            pos: 0,
            separator,
            line: 0,
            seen_content: false,
            names: StreamNames::default(),
            next_event: 0,
            failed: false,
        }
    }

    /// Memory-maps an open file of the std (pipe-separated) format.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file can be neither mapped nor read.
    pub fn map_std(file: &File) -> io::Result<Self> {
        Ok(MmapReader::new(Mmap::map(file)?, b'|'))
    }

    /// Memory-maps an open file of the CSV format.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file can be neither mapped nor read.
    pub fn map_csv(file: &File) -> io::Result<Self> {
        Ok(MmapReader::new(Mmap::map(file)?, b','))
    }

    /// Opens and memory-maps a std-format file by path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened or read.
    pub fn open_std(path: impl AsRef<Path>) -> io::Result<Self> {
        MmapReader::map_std(&File::open(path)?)
    }

    /// Opens and memory-maps a CSV-format file by path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be opened or read.
    pub fn open_csv(path: impl AsRef<Path>) -> io::Result<Self> {
        MmapReader::map_csv(&File::open(path)?)
    }

    /// Wraps an in-memory std-format buffer (tests, pre-read inputs).
    pub fn std_bytes(bytes: Vec<u8>) -> Self {
        MmapReader::new(Mmap::from_vec(bytes), b'|')
    }

    /// Wraps an in-memory CSV buffer.
    pub fn csv_bytes(bytes: Vec<u8>) -> Self {
        MmapReader::new(Mmap::from_vec(bytes), b',')
    }

    /// Wraps an existing map as std-format text (used by
    /// [`AnyReader`](super::AnyReader), which maps before sniffing).
    pub fn std_mmap(data: Mmap) -> Self {
        MmapReader::new(data, b'|')
    }

    /// Wraps an existing map as CSV text.
    pub fn csv_mmap(data: Mmap) -> Self {
        MmapReader::new(data, b',')
    }

    /// The name tables interned so far (grow as events are read).
    pub fn names(&self) -> &StreamNames {
        &self.names
    }

    /// Consumes the reader, returning the final name tables.
    pub fn into_names(self) -> StreamNames {
        self.names
    }

    /// Number of events produced so far.
    pub fn events_read(&self) -> usize {
        self.next_event as usize
    }

    /// 1-based number of the last line read (0 before the first line).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Whether the bytes come from a real `mmap(2)` (false: owned fallback).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }
}

impl Iterator for MmapReader {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let data: &[u8] = &self.data;
        while self.pos < data.len() {
            let rest = &data[self.pos..];
            let (line, advance) = match rest.iter().position(|&byte| byte == b'\n') {
                Some(newline) => (&rest[..newline], newline + 1),
                None => (rest, rest.len()),
            };
            self.pos += advance;
            self.line += 1;
            if is_ignored_line(line) {
                continue;
            }
            let is_first_content = !self.seen_content;
            self.seen_content = true;
            match parse_content_line_bytes(
                line,
                self.line,
                self.separator,
                is_first_content,
                &mut self.names,
                &mut self.next_event,
            ) {
                Ok(Some(event)) => return Some(Ok(event)),
                Ok(None) => continue, // skipped CSV header
                Err(error) => {
                    self.failed = true;
                    return Some(Err(error));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::super::StreamReader;
    use super::*;

    const SAMPLE: &str = "\
# a small trace
t1|acq(l)|A.java:1
t1|w(x)|A.java:2
t1|rel(l)|A.java:3

t2|acq(l)|B.java:7
t2|r(x)|B.java:8
t2|rel(l)|B.java:9
main|fork(t1)|Main.java:1";

    #[test]
    fn byte_parser_matches_stream_reader_exactly() {
        let streamed: Vec<Event> =
            StreamReader::std(SAMPLE.as_bytes()).collect::<Result<_, _>>().unwrap();
        let mut reader = MmapReader::std_bytes(SAMPLE.as_bytes().to_vec());
        let mapped: Vec<Event> = reader.by_ref().collect::<Result<_, _>>().unwrap();
        assert_eq!(streamed, mapped);
        assert_eq!(reader.events_read(), 7);
        assert_eq!(reader.names().num_threads(), 3);
        assert_eq!(reader.names().thread_name(ThreadId::new(0)), Some("t1"));
    }

    #[test]
    fn final_line_without_newline_parses() {
        let mut reader = MmapReader::std_bytes(b"t1|w(x)|A:1\nt2|r(x)|B:2".to_vec());
        assert_eq!(reader.by_ref().count(), 2);
        assert_eq!(reader.events_read(), 2);
    }

    #[test]
    fn csv_header_skipped_after_comments() {
        let csv = b"# logged\n\nthread,op,location\nt1,acq(l),A:1\nt1,rel(l),A:2\n".to_vec();
        let events: Vec<Event> =
            MmapReader::csv_bytes(csv).collect::<Result<_, _>>().expect("parses");
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn errors_carry_the_same_line_numbers_as_stream_reader() {
        let input = "t1|w(x)|A:1\n\n# pad\nt1|nope(x)|A:2\n";
        let stream_err = StreamReader::std(input.as_bytes())
            .collect::<Result<Vec<_>, _>>()
            .expect_err("unknown op");
        let mut reader = MmapReader::std_bytes(input.as_bytes().to_vec());
        let mmap_err = reader.by_ref().collect::<Result<Vec<_>, _>>().expect_err("unknown op");
        assert_eq!(stream_err, mmap_err);
        assert_eq!(mmap_err.line, 4);
        assert!(reader.next().is_none(), "the reader fuses after an error");
    }

    #[test]
    fn invalid_utf8_in_names_is_replaced_not_rejected() {
        // A non-UTF-8 byte in a name field: the line still parses; the
        // interned name carries the replacement character.
        let mut input = b"t1|w(x".to_vec();
        input.push(0xFF);
        input.extend_from_slice(b")|A:1\n");
        let mut reader = MmapReader::std_bytes(input);
        let event = reader.next().unwrap().expect("parses");
        assert!(event.kind().is_write());
        let name = reader.names().variable_name(VarId::new(0)).unwrap().to_owned();
        assert!(name.starts_with('x') && name.contains('\u{FFFD}'));
    }

    #[test]
    fn maps_a_real_file() {
        let path =
            std::env::temp_dir().join(format!("rapid-mmap-reader-{}.std", std::process::id()));
        std::fs::write(&path, SAMPLE).unwrap();
        let mut reader = MmapReader::open_std(&path).unwrap();
        assert!(reader.is_mapped());
        assert_eq!(reader.by_ref().count(), 7);
        std::fs::remove_file(&path).ok();
    }
}
